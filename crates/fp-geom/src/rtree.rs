//! Dynamic R-tree over axis-aligned rectangles.
//!
//! The placement hot paths (overlap audits in `fp-core`, annealer legality
//! checks in `fp-slicing`) ask one question over and over: *which of the
//! already-placed rectangles intersect this one?* A linear scan answers it
//! in `O(n)` per query — `O(n²)` per full audit — which is exactly the
//! scaling wall the ROADMAP pins for decks past a few dozen modules. The
//! [`RTree`] answers the same question in `O(log n + k)` for `k` hits by
//! grouping rectangles into a bounding-box hierarchy.
//!
//! Overlap semantics match [`Rect::overlaps`]: only *interior* intersections
//! count, so abutting modules (shared edges) are legal and never reported.
//! Internal-node descent uses closed boxes with [`GEOM_EPS`](crate::GEOM_EPS)
//! slack, so entries within tolerance of a query are never missed.
//!
//! ```
//! use fp_geom::{Rect, RTree};
//! let mut tree = RTree::new();
//! tree.insert(0, Rect::new(0.0, 0.0, 2.0, 2.0));
//! tree.insert(1, Rect::new(2.0, 0.0, 2.0, 2.0)); // abuts entry 0
//! tree.insert(2, Rect::new(1.0, 1.0, 2.0, 2.0)); // overlaps both
//! assert_eq!(tree.query(&Rect::new(0.5, 0.5, 1.0, 1.0)), vec![0, 2]);
//! tree.remove(2);
//! assert!(!tree.any_overlap(&Rect::new(2.1, 2.1, 0.5, 0.5), u64::MAX));
//! ```

use crate::rect::Rect;
use crate::GEOM_EPS;
use std::collections::HashMap;

/// Maximum entries per node before a split.
const MAX_ENTRIES: usize = 8;
/// Minimum entries per node; an underfull node is dissolved and its entries
/// reinserted.
const MIN_ENTRIES: usize = 3;

#[derive(Debug, Clone)]
enum Node {
    Leaf(Vec<(Rect, u64)>),
    Internal(Vec<(Rect, Box<Node>)>),
}

/// Whether two closed boxes intersect, with `GEOM_EPS` slack. Used for
/// internal-node descent only; entry hits use the strict
/// [`Rect::overlaps`] interior test.
fn boxes_touch(a: &Rect, b: &Rect) -> bool {
    a.x <= b.right() + GEOM_EPS
        && b.x <= a.right() + GEOM_EPS
        && a.y <= b.top() + GEOM_EPS
        && b.y <= a.top() + GEOM_EPS
}

impl Node {
    fn bbox(&self) -> Option<Rect> {
        match self {
            Node::Leaf(entries) => entries
                .iter()
                .map(|(r, _)| *r)
                .reduce(|a, b| a.union_bounds(&b)),
            Node::Internal(children) => children
                .iter()
                .map(|(r, _)| *r)
                .reduce(|a, b| a.union_bounds(&b)),
        }
    }

    fn fanout(&self) -> usize {
        match self {
            Node::Leaf(entries) => entries.len(),
            Node::Internal(children) => children.len(),
        }
    }

    fn collect_entries(&self, out: &mut Vec<(Rect, u64)>) {
        match self {
            Node::Leaf(entries) => out.extend_from_slice(entries),
            Node::Internal(children) => {
                for (_, c) in children {
                    c.collect_entries(out);
                }
            }
        }
    }
}

/// A dynamic R-tree mapping `u64` keys to rectangles.
///
/// Keys are caller-chosen (module indices in practice) and must be unique:
/// inserting an existing key replaces its rectangle.
#[derive(Debug, Clone, Default)]
pub struct RTree {
    root: Option<Node>,
    /// Key → rectangle, so [`RTree::remove`] can descend by bounding box
    /// instead of scanning the whole tree.
    rects: HashMap<u64, Rect>,
}

impl RTree {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a tree from `(key, rect)` pairs.
    #[must_use]
    pub fn from_entries(entries: impl IntoIterator<Item = (u64, Rect)>) -> Self {
        let mut tree = Self::new();
        for (id, r) in entries {
            tree.insert(id, r);
        }
        tree
    }

    /// Number of stored rectangles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The stored rectangle for `id`, if present.
    #[must_use]
    pub fn rect_of(&self, id: u64) -> Option<&Rect> {
        self.rects.get(&id)
    }

    /// Bounding box of every stored rectangle (`None` when empty).
    #[must_use]
    pub fn bounds(&self) -> Option<Rect> {
        self.root.as_ref().and_then(Node::bbox)
    }

    /// Inserts `rect` under `id`, replacing any previous rectangle for
    /// `id`.
    pub fn insert(&mut self, id: u64, rect: Rect) {
        if self.rects.contains_key(&id) {
            self.remove(id);
        }
        self.rects.insert(id, rect);
        match self.root.take() {
            None => self.root = Some(Node::Leaf(vec![(rect, id)])),
            Some(mut root) => {
                if let Some(sibling) = insert_rec(&mut root, rect, id) {
                    // Root split: grow the tree by one level.
                    let left_bb = root.bbox().expect("split root is non-empty");
                    let right_bb = sibling.bbox().expect("split sibling is non-empty");
                    self.root = Some(Node::Internal(vec![
                        (left_bb, Box::new(root)),
                        (right_bb, Box::new(sibling)),
                    ]));
                } else {
                    self.root = Some(root);
                }
            }
        }
    }

    /// Removes the rectangle stored under `id`. Returns `false` when `id`
    /// was absent.
    pub fn remove(&mut self, id: u64) -> bool {
        let Some(rect) = self.rects.remove(&id) else {
            return false;
        };
        let Some(mut root) = self.root.take() else {
            return false;
        };
        let mut orphans = Vec::new();
        let removed = remove_rec(&mut root, &rect, id, &mut orphans);
        debug_assert!(removed, "rects map and tree disagree on key {id}");
        // Shrink: a root with a single internal child collapses one level;
        // an empty root disappears.
        loop {
            match root {
                Node::Internal(ref mut children) if children.len() == 1 => {
                    root = *children.pop().expect("len checked").1;
                }
                Node::Internal(ref children) if children.is_empty() => {
                    self.root = None;
                    break;
                }
                Node::Leaf(ref entries) if entries.is_empty() => {
                    self.root = None;
                    break;
                }
                _ => {
                    self.root = Some(root);
                    break;
                }
            }
        }
        for (r, orphan_id) in orphans {
            // Reinsert through the public path but without touching the
            // rects map (the orphan is still present there).
            match self.root.take() {
                None => self.root = Some(Node::Leaf(vec![(r, orphan_id)])),
                Some(mut node) => {
                    if let Some(sibling) = insert_rec(&mut node, r, orphan_id) {
                        let left_bb = node.bbox().expect("non-empty");
                        let right_bb = sibling.bbox().expect("non-empty");
                        self.root = Some(Node::Internal(vec![
                            (left_bb, Box::new(node)),
                            (right_bb, Box::new(sibling)),
                        ]));
                    } else {
                        self.root = Some(node);
                    }
                }
            }
        }
        true
    }

    /// Keys of every stored rectangle whose *interior* overlaps `region`,
    /// ascending.
    #[must_use]
    pub fn query(&self, region: &Rect) -> Vec<u64> {
        let mut out = Vec::new();
        self.for_each_overlap(region, |id, _| out.push(id));
        out.sort_unstable();
        out
    }

    /// Calls `f(id, rect)` for every stored rectangle whose interior
    /// overlaps `region`, in tree order (deterministic for a fixed
    /// insert/remove history, but otherwise unspecified).
    pub fn for_each_overlap(&self, region: &Rect, mut f: impl FnMut(u64, &Rect)) {
        if let Some(root) = &self.root {
            query_rec(root, region, &mut f);
        }
    }

    /// Whether any stored rectangle other than `exclude` overlaps `region`
    /// in its interior. Pass `u64::MAX` (or any unused key) to consider
    /// every entry. Early-exits on the first hit.
    #[must_use]
    pub fn any_overlap(&self, region: &Rect, exclude: u64) -> bool {
        let mut hit = false;
        if let Some(root) = &self.root {
            any_overlap_rec(root, region, exclude, &mut hit);
        }
        hit
    }
}

fn query_rec(node: &Node, region: &Rect, f: &mut impl FnMut(u64, &Rect)) {
    match node {
        Node::Leaf(entries) => {
            for (r, id) in entries {
                if r.overlaps(region) {
                    f(*id, r);
                }
            }
        }
        Node::Internal(children) => {
            for (bb, child) in children {
                if boxes_touch(bb, region) {
                    query_rec(child, region, f);
                }
            }
        }
    }
}

fn any_overlap_rec(node: &Node, region: &Rect, exclude: u64, hit: &mut bool) {
    if *hit {
        return;
    }
    match node {
        Node::Leaf(entries) => {
            for (r, id) in entries {
                if *id != exclude && r.overlaps(region) {
                    *hit = true;
                    return;
                }
            }
        }
        Node::Internal(children) => {
            for (bb, child) in children {
                if boxes_touch(bb, region) {
                    any_overlap_rec(child, region, exclude, hit);
                    if *hit {
                        return;
                    }
                }
            }
        }
    }
}

/// Recursive insert; returns a split-off sibling when the node overflowed.
fn insert_rec(node: &mut Node, rect: Rect, id: u64) -> Option<Node> {
    match node {
        Node::Leaf(entries) => {
            entries.push((rect, id));
            (entries.len() > MAX_ENTRIES).then(|| {
                let high = split_entries(entries, |e| e.0);
                Node::Leaf(high)
            })
        }
        Node::Internal(children) => {
            let k = choose_subtree(children, &rect);
            children[k].0 = children[k].0.union_bounds(&rect);
            if let Some(sibling) = insert_rec(&mut children[k].1, rect, id) {
                // The split moved entries out of the child: recompute its
                // box before adding the sibling next to it.
                children[k].0 = children[k].1.bbox().expect("split child is non-empty");
                let bb = sibling.bbox().expect("split sibling is non-empty");
                children.push((bb, Box::new(sibling)));
                if children.len() > MAX_ENTRIES {
                    let high = split_entries(children, |e| e.0);
                    return Some(Node::Internal(high));
                }
            }
            None
        }
    }
}

/// Child index whose box needs the least area enlargement to admit `rect`
/// (ties: smaller area, then lower index — deterministic).
fn choose_subtree(children: &[(Rect, Box<Node>)], rect: &Rect) -> usize {
    let mut best = 0usize;
    let mut best_growth = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (k, (bb, _)) in children.iter().enumerate() {
        let area = bb.area();
        let growth = bb.union_bounds(rect).area() - area;
        if growth < best_growth - GEOM_EPS
            || ((growth - best_growth).abs() <= GEOM_EPS && area < best_area)
        {
            best = k;
            best_growth = growth;
            best_area = area;
        }
    }
    best
}

/// Axis-sort split: sort by center along the axis with the larger spread
/// and cut in the middle. Keeps the low half in place, returns the high
/// half. Both halves satisfy `MIN_ENTRIES` because the split only runs on
/// overflow (`MAX_ENTRIES + 1` entries).
fn split_entries<T>(entries: &mut Vec<T>, rect_of: impl Fn(&T) -> Rect) -> Vec<T> {
    let cx = |e: &T| {
        let r = rect_of(e);
        r.x + r.w / 2.0
    };
    let cy = |e: &T| {
        let r = rect_of(e);
        r.y + r.h / 2.0
    };
    let spread = |vals: Vec<f64>| {
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    };
    let sx = spread(entries.iter().map(&cx).collect());
    let sy = spread(entries.iter().map(&cy).collect());
    if sx >= sy {
        entries.sort_by(|a, b| cx(a).total_cmp(&cx(b)));
    } else {
        entries.sort_by(|a, b| cy(a).total_cmp(&cy(b)));
    }
    let mid = entries.len() / 2;
    entries.split_off(mid)
}

/// Recursive remove; pushes entries of dissolved (underfull) nodes into
/// `orphans` for reinsertion by the caller.
fn remove_rec(node: &mut Node, rect: &Rect, id: u64, orphans: &mut Vec<(Rect, u64)>) -> bool {
    match node {
        Node::Leaf(entries) => {
            if let Some(pos) = entries.iter().position(|&(_, e)| e == id) {
                entries.remove(pos);
                true
            } else {
                false
            }
        }
        Node::Internal(children) => {
            for k in 0..children.len() {
                if !boxes_touch(&children[k].0, rect) {
                    continue;
                }
                if remove_rec(&mut children[k].1, rect, id, orphans) {
                    if children[k].1.fanout() < MIN_ENTRIES {
                        children[k].1.collect_entries(orphans);
                        children.remove(k);
                    } else {
                        children[k].0 = children[k].1.bbox().expect("fanout >= MIN_ENTRIES");
                    }
                    return true;
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_query(entries: &[(u64, Rect)], region: &Rect) -> Vec<u64> {
        let mut out: Vec<u64> = entries
            .iter()
            .filter(|(_, r)| r.overlaps(region))
            .map(|&(id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_tree() {
        let tree = RTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert!(tree.bounds().is_none());
        assert!(tree.query(&Rect::new(0.0, 0.0, 10.0, 10.0)).is_empty());
        assert!(!tree.any_overlap(&Rect::new(0.0, 0.0, 10.0, 10.0), u64::MAX));
    }

    #[test]
    fn touching_edges_do_not_overlap() {
        let mut tree = RTree::new();
        tree.insert(0, Rect::new(0.0, 0.0, 2.0, 2.0));
        // Shares the x = 2 edge with entry 0: legal abutment, no overlap.
        assert!(!tree.any_overlap(&Rect::new(2.0, 0.0, 2.0, 2.0), u64::MAX));
        // Interior intersection of any width beyond GEOM_EPS is a hit.
        assert!(tree.any_overlap(&Rect::new(1.99, 0.0, 2.0, 2.0), u64::MAX));
    }

    #[test]
    fn insert_replaces_existing_key() {
        let mut tree = RTree::new();
        tree.insert(7, Rect::new(0.0, 0.0, 1.0, 1.0));
        tree.insert(7, Rect::new(10.0, 10.0, 1.0, 1.0));
        assert_eq!(tree.len(), 1);
        assert!(tree.query(&Rect::new(0.0, 0.0, 2.0, 2.0)).is_empty());
        assert_eq!(tree.query(&Rect::new(9.0, 9.0, 3.0, 3.0)), vec![7]);
    }

    #[test]
    fn grows_past_one_split_and_stays_consistent() {
        // A 6×6 grid of unit rects forces several leaf and internal splits.
        let mut tree = RTree::new();
        let mut entries = Vec::new();
        for i in 0..6u64 {
            for j in 0..6u64 {
                let id = i * 6 + j;
                let r = Rect::new(i as f64 * 1.5, j as f64 * 1.5, 1.0, 1.0);
                tree.insert(id, r);
                entries.push((id, r));
            }
        }
        assert_eq!(tree.len(), 36);
        let probe = Rect::new(2.0, 2.0, 3.0, 3.0);
        assert_eq!(tree.query(&probe), brute_query(&entries, &probe));
        // Whole-plane query returns everything.
        let all = Rect::new(-1.0, -1.0, 100.0, 100.0);
        assert_eq!(tree.query(&all).len(), 36);
    }

    #[test]
    fn remove_underflow_reinserts_orphans() {
        let mut tree = RTree::new();
        let mut entries = Vec::new();
        for i in 0..30u64 {
            let r = Rect::new((i % 6) as f64 * 2.0, (i / 6) as f64 * 2.0, 1.5, 1.5);
            tree.insert(i, r);
            entries.push((i, r));
        }
        // Remove most of one corner so a leaf underflows and dissolves.
        for id in [0u64, 1, 6, 7, 12, 13, 2, 8] {
            assert!(tree.remove(id));
            entries.retain(|&(e, _)| e != id);
            let probe = Rect::new(-1.0, -1.0, 100.0, 100.0);
            assert_eq!(tree.query(&probe), brute_query(&entries, &probe));
        }
        assert!(!tree.remove(0), "double remove must report absence");
        assert_eq!(tree.len(), 22);
    }

    #[test]
    fn exclude_key_is_skipped() {
        let mut tree = RTree::new();
        tree.insert(3, Rect::new(0.0, 0.0, 4.0, 4.0));
        let probe = Rect::new(1.0, 1.0, 1.0, 1.0);
        assert!(tree.any_overlap(&probe, u64::MAX));
        assert!(!tree.any_overlap(&probe, 3));
    }
}
