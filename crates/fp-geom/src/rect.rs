//! Axis-aligned rectangles.

use crate::point::Point;
use crate::GEOM_EPS;
use std::fmt;

/// An axis-aligned rectangle anchored at its lower-left corner — exactly the
/// module representation of the paper (`(x_i, y_i)` plus `(w_i, h_i)`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Lower-left x.
    pub x: f64,
    /// Lower-left y.
    pub y: f64,
    /// Width (extent along x), non-negative.
    pub w: f64,
    /// Height (extent along y), non-negative.
    pub h: f64,
}

impl Rect {
    /// Creates a rectangle from its lower-left corner and extents.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `w` or `h` is negative or non-finite.
    #[must_use]
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        debug_assert!(w >= 0.0 && h >= 0.0, "negative extent {w}x{h}");
        debug_assert!(
            x.is_finite() && y.is_finite() && w.is_finite() && h.is_finite(),
            "non-finite rect"
        );
        Rect { x, y, w, h }
    }

    /// Builds the rectangle spanning two opposite corners in any order.
    #[must_use]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect::new(
            a.x.min(b.x),
            a.y.min(b.y),
            (a.x - b.x).abs(),
            (a.y - b.y).abs(),
        )
    }

    /// Right edge x-coordinate.
    #[must_use]
    pub fn right(&self) -> f64 {
        self.x + self.w
    }

    /// Top edge y-coordinate.
    #[must_use]
    pub fn top(&self) -> f64 {
        self.y + self.h
    }

    /// Geometric center.
    #[must_use]
    pub fn center(&self) -> Point {
        Point::new(self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Area `w·h`.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Aspect ratio `w/h`; `infinity` for zero-height rectangles.
    #[must_use]
    pub fn aspect(&self) -> f64 {
        self.w / self.h
    }

    /// Whether the rectangle has (numerically) zero area.
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.w <= GEOM_EPS || self.h <= GEOM_EPS
    }

    /// Whether the *interiors* overlap (shared edges do not count, matching
    /// the paper's non-overlap semantics where abutting modules are legal).
    #[must_use]
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x < other.right() - GEOM_EPS
            && other.x < self.right() - GEOM_EPS
            && self.y < other.top() - GEOM_EPS
            && other.y < self.top() - GEOM_EPS
    }

    /// Area of intersection with `other` (0 if disjoint).
    #[must_use]
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = (self.right().min(other.right()) - self.x.max(other.x)).max(0.0);
        let h = (self.top().min(other.top()) - self.y.max(other.y)).max(0.0);
        w * h
    }

    /// The intersection rectangle, if the two rectangles overlap or abut.
    #[must_use]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let r = self.right().min(other.right());
        let t = self.top().min(other.top());
        if r >= x && t >= y {
            Some(Rect::new(x, y, r - x, t - y))
        } else {
            None
        }
    }

    /// Whether `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x - GEOM_EPS
            && p.x <= self.right() + GEOM_EPS
            && p.y >= self.y - GEOM_EPS
            && p.y <= self.top() + GEOM_EPS
    }

    /// Whether `other` lies entirely within this rectangle (within
    /// tolerance).
    #[must_use]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x >= self.x - GEOM_EPS
            && other.y >= self.y - GEOM_EPS
            && other.right() <= self.right() + GEOM_EPS
            && other.top() <= self.top() + GEOM_EPS
    }

    /// Smallest rectangle containing both.
    #[must_use]
    pub fn union_bounds(&self, other: &Rect) -> Rect {
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        Rect::new(
            x,
            y,
            self.right().max(other.right()) - x,
            self.top().max(other.top()) - y,
        )
    }

    /// The rectangle grown by `margin` on every side (clamped at zero size).
    #[must_use]
    pub fn inflate(&self, margin: f64) -> Rect {
        self.inflate_sides(margin, margin, margin, margin)
    }

    /// Grows each side independently — the paper's routing *envelope*, where
    /// each side is extended proportionally to the number of pins on it.
    /// Negative margins shrink; extents clamp at zero.
    #[must_use]
    pub fn inflate_sides(&self, left: f64, right: f64, bottom: f64, top: f64) -> Rect {
        let w = (self.w + left + right).max(0.0);
        let h = (self.h + bottom + top).max(0.0);
        Rect::new(self.x - left, self.y - bottom, w, h)
    }

    /// The rectangle rotated 90° about its lower-left corner (width and
    /// height swapped in place) — the paper's `z_i = 1` orientation.
    #[must_use]
    pub fn rotated(&self) -> Rect {
        Rect::new(self.x, self.y, self.h, self.w)
    }

    /// Smallest rectangle covering all inputs; `None` for an empty set.
    #[must_use]
    pub fn bounding(rects: &[Rect]) -> Option<Rect> {
        let mut it = rects.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.union_bounds(r)))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{} @ ({}, {})]", self.w, self.h, self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_center_area() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.right(), 4.0);
        assert_eq!(r.top(), 6.0);
        assert_eq!(r.center(), Point::new(2.5, 4.0));
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.aspect(), 0.75);
    }

    #[test]
    fn overlap_excludes_shared_edges() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let abutting = Rect::new(2.0, 0.0, 2.0, 2.0);
        let overlapping = Rect::new(1.5, 1.5, 2.0, 2.0);
        let disjoint = Rect::new(5.0, 5.0, 1.0, 1.0);
        assert!(!a.overlaps(&abutting));
        assert!(a.overlaps(&overlapping));
        assert!(!a.overlaps(&disjoint));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn intersection_area_and_rect() {
        let a = Rect::new(0.0, 0.0, 4.0, 4.0);
        let b = Rect::new(2.0, 1.0, 4.0, 4.0);
        assert_eq!(a.intersection_area(&b), 6.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(2.0, 1.0, 2.0, 3.0));
        assert_eq!(a.intersection_area(&Rect::new(10.0, 10.0, 1.0, 1.0)), 0.0);
        assert!(a.intersection(&Rect::new(10.0, 10.0, 1.0, 1.0)).is_none());
    }

    #[test]
    fn containment() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(outer.contains(Point::new(10.0, 10.0)));
        assert!(!outer.contains(Point::new(10.1, 5.0)));
        assert!(outer.contains_rect(&Rect::new(1.0, 1.0, 5.0, 5.0)));
        assert!(!outer.contains_rect(&Rect::new(6.0, 6.0, 5.0, 5.0)));
    }

    #[test]
    fn envelope_inflation() {
        let r = Rect::new(5.0, 5.0, 2.0, 3.0);
        let e = r.inflate_sides(1.0, 2.0, 0.5, 1.5);
        assert_eq!(e, Rect::new(4.0, 4.5, 5.0, 5.0));
        assert!(e.contains_rect(&r));
        // Shrinking past zero clamps.
        let tiny = r.inflate(-5.0);
        assert_eq!(tiny.area(), 0.0);
    }

    #[test]
    fn rotation_swaps_extents() {
        let r = Rect::new(1.0, 1.0, 2.0, 5.0).rotated();
        assert_eq!((r.w, r.h), (5.0, 2.0));
        assert_eq!((r.x, r.y), (1.0, 1.0));
    }

    #[test]
    fn bounding_box() {
        assert!(Rect::bounding(&[]).is_none());
        let b = Rect::bounding(&[
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(3.0, -1.0, 1.0, 1.0),
        ])
        .unwrap();
        assert_eq!(b, Rect::new(0.0, -1.0, 4.0, 2.0));
    }

    #[test]
    fn from_corners_any_order() {
        let r = Rect::from_corners(Point::new(3.0, 4.0), Point::new(1.0, 0.0));
        assert_eq!(r, Rect::new(1.0, 0.0, 2.0, 4.0));
    }
}
