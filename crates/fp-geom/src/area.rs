//! Exact union area of rectangle sets.

use crate::rect::Rect;
use crate::GEOM_EPS;

/// Exact area of the union of `rects`, by coordinate compression.
///
/// Used throughout the test suite to prove non-overlap: a placement is
/// overlap-free iff `union_area == Σ area`. Runs in `O(n³)` worst case on
/// the compressed grid, which is instant at floorplanning sizes (tens of
/// modules).
///
/// ```
/// use fp_geom::{Rect, union_area};
/// let a = Rect::new(0.0, 0.0, 2.0, 2.0);
/// let b = Rect::new(1.0, 1.0, 2.0, 2.0); // overlaps a by 1
/// assert_eq!(union_area(&[a, b]), 7.0);
/// ```
#[must_use]
pub fn union_area(rects: &[Rect]) -> f64 {
    let live: Vec<&Rect> = rects.iter().filter(|r| !r.is_degenerate()).collect();
    if live.is_empty() {
        return 0.0;
    }
    let mut xs: Vec<f64> = live.iter().flat_map(|r| [r.x, r.right()]).collect();
    let mut ys: Vec<f64> = live.iter().flat_map(|r| [r.y, r.top()]).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|a, b| (*a - *b).abs() <= GEOM_EPS);
    ys.sort_by(f64::total_cmp);
    ys.dedup_by(|a, b| (*a - *b).abs() <= GEOM_EPS);

    let mut total = 0.0;
    for i in 0..xs.len() - 1 {
        let xm = (xs[i] + xs[i + 1]) / 2.0;
        for j in 0..ys.len() - 1 {
            let ym = (ys[j] + ys[j + 1]) / 2.0;
            if live
                .iter()
                .any(|r| r.x <= xm && xm <= r.right() && r.y <= ym && ym <= r.top())
            {
                total += (xs[i + 1] - xs[i]) * (ys[j + 1] - ys[j]);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_degenerate() {
        assert_eq!(union_area(&[]), 0.0);
        assert_eq!(union_area(&[Rect::new(0.0, 0.0, 0.0, 5.0)]), 0.0);
    }

    #[test]
    fn disjoint_sum() {
        let rects = [Rect::new(0.0, 0.0, 2.0, 3.0), Rect::new(5.0, 5.0, 1.0, 1.0)];
        assert_eq!(union_area(&rects), 7.0);
    }

    #[test]
    fn nested_counts_once() {
        let rects = [
            Rect::new(0.0, 0.0, 10.0, 10.0),
            Rect::new(2.0, 2.0, 3.0, 3.0),
        ];
        assert_eq!(union_area(&rects), 100.0);
    }

    #[test]
    fn identical_rects_count_once() {
        let r = Rect::new(1.0, 1.0, 4.0, 2.0);
        assert_eq!(union_area(&[r, r, r]), 8.0);
    }

    #[test]
    fn cross_shape() {
        let rects = [Rect::new(2.0, 0.0, 2.0, 6.0), Rect::new(0.0, 2.0, 6.0, 2.0)];
        // 12 + 12 - 4 overlap
        assert_eq!(union_area(&rects), 20.0);
    }
}
