//! Exact union area of rectangle sets.

use crate::rect::Rect;
use crate::GEOM_EPS;

/// Exact area of the union of `rects`, by plane sweep.
///
/// Used throughout the test suite to prove non-overlap: a placement is
/// overlap-free iff `union_area == Σ area`. A vertical sweep line visits
/// the sorted x-events (left/right rectangle edges); between consecutive
/// events the covered y-length is the measure of the active intervals,
/// computed by a sort-and-merge. `O(n² log n)` worst case, `O(n log n)`
/// when few rectangles are simultaneously active — versus the `O(n³)`
/// compressed-grid [`union_area_oracle`] it replaces.
///
/// ```
/// use fp_geom::{Rect, union_area};
/// let a = Rect::new(0.0, 0.0, 2.0, 2.0);
/// let b = Rect::new(1.0, 1.0, 2.0, 2.0); // overlaps a by 1
/// assert_eq!(union_area(&[a, b]), 7.0);
/// ```
#[must_use]
pub fn union_area(rects: &[Rect]) -> f64 {
    let live: Vec<&Rect> = rects.iter().filter(|r| !r.is_degenerate()).collect();
    if live.is_empty() {
        return 0.0;
    }
    // One open event and one close event per rectangle, sorted by x.
    let mut events: Vec<(f64, bool, u32)> = Vec::with_capacity(live.len() * 2);
    for (k, r) in live.iter().enumerate() {
        let k = u32::try_from(k).expect("rect count fits u32");
        events.push((r.x, true, k));
        events.push((r.right(), false, k));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut active: Vec<u32> = Vec::new();
    let mut spans: Vec<(f64, f64)> = Vec::new();
    let mut total = 0.0;
    let mut prev_x = events[0].0;
    let mut e = 0usize;
    while e < events.len() {
        let x = events[e].0;
        if x > prev_x && !active.is_empty() {
            // Measure of the union of active y-intervals.
            spans.clear();
            spans.extend(active.iter().map(|&k| {
                let r = live[k as usize];
                (r.y, r.top())
            }));
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut covered = 0.0;
            let mut cur_lo = spans[0].0;
            let mut cur_hi = spans[0].1;
            for &(lo, hi) in &spans[1..] {
                if lo > cur_hi {
                    covered += cur_hi - cur_lo;
                    cur_lo = lo;
                    cur_hi = hi;
                } else if hi > cur_hi {
                    cur_hi = hi;
                }
            }
            covered += cur_hi - cur_lo;
            total += (x - prev_x) * covered;
        }
        prev_x = x;
        // Apply every event at this x before advancing the sweep line.
        while e < events.len() && events[e].0 == x {
            let (_, open, k) = events[e];
            if open {
                active.push(k);
            } else if let Some(pos) = active.iter().position(|&a| a == k) {
                active.swap_remove(pos);
            }
            e += 1;
        }
    }
    total
}

/// Exact area of the union of `rects`, by coordinate compression.
///
/// The original implementation, kept as the differential-test oracle for
/// the sweep-line [`union_area`]: it tests midpoint containment for every
/// (x-slab, y-slab) cell of the compressed grid, `O(n³)` worst case —
/// instant at a few dozen rectangles, prohibitive at GSRC-class counts.
/// Coordinates within [`GEOM_EPS`](crate::GEOM_EPS) are merged.
#[must_use]
pub fn union_area_oracle(rects: &[Rect]) -> f64 {
    let live: Vec<&Rect> = rects.iter().filter(|r| !r.is_degenerate()).collect();
    if live.is_empty() {
        return 0.0;
    }
    let mut xs: Vec<f64> = live.iter().flat_map(|r| [r.x, r.right()]).collect();
    let mut ys: Vec<f64> = live.iter().flat_map(|r| [r.y, r.top()]).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|a, b| (*a - *b).abs() <= GEOM_EPS);
    ys.sort_by(f64::total_cmp);
    ys.dedup_by(|a, b| (*a - *b).abs() <= GEOM_EPS);

    let mut total = 0.0;
    for i in 0..xs.len() - 1 {
        let xm = (xs[i] + xs[i + 1]) / 2.0;
        for j in 0..ys.len() - 1 {
            let ym = (ys[j] + ys[j + 1]) / 2.0;
            if live
                .iter()
                .any(|r| r.x <= xm && xm <= r.right() && r.y <= ym && ym <= r.top())
            {
                total += (xs[i + 1] - xs[i]) * (ys[j + 1] - ys[j]);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_degenerate() {
        assert_eq!(union_area(&[]), 0.0);
        assert_eq!(union_area(&[Rect::new(0.0, 0.0, 0.0, 5.0)]), 0.0);
        assert_eq!(union_area_oracle(&[]), 0.0);
        assert_eq!(union_area_oracle(&[Rect::new(0.0, 0.0, 0.0, 5.0)]), 0.0);
    }

    #[test]
    fn disjoint_sum() {
        let rects = [Rect::new(0.0, 0.0, 2.0, 3.0), Rect::new(5.0, 5.0, 1.0, 1.0)];
        assert_eq!(union_area(&rects), 7.0);
        assert_eq!(union_area_oracle(&rects), 7.0);
    }

    #[test]
    fn nested_counts_once() {
        let rects = [
            Rect::new(0.0, 0.0, 10.0, 10.0),
            Rect::new(2.0, 2.0, 3.0, 3.0),
        ];
        assert_eq!(union_area(&rects), 100.0);
        assert_eq!(union_area_oracle(&rects), 100.0);
    }

    #[test]
    fn identical_rects_count_once() {
        let r = Rect::new(1.0, 1.0, 4.0, 2.0);
        assert_eq!(union_area(&[r, r, r]), 8.0);
        assert_eq!(union_area_oracle(&[r, r, r]), 8.0);
    }

    #[test]
    fn cross_shape() {
        let rects = [Rect::new(2.0, 0.0, 2.0, 6.0), Rect::new(0.0, 2.0, 6.0, 2.0)];
        // 12 + 12 - 4 overlap
        assert_eq!(union_area(&rects), 20.0);
        assert_eq!(union_area_oracle(&rects), 20.0);
    }

    #[test]
    fn touching_edges_no_double_count() {
        // Two rects sharing the x = 2 edge: union is the exact sum.
        let rects = [Rect::new(0.0, 0.0, 2.0, 3.0), Rect::new(2.0, 0.0, 2.0, 3.0)];
        assert_eq!(union_area(&rects), 12.0);
        assert_eq!(union_area_oracle(&rects), 12.0);
    }
}
