//! Covering-rectangle decomposition of a partial floorplan (paper §3.1).
//!
//! The successive-augmentation MILP needs two pair variables for every
//! (new module, fixed obstacle) pair, so the number of obstacles directly
//! controls the number of integer variables. The paper replaces the `N`
//! already-placed modules by `d ≤ N` *covering rectangles*: the hole-free
//! polygon under the partial floorplan's contour is partitioned by
//! **horizontal edge-cuts** (Fig. 4). Theorem 1 bounds the contour's
//! horizontal edge count by `n ≤ N + 1`; Theorem 2 bounds the partition
//! size by `N* ≤ n − 1`, hence `N* ≤ N`.
//!
//! Two faithful decompositions are provided:
//!
//! * [`horizontal_edge_cuts`] — the paper's construction: one slab per
//!   contour level, each slab split at the x-ranges where the contour
//!   reaches the slab.
//! * [`skyline_runs`] — the transposed (vertical) partition: one full-height
//!   rectangle per maximal constant-height run of the skyline. For staircase
//!   contours this often produces fewer rectangles, realizing the paper's
//!   remark that "a further reduction can be achieved".
//!
//! [`covering_rectangles`] returns whichever is smaller.

use crate::rect::Rect;
use crate::skyline::Skyline;
use crate::GEOM_EPS;

/// The paper's horizontal edge-cut partition of the region below the
/// skyline of `placed`.
///
/// Holes strictly below the contour are covered (the paper ignores bottom
/// holes because new modules only arrive from the open side), so the result
/// *over-approximates* the union of `placed` — which is exactly what a safe
/// obstacle set for the MILP requires.
#[must_use]
pub fn horizontal_edge_cuts(placed: &[Rect]) -> Vec<Rect> {
    horizontal_edge_cuts_from_skyline(&Skyline::from_rects(placed))
}

/// [`horizontal_edge_cuts`] on a pre-built skyline — the incremental path:
/// the augmentation driver maintains one [`Skyline`] across steps (one
/// [`Skyline::add_rect`] per placed module) instead of rebuilding from the
/// full rectangle set on every step.
#[must_use]
pub fn horizontal_edge_cuts_from_skyline(sky: &Skyline) -> Vec<Rect> {
    let levels = sky.levels();
    let mut out = Vec::new();
    let mut y_lo = 0.0;
    for &level in &levels {
        // The slab [y_lo, level) exists wherever the contour is >= level.
        let mut run_start: Option<f64> = None;
        let mut prev_end = f64::NAN;
        for (x0, x1, h) in sky.segments() {
            if h >= level - GEOM_EPS {
                match run_start {
                    Some(_) if (x0 - prev_end).abs() <= GEOM_EPS => {}
                    Some(s) => {
                        out.push(Rect::new(s, y_lo, prev_end - s, level - y_lo));
                        run_start = Some(x0);
                    }
                    None => run_start = Some(x0),
                }
                prev_end = x1;
            } else if let Some(s) = run_start.take() {
                out.push(Rect::new(s, y_lo, prev_end - s, level - y_lo));
            }
        }
        if let Some(s) = run_start {
            out.push(Rect::new(s, y_lo, prev_end - s, level - y_lo));
        }
        y_lo = level;
    }
    out
}

/// The transposed partition: one rectangle per maximal constant-height run
/// of the skyline, each anchored at `y = 0`.
#[must_use]
pub fn skyline_runs(placed: &[Rect]) -> Vec<Rect> {
    skyline_runs_from_skyline(&Skyline::from_rects(placed))
}

/// [`skyline_runs`] on a pre-built skyline (see
/// [`horizontal_edge_cuts_from_skyline`] for why).
#[must_use]
pub fn skyline_runs_from_skyline(sky: &Skyline) -> Vec<Rect> {
    sky.segments()
        .filter(|&(_, _, h)| h > GEOM_EPS)
        .map(|(x0, x1, h)| Rect::new(x0, 0.0, x1 - x0, h))
        .collect()
}

/// The smaller of [`horizontal_edge_cuts`] and [`skyline_runs`].
///
/// For partial floorplans produced by the augmentation procedure (every
/// module on the chip bottom or atop another), the count never exceeds the
/// number of placed modules (paper Theorems 1–2 corollary) — enforced by
/// this crate's property tests.
#[must_use]
pub fn covering_rectangles(placed: &[Rect]) -> Vec<Rect> {
    covering_rectangles_from_skyline(&Skyline::from_rects(placed))
}

/// [`covering_rectangles`] on a pre-built skyline — the incremental path
/// for drivers that maintain the skyline across augmentation steps.
#[must_use]
pub fn covering_rectangles_from_skyline(sky: &Skyline) -> Vec<Rect> {
    let horizontal = horizontal_edge_cuts_from_skyline(sky);
    let vertical = skyline_runs_from_skyline(sky);
    if vertical.len() <= horizontal.len() {
        vertical
    } else {
        horizontal
    }
}

/// Checks that `covers` fully cover every rectangle of `placed` — the safety
/// contract for using the decomposition as MILP obstacles.
#[must_use]
pub fn covers_all(covers: &[Rect], placed: &[Rect]) -> bool {
    placed.iter().all(|m| {
        let covered: f64 = covers.iter().map(|c| c.intersection_area(m)).sum();
        covered >= m.area() - 1e-6 * (1.0 + m.area())
    })
}

/// Checks that no two covers overlap in their interiors — the partition
/// contract (Theorem 2's cuts produce disjoint rectangles).
#[must_use]
pub fn pairwise_disjoint(covers: &[Rect]) -> bool {
    for (i, a) in covers.iter().enumerate() {
        for b in &covers[i + 1..] {
            if a.overlaps(b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 6-module arrangement sketched in the paper's Figure 4: modules
    /// stacked with a flat bottom; the decomposition must produce at most 6
    /// (paper: 5) covering rectangles.
    fn figure4_modules() -> Vec<Rect> {
        vec![
            Rect::new(0.0, 0.0, 3.0, 2.0), // bottom-left
            Rect::new(3.0, 0.0, 3.0, 3.0), // bottom-right
            Rect::new(0.0, 2.0, 2.0, 3.0), // tower on bottom-left
            Rect::new(2.0, 3.0, 2.0, 1.0), // bridge
            Rect::new(4.0, 3.0, 2.0, 2.0), // right tower
            Rect::new(0.0, 5.0, 1.0, 1.0), // cap
        ]
    }

    #[test]
    fn figure4_cover_count_within_bound() {
        let modules = figure4_modules();
        let covers = covering_rectangles(&modules);
        assert!(!covers.is_empty());
        assert!(
            covers.len() <= modules.len(),
            "corollary N* <= N violated: {} > {}",
            covers.len(),
            modules.len()
        );
        assert!(covers_all(&covers, &modules));
        assert!(pairwise_disjoint(&covers));
    }

    #[test]
    fn horizontal_cuts_tile_exact_region() {
        let modules = figure4_modules();
        let cuts = horizontal_edge_cuts(&modules);
        assert!(covers_all(&cuts, &modules));
        assert!(pairwise_disjoint(&cuts));
        // The cuts tile the region under the skyline: areas must agree.
        let sky_area: f64 = Skyline::from_rects(&modules)
            .segments()
            .map(|(x0, x1, h)| (x1 - x0) * h)
            .sum();
        let cut_area: f64 = cuts.iter().map(Rect::area).sum();
        assert!((sky_area - cut_area).abs() < 1e-9);
    }

    #[test]
    fn vertical_runs_tile_exact_region() {
        let modules = figure4_modules();
        let runs = skyline_runs(&modules);
        assert!(covers_all(&runs, &modules));
        assert!(pairwise_disjoint(&runs));
        let sky_area: f64 = Skyline::from_rects(&modules)
            .segments()
            .map(|(x0, x1, h)| (x1 - x0) * h)
            .sum();
        let run_area: f64 = runs.iter().map(Rect::area).sum();
        assert!((sky_area - run_area).abs() < 1e-9);
    }

    #[test]
    fn single_module_single_cover() {
        let one = vec![Rect::new(2.0, 0.0, 3.0, 4.0)];
        let covers = covering_rectangles(&one);
        assert_eq!(covers.len(), 1);
        assert_eq!(covers[0], one[0]);
    }

    #[test]
    fn flat_row_collapses_to_one_cover() {
        // Three equal-height modules in a row: 1 covering rectangle.
        let row = vec![
            Rect::new(0.0, 0.0, 2.0, 3.0),
            Rect::new(2.0, 0.0, 2.0, 3.0),
            Rect::new(4.0, 0.0, 2.0, 3.0),
        ];
        assert_eq!(covering_rectangles(&row).len(), 1);
    }

    #[test]
    fn two_towers_with_gap() {
        // Disconnected contour: slabs split into per-tower rectangles.
        let towers = vec![Rect::new(0.0, 0.0, 1.0, 5.0), Rect::new(4.0, 0.0, 1.0, 3.0)];
        let covers = covering_rectangles(&towers);
        assert_eq!(covers.len(), 2);
        assert!(covers_all(&covers, &towers));
        assert!(pairwise_disjoint(&covers));
    }

    #[test]
    fn empty_input() {
        assert!(covering_rectangles(&[]).is_empty());
        assert!(horizontal_edge_cuts(&[]).is_empty());
        assert!(skyline_runs(&[]).is_empty());
    }

    #[test]
    fn hole_below_contour_is_covered() {
        // A bridge over a gap: the hole below is filled (paper ignores
        // bottom holes). Safety (covers_all) must still hold.
        let bridge = vec![
            Rect::new(0.0, 0.0, 1.0, 2.0),
            Rect::new(3.0, 0.0, 1.0, 2.0),
            Rect::new(0.0, 2.0, 4.0, 1.0),
        ];
        let covers = covering_rectangles(&bridge);
        assert!(covers_all(&covers, &bridge));
        // The covered area is the full region under the contour (12), more
        // than the module area (8): over-approximation by design.
        let total: f64 = covers.iter().map(Rect::area).sum();
        assert!((total - 12.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_skyline_gives_identical_covers() {
        // The from_skyline entry points on an incrementally-grown skyline
        // must match the batch builders exactly.
        let modules = figure4_modules();
        let mut sky = Skyline::new();
        for m in &modules {
            sky.add_rect(m);
        }
        assert_eq!(
            covering_rectangles_from_skyline(&sky),
            covering_rectangles(&modules)
        );
        assert_eq!(
            horizontal_edge_cuts_from_skyline(&sky),
            horizontal_edge_cuts(&modules)
        );
        assert_eq!(skyline_runs_from_skyline(&sky), skyline_runs(&modules));
    }

    #[test]
    fn staircase_prefers_vertical_runs() {
        // Descending staircase of k steps: horizontal cuts give k slabs,
        // vertical runs give k columns; both are k, pick either — but a
        // plateaued staircase favors runs.
        let stairs = vec![
            Rect::new(0.0, 0.0, 2.0, 4.0),
            Rect::new(2.0, 0.0, 2.0, 4.0), // merges with previous run
            Rect::new(4.0, 0.0, 2.0, 2.0),
        ];
        let covers = covering_rectangles(&stairs);
        assert_eq!(covers.len(), 2);
    }
}
