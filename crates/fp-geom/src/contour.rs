//! Rectilinear contour (the paper's Fig. 4b "hole-free polygon").
//!
//! The partial floorplan's covering polygon is the region under its
//! [`Skyline`]; this module materializes that polygon as an ordered,
//! counter-clockwise vertex list — useful for rendering the augmentation
//! state exactly as the paper draws it and for counting the horizontal
//! edges that Theorem 1 bounds (`n ≤ N + 1`).

use crate::rect::Rect;
use crate::skyline::Skyline;
use crate::{Point, GEOM_EPS};

/// A closed rectilinear polygon, counter-clockwise, with the chip floor as
/// its bottom edge (flat bottom, as required by §3.1).
///
/// ```
/// use fp_geom::{Contour, Rect};
/// let contour = Contour::from_rects(&[
///     Rect::new(0.0, 0.0, 2.0, 3.0),
///     Rect::new(2.0, 0.0, 2.0, 1.0),
/// ]).unwrap();
/// assert_eq!(contour.area(), 8.0);
/// assert_eq!(contour.horizontal_edges(), 3); // two tops + the floor
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Contour {
    vertices: Vec<Point>,
}

impl Contour {
    /// Builds the contour of the region under the skyline of `placed`.
    /// Returns `None` for an empty placement.
    #[must_use]
    pub fn from_rects(placed: &[Rect]) -> Option<Self> {
        Self::from_skyline(&Skyline::from_rects(placed))
    }

    /// Builds the contour from a pre-built skyline — the incremental path
    /// for callers that maintain the skyline with [`Skyline::add_rect`]
    /// instead of rebuilding from the full rectangle set. Returns `None`
    /// for an empty skyline.
    #[must_use]
    pub fn from_skyline(sky: &Skyline) -> Option<Self> {
        if sky.is_empty() {
            return None;
        }
        let segments: Vec<(f64, f64, f64)> = sky.segments().collect();
        let (x_start, _, _) = *segments.first()?;
        let (_, x_end, _) = *segments.last()?;

        // Walk the top profile left→right, then close along the bottom.
        let mut vertices = vec![Point::new(x_start, 0.0)];
        let mut prev_h = 0.0;
        for &(x0, x1, h) in &segments {
            if (h - prev_h).abs() > GEOM_EPS {
                vertices.push(Point::new(x0, prev_h));
                vertices.push(Point::new(x0, h));
            }
            prev_h = h;
            let _ = x1;
        }
        vertices.push(Point::new(x_end, prev_h));
        vertices.push(Point::new(x_end, 0.0));
        // Deduplicate consecutive identical vertices (zero-height starts).
        vertices.dedup_by(|a, b| a.manhattan(b) <= GEOM_EPS);
        // Drop a trailing duplicate of the first vertex if the profile was
        // flat at zero height.
        if vertices.len() >= 2
            && vertices
                .first()
                .zip(vertices.last())
                .is_some_and(|(f, l)| f.manhattan(l) <= GEOM_EPS)
        {
            vertices.pop();
        }
        Some(Contour { vertices })
    }

    /// The vertices, counter-clockwise, starting at the bottom-left corner.
    #[must_use]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of **horizontal edges** of the polygon (including the bottom
    /// edge) — the `n` of Theorem 1 (`n ≤ N + 1` for `N` supported
    /// modules).
    #[must_use]
    pub fn horizontal_edges(&self) -> usize {
        let v = &self.vertices;
        if v.len() < 4 {
            return 0;
        }
        let mut count = 0;
        for k in 0..v.len() {
            let a = v[k];
            let b = v[(k + 1) % v.len()];
            if (a.y - b.y).abs() <= GEOM_EPS && (a.x - b.x).abs() > GEOM_EPS {
                count += 1;
            }
        }
        count
    }

    /// Enclosed area (shoelace formula; the polygon is simple).
    #[must_use]
    pub fn area(&self) -> f64 {
        let v = &self.vertices;
        let mut twice = 0.0;
        for k in 0..v.len() {
            let a = v[k];
            let b = v[(k + 1) % v.len()];
            twice += a.x * b.y - b.x * a.y;
        }
        (twice / 2.0).abs()
    }

    /// Renders the contour as an SVG path `d` attribute string.
    #[must_use]
    pub fn to_svg_path(&self) -> String {
        let mut out = String::new();
        for (k, p) in self.vertices.iter().enumerate() {
            let cmd = if k == 0 { 'M' } else { 'L' };
            out.push_str(&format!("{cmd}{} {} ", p.x, p.y));
        }
        out.push('Z');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_placement() {
        assert!(Contour::from_rects(&[]).is_none());
    }

    #[test]
    fn single_rect_is_its_own_contour() {
        let c = Contour::from_rects(&[Rect::new(1.0, 0.0, 4.0, 3.0)]).unwrap();
        assert_eq!(c.area(), 12.0);
        // Rectangle: bottom + top = 2 horizontal edges.
        assert_eq!(c.horizontal_edges(), 2);
        assert_eq!(c.vertices().len(), 4);
    }

    #[test]
    fn staircase_contour() {
        let rects = [
            Rect::new(0.0, 0.0, 2.0, 3.0),
            Rect::new(2.0, 0.0, 2.0, 2.0),
            Rect::new(4.0, 0.0, 2.0, 1.0),
        ];
        let c = Contour::from_rects(&rects).unwrap();
        assert!((c.area() - (6.0 + 4.0 + 2.0)).abs() < 1e-9);
        // Theorem 1: n <= N + 1 = 4; here exactly 3 tops + 1 bottom = 4.
        assert_eq!(c.horizontal_edges(), 4);
    }

    #[test]
    fn theorem1_bound_on_supported_placements() {
        use crate::skyline::Skyline;
        // Drop a deterministic sequence of modules bottom-left.
        let dims = [(3.0, 2.0), (2.0, 4.0), (4.0, 1.0), (1.0, 3.0), (2.0, 2.0)];
        let mut placed: Vec<Rect> = Vec::new();
        for &(w, h) in &dims {
            let sky = Skyline::from_rects(&placed);
            let (x, y) = sky.drop_position(w, 7.0).unwrap();
            placed.push(Rect::new(x, y, w, h));
        }
        let c = Contour::from_rects(&placed).unwrap();
        assert!(
            c.horizontal_edges() <= placed.len() + 1,
            "n = {} > N + 1 = {}",
            c.horizontal_edges(),
            placed.len() + 1
        );
    }

    #[test]
    fn contour_area_matches_skyline_area() {
        let rects = [
            Rect::new(0.0, 0.0, 3.0, 2.0),
            Rect::new(1.0, 0.0, 2.0, 5.0),
            Rect::new(5.0, 0.0, 2.0, 1.0),
        ];
        let c = Contour::from_rects(&rects).unwrap();
        let sky_area: f64 = Skyline::from_rects(&rects)
            .segments()
            .map(|(x0, x1, h)| (x1 - x0) * h)
            .sum();
        assert!((c.area() - sky_area).abs() < 1e-9);
    }

    #[test]
    fn from_skyline_matches_from_rects() {
        let rects = [
            Rect::new(0.0, 0.0, 3.0, 2.0),
            Rect::new(1.0, 0.0, 2.0, 5.0),
            Rect::new(5.0, 0.0, 2.0, 1.0),
        ];
        let mut sky = Skyline::new();
        for r in &rects {
            sky.add_rect(r);
        }
        assert_eq!(Contour::from_skyline(&sky), Contour::from_rects(&rects));
        assert_eq!(Contour::from_skyline(&Skyline::new()), None);
    }

    #[test]
    fn svg_path_is_closed() {
        let c = Contour::from_rects(&[Rect::new(0.0, 0.0, 1.0, 1.0)]).unwrap();
        let d = c.to_svg_path();
        assert!(d.starts_with('M'));
        assert!(d.ends_with('Z'));
        assert_eq!(d.matches('L').count(), 3);
    }
}
