//! Smooth surrogates for the non-differentiable pieces of placement cost.
//!
//! Three ingredients, all classical in analytical placement:
//!
//! * `sabs` — a smoothed `|d|` for Manhattan wirelength,
//!   `γ·ln(2·cosh(d/γ))`, whose gradient is `tanh(d/γ)`;
//! * `lse` — the log-sum-exp softmax that turns `max(tops)` (the chip
//!   height) into a differentiable function;
//! * `bell` — the bell-shaped overlap kernel `(1 − (d/r)²)²` on `|d| < r`
//!   used by smoothed density/overlap penalties: positive exactly when two
//!   module extents overlap on an axis, with a gradient that pushes centers
//!   apart.

/// Smoothed absolute value `γ·ln(2·cosh(d/γ))`, computed overflow-safely as
/// `|d| + γ·ln(1 + e^(−2|d|/γ))`. Approaches `|d|` from above as γ → 0.
pub(crate) fn sabs(d: f64, gamma: f64) -> f64 {
    let a = d.abs();
    a + gamma * (-2.0 * a / gamma).exp().ln_1p()
}

/// Gradient of [`sabs`] with respect to `d`: `tanh(d/γ)`.
pub(crate) fn dsabs(d: f64, gamma: f64) -> f64 {
    (d / gamma).tanh()
}

/// Log-sum-exp softmax of `vals` at temperature `gamma`, max-shifted so the
/// exponentials never overflow. Returns the smoothed maximum and fills
/// `weights` with `∂lse/∂vals[i]` (a softmax distribution).
pub(crate) fn lse(vals: &[f64], gamma: f64, weights: &mut [f64]) -> f64 {
    debug_assert_eq!(vals.len(), weights.len());
    let m = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut z = 0.0;
    for (w, &v) in weights.iter_mut().zip(vals) {
        *w = ((v - m) / gamma).exp();
        z += *w;
    }
    for w in weights.iter_mut() {
        *w /= z;
    }
    m + gamma * z.ln()
}

/// Bell-shaped overlap kernel: `(1 − (d/r)²)²` for `|d| < r`, else `0`.
/// `d` is the center distance on one axis, `r` the half-extent sum — the
/// kernel is positive exactly when the two extents overlap on that axis.
pub(crate) fn bell(d: f64, r: f64) -> f64 {
    let s = d / r;
    if s.abs() >= 1.0 {
        0.0
    } else {
        let t = 1.0 - s * s;
        t * t
    }
}

/// Gradient of [`bell`] with respect to `d`: `−4·s·(1 − s²)/r` with
/// `s = d/r` (zero outside the support).
pub(crate) fn dbell(d: f64, r: f64) -> f64 {
    let s = d / r;
    if s.abs() >= 1.0 {
        0.0
    } else {
        -4.0 * s * (1.0 - s * s) / r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn sabs_upper_bounds_abs_and_converges() {
        for &d in &[-5.0, -0.3, 0.0, 0.7, 12.0] {
            assert!(sabs(d, 1.0) >= d.abs());
            assert!(sabs(d, 0.01) - d.abs() < 0.01);
        }
        // Huge arguments must not overflow.
        assert!(sabs(1e12, 1.0).is_finite());
    }

    #[test]
    fn dsabs_matches_numeric_gradient() {
        for &d in &[-3.0, -0.2, 0.1, 2.5] {
            let num = numeric_grad(|x| sabs(x, 0.7), d);
            assert!((dsabs(d, 0.7) - num).abs() < 1e-5, "at {d}");
        }
    }

    #[test]
    fn lse_bounds_max() {
        let vals = [1.0, 4.0, 2.5];
        let mut w = [0.0; 3];
        let v = lse(&vals, 0.5, &mut w);
        assert!(v >= 4.0 && v <= 4.0 + 0.5 * (3.0f64).ln() + 1e-12);
        let total: f64 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(w[1] > w[2] && w[2] > w[0]);
        // Max-shift keeps huge inputs finite.
        let mut w2 = [0.0; 2];
        assert!(lse(&[1e9, 1e9 + 1.0], 1.0, &mut w2).is_finite());
    }

    #[test]
    fn bell_support_and_gradient() {
        assert_eq!(bell(3.0, 2.0), 0.0);
        assert_eq!(bell(0.0, 2.0), 1.0);
        assert!(bell(1.0, 2.0) > 0.0);
        for &d in &[-1.5, -0.4, 0.3, 1.9] {
            let num = numeric_grad(|x| bell(x, 2.0), d);
            assert!((dbell(d, 2.0) - num).abs() < 1e-5, "at {d}");
        }
    }
}
