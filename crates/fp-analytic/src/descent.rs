//! The smoothed-objective optimizer: module state, cost and gradient
//! evaluation, and the Nesterov descent loop with an adaptive step.
//!
//! The objective over continuous module centers is
//!
//! ```text
//! f = W · lse(tops, γ)                       (smoothed chip area)
//!   + λ · Σ c_ij (sabs(Δx, γw) + sabs(Δy, γw))   (smoothed wirelength)
//!   + μ · Σ bell(Δx, rx)·bell(Δy, ry)        (overlap penalty)
//!   + κ · Σ boundary violations²             (fixed-outline walls)
//! ```
//!
//! with the density weight μ scheduled *outward* (doubled per round) so
//! early rounds spread freely for wirelength/height and later rounds
//! squeeze overlaps out before legalization.

use crate::smooth::{bell, dbell, dsabs, lse, sabs};
use fp_geom::BinGrid;

/// Deterministic SplitMix64 stream — the crate's only randomness source,
/// so placements are reproducible from the seed alone with no external
/// RNG dependency.
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The continuous shape of one module during descent.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ShapeState {
    /// Fixed dims; `rotated` swaps them when the module allows it.
    Rigid { w0: f64, h0: f64, rotatable: bool },
    /// `h = area / w` with `w ∈ [w_min, w_max]`.
    Soft { area: f64, w_min: f64, w_max: f64 },
}

/// One module's center position and current realized shape.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ModuleState {
    pub cx: f64,
    pub cy: f64,
    /// Realized width under the current orientation / soft width.
    pub w: f64,
    /// Realized height under the current orientation / soft width.
    pub h: f64,
    pub rotated: bool,
    pub shape: ShapeState,
}

impl ModuleState {
    /// Applies a discrete shape decision, keeping the center fixed.
    pub(crate) fn set_shape(&mut self, rotated: bool, w: f64) {
        match self.shape {
            ShapeState::Rigid { w0, h0, rotatable } => {
                self.rotated = rotated && rotatable;
                if self.rotated {
                    self.w = h0;
                    self.h = w0;
                } else {
                    self.w = w0;
                    self.h = h0;
                }
            }
            ShapeState::Soft { area, w_min, w_max } => {
                self.w = w.clamp(w_min, w_max);
                self.h = area / self.w;
            }
        }
    }
}

/// Fixed weights and schedule state for one cost evaluation.
pub(crate) struct CostParams {
    pub chip_w: f64,
    pub lambda: f64,
    /// Overlap penalty weight (scheduled outward across rounds).
    pub mu: f64,
    /// LSE temperature for the chip-height softmax.
    pub gamma: f64,
    /// Smoothing width for wirelength `sabs`.
    pub gamma_w: f64,
    /// Boundary wall weight.
    pub kappa: f64,
}

/// Scratch buffers reused across evaluations: tops + softmax weights for
/// the LSE height term, and the bin grid + packed payloads the pruned
/// overlap pass re-bins into each call (rebuild-in-place keeps the
/// steady state free of allocator traffic, which is what lets the pruned
/// path win even at ami33 scale).
pub(crate) struct Scratch {
    tops: Vec<f64>,
    weights: Vec<f64>,
    grid: BinGrid,
    packed: Vec<(f64, f64, f64, f64, u32)>,
}

impl Scratch {
    pub(crate) fn new(n: usize) -> Self {
        Scratch {
            tops: vec![0.0; n],
            weights: vec![0.0; n],
            grid: BinGrid::build(std::iter::empty(), 1.0),
            packed: Vec::with_capacity(n),
        }
    }
}

/// One pair's bell overlap contribution: `(cost, ∂/∂cx_i, ∂/∂cy_i)`
/// (the `j` gradients are the negation). `None` outside the kernel's
/// compact support.
#[inline]
fn bell_pair(a: &ModuleState, b: &ModuleState, mu: f64) -> Option<(f64, f64, f64)> {
    let rx = (a.w + b.w) / 2.0;
    let ry = (a.h + b.h) / 2.0;
    let dx = a.cx - b.cx;
    let dy = a.cy - b.cy;
    let px = bell(dx, rx);
    if px == 0.0 {
        return None;
    }
    let py = bell(dy, ry);
    if py == 0.0 {
        return None;
    }
    Some((
        mu * px * py,
        mu * dbell(dx, rx) * py,
        mu * px * dbell(dy, ry),
    ))
}

/// Bell overlap term over all `i < j` pairs — `O(n²)`. Kept as the
/// differential-test and benchmark oracle for [`overlap_pruned`].
pub(crate) fn overlap_all_pairs(
    st: &[ModuleState],
    mu: f64,
    gx: &mut [f64],
    gy: &mut [f64],
) -> f64 {
    let n = st.len();
    let mut cost = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            if let Some((c, gdx, gdy)) = bell_pair(&st[i], &st[j], mu) {
                cost += c;
                gx[i] += gdx;
                gx[j] -= gdx;
                gy[i] += gdy;
                gy[j] -= gdy;
            }
        }
    }
    cost
}

/// The `O(n²)` loop [`overlap_pruned`] falls back to when window
/// coverage says the grid cannot prune: same pair set and arithmetic as
/// [`overlap_all_pairs`], but out-of-support pairs are rejected by the
/// multiply-free `|Δ| ≥ (w_i + w_j)/2` comparisons before any of the
/// kernel's divisions run — measurably faster than the oracle on
/// macro-heavy decks even though the asymptotics match.
fn overlap_dense(st: &[ModuleState], mu: f64, gx: &mut [f64], gy: &mut [f64]) -> f64 {
    let n = st.len();
    let mut cost = 0.0;
    for i in 0..n {
        let a = st[i];
        for (jo, b) in st[i + 1..].iter().enumerate() {
            let dx = a.cx - b.cx;
            let rxp = (a.w + b.w) * 0.5;
            if dx.abs() >= rxp {
                continue;
            }
            let dy = a.cy - b.cy;
            let ryp = (a.h + b.h) * 0.5;
            if dy.abs() >= ryp {
                continue;
            }
            let sx = dx / rxp;
            let tx = 1.0 - sx * sx;
            let px = tx * tx;
            let sy = dy / ryp;
            let ty = 1.0 - sy * sy;
            let py = ty * ty;
            cost += mu * px * py;
            let gdx = mu * (-4.0 * sx * tx / rxp) * py;
            let gdy = mu * px * (-4.0 * sy * ty / ryp);
            let j = i + 1 + jo;
            gx[i] += gdx;
            gx[j] -= gdx;
            gy[i] += gdy;
            gy[j] -= gdy;
        }
    }
    cost
}

/// How much of the all-pairs candidate set a windowed grid scan is
/// expected to visit, assuming roughly uniform module density: the mean
/// window extent over the point spread, per axis, multiplied. Above
/// [`DENSE_FRACTION`] the grid cannot prune enough to pay for itself.
const DENSE_FRACTION: f64 = 0.3;

/// Below this module count the dense loop's working set fits in cache
/// and the grid's fixed re-binning passes dominate whatever it prunes.
const DENSE_N: usize = 64;

/// Bell overlap term pruned to spatial neighbors — `O(n·k)` for `k`
/// neighbors per module.
///
/// The kernel's support is compact: pair `(i, j)` contributes only when
/// `|Δcx| < (w_i + w_j)/2 ≤ (w_i + w_max)/2` **and** `|Δcy| < (h_i +
/// h_j)/2 ≤ (h_i + h_max)/2`, so scanning the bin-grid cells covered by
/// the window `(w_i + w_max) × (h_i + h_max)` around module `i`'s center
/// misses nothing — the pruning is exact, which the differential tests
/// pin against [`overlap_all_pairs`] at every continuation stage. The
/// window is covered by whatever cells intersect it, so the cell size is
/// purely a performance knob: half the maximum extent (tighter than the
/// kernel's worst-case support, so typical smaller-than-the-largest-
/// macro modules scan few candidates), floored by the point spread so
/// the grid stays at ~`n` cells even when an early continuation stage
/// scatters modules over a huge extent. Candidate payloads are packed in
/// the grid's CSR order so each window is a few sequential row scans,
/// and the cheap `|Δ| ≥ (w_i + w_j)/2` rejections happen before any of
/// the kernel's divisions. Pairs are visited in a fixed deterministic
/// order, so results are reproducible run-to-run (they may differ from
/// the all-pairs *summation order* by float rounding only).
///
/// When the expected window coverage says pruning cannot pay — tiny
/// instances, or macros so large relative to the spread that every
/// window spans most of it (ami33-class decks late in the schedule) —
/// the kernel switches to a dense `O(n²)` loop that keeps the
/// division-free rejection tests, so the adaptive path is never slower
/// than the plain oracle.
pub(crate) fn overlap_pruned(
    st: &[ModuleState],
    mu: f64,
    scratch: &mut Scratch,
    gx: &mut [f64],
    gy: &mut [f64],
) -> f64 {
    let n = st.len();
    let mut w_max = 0.0f64;
    let mut h_max = 0.0f64;
    let mut w_sum = 0.0f64;
    let mut h_sum = 0.0f64;
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for m in st {
        w_max = w_max.max(m.w);
        h_max = h_max.max(m.h);
        w_sum += m.w;
        h_sum += m.h;
        min_x = min_x.min(m.cx);
        max_x = max_x.max(m.cx);
        min_y = min_y.min(m.cy);
        max_y = max_y.max(m.cy);
    }
    let inv_n = 1.0 / (n.max(1) as f64);
    let frac_x = ((w_sum * inv_n + w_max) / (max_x - min_x).max(1e-9)).min(1.0);
    let frac_y = ((h_sum * inv_n + h_max) / (max_y - min_y).max(1e-9)).min(1.0);
    if n < DENSE_N || frac_x * frac_y > DENSE_FRACTION {
        return overlap_dense(st, mu, gx, gy);
    }
    let per_axis = (n as f64).sqrt().ceil().max(1.0);
    let cell_x = (w_max * 0.5).max((max_x - min_x) / per_axis);
    let cell_y = (h_max * 0.5).max((max_y - min_y) / per_axis);
    let Scratch { grid, packed, .. } = scratch;
    grid.rebuild_xy_bounded(
        st.iter().map(|m| (m.cx, m.cy)),
        cell_x,
        cell_y,
        (min_x, min_y, max_x, max_y),
    );
    // (cx, cy, w, h, index) in CSR order: window scans walk contiguous
    // memory instead of chasing `st[j]` through the heap.
    packed.clear();
    packed.extend(grid.items().iter().map(|&j| {
        let m = &st[j as usize];
        (m.cx, m.cy, m.w, m.h, j)
    }));
    let mut cost = 0.0;
    // Walk modules in CSR order. Both endpoints of an in-support pair see
    // each other's window (|Δcx| < (w_i + w_j)/2 bounds both radii), so
    // restricting each scan to CSR positions *after* the probe's own
    // visits every unordered pair exactly once — from whichever endpoint
    // the grid ordered first — with no per-candidate identity check.
    for (p, &(acx, acy, aw, ah, i)) in packed.iter().enumerate() {
        let i = i as usize;
        let rx = (aw + w_max) * 0.5;
        let ry = (ah + h_max) * 0.5;
        grid.for_each_run_in_window(acx - rx, acy - ry, acx + rx, acy + ry, |range| {
            let lo = range.start.max(p + 1);
            if lo >= range.end {
                return; // run is entirely at or before the probe
            }
            for &(bcx, bcy, bw, bh, j) in &packed[lo..range.end] {
                let dx = acx - bcx;
                let rxp = (aw + bw) * 0.5;
                if dx.abs() >= rxp {
                    continue;
                }
                let dy = acy - bcy;
                let ryp = (ah + bh) * 0.5;
                if dy.abs() >= ryp {
                    continue;
                }
                // In support: same arithmetic as `bell_pair`, inlined so
                // the rejected candidates above never paid for it.
                let sx = dx / rxp;
                let tx = 1.0 - sx * sx;
                let px = tx * tx;
                let sy = dy / ryp;
                let ty = 1.0 - sy * sy;
                let py = ty * ty;
                cost += mu * px * py;
                let gdx = mu * (-4.0 * sx * tx / rxp) * py;
                let gdy = mu * px * (-4.0 * sy * ty / ryp);
                let j = j as usize;
                gx[i] += gdx;
                gx[j] -= gdx;
                gy[i] += gdy;
                gy[j] -= gdy;
            }
        });
    }
    cost
}

/// Evaluates the smoothed cost and writes its gradient with respect to
/// every center into `(gx, gy)`. `conn` holds the sparse positive
/// connectivity pairs `(i, j, c_ij)` with `i < j`. The overlap term runs
/// through the bin-grid pruned path; [`cost_and_grad_all_pairs`] is the
/// all-pairs oracle variant.
pub(crate) fn cost_and_grad(
    st: &[ModuleState],
    conn: &[(usize, usize, f64)],
    p: &CostParams,
    scratch: &mut Scratch,
    gx: &mut [f64],
    gy: &mut [f64],
) -> f64 {
    cost_and_grad_impl(st, conn, p, scratch, gx, gy, true)
}

/// [`cost_and_grad`] with the `O(n²)` all-pairs overlap term — the oracle
/// the pruned path is differentially tested and benchmarked against.
pub(crate) fn cost_and_grad_all_pairs(
    st: &[ModuleState],
    conn: &[(usize, usize, f64)],
    p: &CostParams,
    scratch: &mut Scratch,
    gx: &mut [f64],
    gy: &mut [f64],
) -> f64 {
    cost_and_grad_impl(st, conn, p, scratch, gx, gy, false)
}

#[allow(clippy::too_many_arguments)]
fn cost_and_grad_impl(
    st: &[ModuleState],
    conn: &[(usize, usize, f64)],
    p: &CostParams,
    scratch: &mut Scratch,
    gx: &mut [f64],
    gy: &mut [f64],
    pruned: bool,
) -> f64 {
    gx.fill(0.0);
    gy.fill(0.0);

    // Smoothed chip area: W · lse(tops). d top_i / d cy_i = 1.
    for (t, m) in scratch.tops.iter_mut().zip(st) {
        *t = m.cy + m.h / 2.0;
    }
    let height = lse(&scratch.tops, p.gamma, &mut scratch.weights);
    let mut cost = p.chip_w * height;
    for (g, w) in gy.iter_mut().zip(&scratch.weights) {
        *g += p.chip_w * w;
    }

    // Smoothed wirelength over positive-connectivity pairs.
    if p.lambda > 0.0 {
        for &(i, j, c) in conn {
            let dx = st[i].cx - st[j].cx;
            let dy = st[i].cy - st[j].cy;
            cost += p.lambda * c * (sabs(dx, p.gamma_w) + sabs(dy, p.gamma_w));
            let gdx = p.lambda * c * dsabs(dx, p.gamma_w);
            let gdy = p.lambda * c * dsabs(dy, p.gamma_w);
            gx[i] += gdx;
            gx[j] -= gdx;
            gy[i] += gdy;
            gy[j] -= gdy;
        }
    }

    // Bell overlap penalty: product of the two axis kernels, so the
    // gradient of each axis is weighted by the other's kernel value.
    cost += if pruned {
        overlap_pruned(st, p.mu, scratch, gx, gy)
    } else {
        overlap_all_pairs(st, p.mu, gx, gy)
    };

    // Quadratic walls: left/right at x ∈ [0, W], floor at y = 0. The top
    // is free — the height term already pulls downward.
    for (i, m) in st.iter().enumerate() {
        let left = m.cx - m.w / 2.0;
        if left < 0.0 {
            cost += p.kappa * left * left;
            gx[i] += 2.0 * p.kappa * left;
        }
        let right = m.cx + m.w / 2.0 - p.chip_w;
        if right > 0.0 {
            cost += p.kappa * right * right;
            gx[i] += 2.0 * p.kappa * right;
        }
        let bottom = m.cy - m.h / 2.0;
        if bottom < 0.0 {
            cost += p.kappa * bottom * bottom;
            gy[i] += 2.0 * p.kappa * bottom;
        }
    }

    cost
}

/// One round of Nesterov-accelerated descent with an adaptive step:
/// lookahead gradient, velocity β = 0.9, step shrink ×0.6 + velocity reset
/// on a cost increase, gentle ×1.02 growth otherwise. Returns the number
/// of iterations actually run (early-exit on `should_stop`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn descend(
    st: &mut [ModuleState],
    conn: &[(usize, usize, f64)],
    p: &CostParams,
    iters: usize,
    step: &mut f64,
    scratch: &mut Scratch,
    should_stop: &mut dyn FnMut() -> bool,
) -> usize {
    let n = st.len();
    let beta = 0.9;
    let mut vx = vec![0.0; n];
    let mut vy = vec![0.0; n];
    let mut gx = vec![0.0; n];
    let mut gy = vec![0.0; n];
    let mut look: Vec<ModuleState> = st.to_vec();
    let mut prev_cost = f64::INFINITY;

    for it in 0..iters {
        if it % 8 == 0 && should_stop() {
            return it;
        }
        // Lookahead point x + β·v.
        look.copy_from_slice(st);
        for i in 0..n {
            look[i].cx += beta * vx[i];
            look[i].cy += beta * vy[i];
        }
        let cost = cost_and_grad(&look, conn, p, scratch, &mut gx, &mut gy);
        if cost > prev_cost + 1e-12 {
            // Overshot: shrink the step and drop the momentum.
            *step *= 0.6;
            vx.fill(0.0);
            vy.fill(0.0);
        } else {
            *step *= 1.02;
        }
        prev_cost = cost;
        for i in 0..n {
            vx[i] = beta * vx[i] - *step * gx[i];
            vy[i] = beta * vy[i] - *step * gy[i];
            st[i].cx += vx[i];
            st[i].cy += vy[i];
        }
    }
    iters
}

/// Discrete shape sweep: for each module, tries the alternative orientation
/// (rigid, rotatable) or a small set of widths (soft) and keeps whichever
/// minimizes the full smoothed cost. One pass in index order — cheap
/// (`n` is small) and deterministic.
pub(crate) fn shape_sweep(
    st: &mut [ModuleState],
    conn: &[(usize, usize, f64)],
    p: &CostParams,
    scratch: &mut Scratch,
    gx: &mut [f64],
    gy: &mut [f64],
) {
    for i in 0..st.len() {
        let candidates: Vec<(bool, f64)> = match st[i].shape {
            ShapeState::Rigid { rotatable, .. } => {
                if rotatable {
                    vec![(false, 0.0), (true, 0.0)]
                } else {
                    continue;
                }
            }
            ShapeState::Soft { w_min, w_max, .. } => vec![
                (false, w_min),
                (false, (w_min + w_max) / 2.0),
                (false, w_max),
            ],
        };
        let saved = st[i];
        let mut best = (f64::INFINITY, saved.rotated, saved.w);
        for (rot, w) in candidates {
            st[i].set_shape(rot, w);
            let cost = cost_and_grad(st, conn, p, scratch, gx, gy);
            if cost < best.0 - 1e-12 {
                best = (cost, st[i].rotated, st[i].w);
            }
        }
        st[i] = saved;
        st[i].set_shape(best.1, best.2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rigid(cx: f64, cy: f64, w: f64, h: f64) -> ModuleState {
        ModuleState {
            cx,
            cy,
            w,
            h,
            rotated: false,
            shape: ShapeState::Rigid {
                w0: w,
                h0: h,
                rotatable: true,
            },
        }
    }

    fn params() -> CostParams {
        CostParams {
            chip_w: 10.0,
            lambda: 0.5,
            mu: 4.0,
            gamma: 0.5,
            gamma_w: 0.5,
            kappa: 10.0,
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let st = vec![rigid(2.0, 2.0, 3.0, 2.0), rigid(3.5, 2.5, 2.0, 4.0)];
        let conn = vec![(0usize, 1usize, 2.0)];
        let p = params();
        let mut scratch = Scratch::new(2);
        let mut gx = vec![0.0; 2];
        let mut gy = vec![0.0; 2];
        let base = cost_and_grad(&st, &conn, &p, &mut scratch, &mut gx, &mut gy);
        assert!(base.is_finite());
        let h = 1e-6;
        for i in 0..2 {
            for axis in 0..2 {
                let mut plus = st.clone();
                let mut minus = st.clone();
                if axis == 0 {
                    plus[i].cx += h;
                    minus[i].cx -= h;
                } else {
                    plus[i].cy += h;
                    minus[i].cy -= h;
                }
                let mut tx = vec![0.0; 2];
                let mut ty = vec![0.0; 2];
                let fp = cost_and_grad(&plus, &conn, &p, &mut scratch, &mut tx, &mut ty);
                let fm = cost_and_grad(&minus, &conn, &p, &mut scratch, &mut tx, &mut ty);
                let num = (fp - fm) / (2.0 * h);
                let ana = if axis == 0 { gx[i] } else { gy[i] };
                assert!(
                    (num - ana).abs() < 1e-4 * (1.0 + num.abs()),
                    "module {i} axis {axis}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn descent_reduces_cost_and_separates_overlap() {
        // Two identical modules dropped on the same spot must be pushed
        // apart by the overlap kernel.
        let mut st = vec![rigid(5.0, 2.0, 3.0, 3.0), rigid(5.01, 2.0, 3.0, 3.0)];
        let conn = vec![];
        let p = params();
        let mut scratch = Scratch::new(2);
        let mut gx = vec![0.0; 2];
        let mut gy = vec![0.0; 2];
        let before = cost_and_grad(&st, &conn, &p, &mut scratch, &mut gx, &mut gy);
        let mut step = 0.01;
        let ran = descend(
            &mut st,
            &conn,
            &p,
            200,
            &mut step,
            &mut scratch,
            &mut || false,
        );
        assert_eq!(ran, 200);
        let after = cost_and_grad(&st, &conn, &p, &mut scratch, &mut gx, &mut gy);
        assert!(after < before, "descent did not reduce cost");
        let dx = (st[0].cx - st[1].cx).abs();
        let dy = (st[0].cy - st[1].cy).abs();
        assert!(dx > 1.0 || dy > 1.0, "overlap not reduced: dx={dx} dy={dy}");
    }

    #[test]
    fn descent_stops_cooperatively() {
        let mut st = vec![rigid(5.0, 2.0, 3.0, 3.0)];
        let p = params();
        let mut scratch = Scratch::new(1);
        let mut step = 0.01;
        let ran = descend(&mut st, &[], &p, 100, &mut step, &mut scratch, &mut || true);
        assert_eq!(ran, 0);
    }

    #[test]
    fn shape_sweep_rotates_to_fit_tall_module() {
        // A 6x1 module on a narrow strip next to a wall: rotating reduces
        // overlap with the boundary, so the sweep should pick it up —
        // checked only through cost not increasing.
        let mut st = vec![rigid(1.0, 3.0, 6.0, 1.0)];
        let p = CostParams {
            chip_w: 3.0,
            ..params()
        };
        let mut scratch = Scratch::new(1);
        let mut gx = vec![0.0; 1];
        let mut gy = vec![0.0; 1];
        let before = cost_and_grad(&st, &[], &p, &mut scratch, &mut gx, &mut gy);
        shape_sweep(&mut st, &[], &p, &mut scratch, &mut gx, &mut gy);
        let after = cost_and_grad(&st, &[], &p, &mut scratch, &mut gx, &mut gy);
        assert!(after <= before + 1e-9);
        assert!(
            st[0].rotated,
            "6-wide module should rotate on a 3-wide chip"
        );
    }

    /// The bin-grid pruned overlap term must agree with the all-pairs
    /// oracle — cost and full gradient — at *every continuation stage*:
    /// after each descent round, under that round's (μ, γ) schedule, on
    /// the states the optimizer actually visits.
    #[test]
    fn pruned_overlap_matches_all_pairs_at_every_continuation_stage() {
        for seed in [3u64, 17, 101] {
            // Scatter a mixed deck the way `place` does.
            let mut rng = SplitMix64(seed);
            let n = 40;
            let chip_w = 30.0;
            let mut st: Vec<ModuleState> = (0..n)
                .map(|k| {
                    let w = 1.0 + 5.0 * rng.next_f64();
                    let h = 1.0 + 5.0 * rng.next_f64();
                    let mut m = rigid(0.0, 0.0, w, h);
                    m.rotated = k % 3 == 0;
                    m.cx = w / 2.0 + rng.next_f64() * (chip_w - w).max(0.0);
                    m.cy = h / 2.0 + rng.next_f64() * 20.0;
                    m
                })
                .collect();
            let conn: Vec<(usize, usize, f64)> = (0..n - 1)
                .step_by(3)
                .map(|i| (i, i + 1, 1.0 + (i % 4) as f64))
                .collect();
            let mut p = CostParams {
                chip_w,
                lambda: 0.5,
                mu: chip_w,
                gamma: 1.5,
                gamma_w: 0.5,
                kappa: 4.0 * chip_w,
            };
            let mut scratch = Scratch::new(n);
            let mut step = 0.5 / chip_w;
            for round in 0..5 {
                let mut gx_p = vec![0.0; n];
                let mut gy_p = vec![0.0; n];
                let mut gx_o = vec![0.0; n];
                let mut gy_o = vec![0.0; n];
                let cp = cost_and_grad(&st, &conn, &p, &mut scratch, &mut gx_p, &mut gy_p);
                let co =
                    cost_and_grad_all_pairs(&st, &conn, &p, &mut scratch, &mut gx_o, &mut gy_o);
                let scale = 1.0 + cp.abs();
                assert!(
                    (cp - co).abs() <= 1e-9 * scale,
                    "seed {seed} round {round}: cost pruned {cp} vs oracle {co}"
                );
                for i in 0..n {
                    let gscale = 1.0 + gx_o[i].abs().max(gy_o[i].abs());
                    assert!(
                        (gx_p[i] - gx_o[i]).abs() <= 1e-9 * gscale
                            && (gy_p[i] - gy_o[i]).abs() <= 1e-9 * gscale,
                        "seed {seed} round {round} module {i}: grad pruned \
                         ({}, {}) vs oracle ({}, {})",
                        gx_p[i],
                        gy_p[i],
                        gx_o[i],
                        gy_o[i]
                    );
                }
                // Advance to the next continuation stage with the real
                // optimizer and the outward μ schedule.
                descend(&mut st, &conn, &p, 40, &mut step, &mut scratch, &mut || {
                    false
                });
                p.mu *= 2.0;
                p.gamma = (p.gamma * 0.75).max(1e-3);
            }
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_uniform_ish() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        let xs: Vec<f64> = (0..64).map(|_| a.next_f64()).collect();
        let ys: Vec<f64> = (0..64).map(|_| b.next_f64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|&v| (0.0..1.0).contains(&v)));
        let mean = xs.iter().sum::<f64>() / 64.0;
        assert!((mean - 0.5).abs() < 0.2);
    }
}
