//! Smoothed analytical placement — the gradient-based backend of the
//! solver portfolio.
//!
//! Where the MILP pipeline (fp-core) solves each augmentation step exactly
//! and the slicing annealer (fp-slicing) searches tree topologies, this
//! crate takes the classical analytical route: all module centers move
//! *simultaneously* down the gradient of a smoothed objective
//!
//! * log-sum-exp **chip height** (× the fixed chip width = smoothed area),
//! * smoothed-Manhattan **wirelength** (`γ·ln 2cosh`), weighted by λ from
//!   the shared [`Objective`](fp_core::Objective),
//! * a **bell-shaped overlap penalty** whose weight μ is scheduled
//!   *outward* — doubled each round — so early rounds optimize freely and
//!   late rounds squeeze modules apart,
//!
//! under Nesterov momentum with an adaptive step, with periodic discrete
//! sweeps for 90° rotation and soft-module widths. A final **legalization**
//! pass drops modules bottom-left onto the fp-core skyline in position
//! order ([`fp_core::legalize`]), so the backend always emits a valid
//! overlap-free [`Floorplan`] on the same fixed outline the MILP uses.
//!
//! Runs are deterministic per seed (the only randomness is an inline
//! SplitMix64 scatter), honor [`FloorplanConfig::deadline`] and
//! [`FloorplanConfig::stop`] cooperatively (best-so-far is legalized on
//! early exit), and never allocate a thread of their own.
//!
//! ```
//! use fp_analytic::{place, AnalyticConfig};
//! let netlist = fp_netlist::generator::ProblemGenerator::new(8, 5).generate();
//! let result = place(&netlist, &AnalyticConfig::default()).unwrap();
//! assert!(result.floorplan.is_valid());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod descent;
mod smooth;

use descent::{
    cost_and_grad, descend, shape_sweep, CostParams, ModuleState, Scratch, ShapeState, SplitMix64,
};
use fp_core::{
    derive_chip_width, legalize, Floorplan, FloorplanConfig, FloorplanError, LegalizeItem,
};
use fp_netlist::Netlist;
use std::time::{Duration, Instant};

/// Configuration for the analytical placer.
///
/// Deadline, stop flag, chip width, objective (λ), rotation, and soft-shape
/// handling all come from the embedded [`FloorplanConfig`], so a portfolio
/// orchestrator configures every backend from the same struct.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticConfig {
    /// Seed for the initial scatter (the run's only randomness).
    pub seed: u64,
    /// Outer rounds; each doubles the overlap weight and re-sweeps shapes.
    pub rounds: usize,
    /// Gradient iterations per round.
    pub iters_per_round: usize,
    /// Shared pipeline configuration (outline, objective, deadline, stop).
    pub floorplan: FloorplanConfig,
}

impl Default for AnalyticConfig {
    fn default() -> Self {
        AnalyticConfig {
            seed: 1,
            rounds: 6,
            iters_per_round: 120,
            floorplan: FloorplanConfig::default(),
        }
    }
}

impl AnalyticConfig {
    /// Sets the scatter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the outer-round and per-round iteration budget.
    #[must_use]
    pub fn with_budget(mut self, rounds: usize, iters_per_round: usize) -> Self {
        self.rounds = rounds.max(1);
        self.iters_per_round = iters_per_round.max(1);
        self
    }

    /// Sets the shared pipeline configuration.
    #[must_use]
    pub fn with_floorplan(mut self, floorplan: FloorplanConfig) -> Self {
        self.floorplan = floorplan;
        self
    }
}

/// A finished analytical placement.
#[derive(Debug, Clone)]
pub struct AnalyticResult {
    /// The legalized, overlap-free floorplan.
    pub floorplan: Floorplan,
    /// Final smoothed objective value before legalization (diagnostic).
    pub smoothed_cost: f64,
    /// Gradient iterations actually run across all rounds.
    pub iterations: usize,
    /// Outer rounds completed.
    pub rounds: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Initial state: realized shapes at their unrotated/widest form, centers
/// scattered deterministically over a band sized for ~66% utilization so
/// the overlap penalty has room to work.
fn initial_states(netlist: &Netlist, rotation: bool, chip_w: f64, seed: u64) -> Vec<ModuleState> {
    let mut rng = SplitMix64(seed);
    let band_h = (netlist.total_module_area() * 1.5 / chip_w).max(1.0);
    netlist
        .modules()
        .map(|(_, m)| {
            let shape = match *m.shape() {
                fp_netlist::Shape::Rigid { w, h } => ShapeState::Rigid {
                    w0: w,
                    h0: h,
                    rotatable: rotation && m.rotatable(),
                },
                fp_netlist::Shape::Flexible { .. } => {
                    let (w_min, w_max) = m.width_range();
                    ShapeState::Soft {
                        area: m.area(),
                        w_min,
                        w_max,
                    }
                }
            };
            let mut s = ModuleState {
                cx: 0.0,
                cy: 0.0,
                w: 0.0,
                h: 0.0,
                rotated: false,
                shape,
            };
            s.set_shape(false, f64::INFINITY); // widest soft form / unrotated
            s.cx = s.w / 2.0 + rng.next_f64() * (chip_w - s.w).max(0.0);
            s.cy = s.h / 2.0 + rng.next_f64() * band_h;
            s
        })
        .collect()
}

/// Sparse positive-connectivity pairs (i < j).
fn connectivity_pairs(netlist: &Netlist) -> Vec<(usize, usize, f64)> {
    let matrix = netlist.connectivity_matrix();
    let mut conn = Vec::new();
    for (i, row) in matrix.iter().enumerate() {
        for (j, &weight) in row.iter().enumerate().skip(i + 1) {
            if weight > 0.0 {
                conn.push((i, j, weight));
            }
        }
    }
    conn
}

/// Places `netlist` analytically and legalizes the result.
///
/// Cooperative exits (deadline passed, stop flag raised) legalize whatever
/// state the descent reached — the function still returns `Ok` with a valid
/// floorplan, just a worse one; the caller decides whether it still wants
/// it. Runs with the same config (and no deadline) are bit-identical.
///
/// # Errors
///
/// [`FloorplanError::EmptyNetlist`] / [`FloorplanError::ModuleTooWide`]
/// from the outline derivation — never from the descent itself.
pub fn place(netlist: &Netlist, config: &AnalyticConfig) -> Result<AnalyticResult, FloorplanError> {
    let started = Instant::now();
    let chip_w = derive_chip_width(netlist, &config.floorplan)?;
    let n = netlist.num_modules();

    let band_h = (netlist.total_module_area() * 1.5 / chip_w).max(1.0);
    let mut st = initial_states(netlist, config.floorplan.rotation, chip_w, config.seed);
    let conn = connectivity_pairs(netlist);

    let deadline = config.floorplan.deadline;
    let stop = config.floorplan.stop.clone();
    let mut should_stop = move || stop.is_set() || deadline.is_some_and(|d| Instant::now() >= d);

    let mut params = CostParams {
        chip_w,
        lambda: config.floorplan.objective.lambda(),
        mu: chip_w,
        gamma: 0.08 * band_h,
        gamma_w: (0.05 * chip_w).max(1e-3),
        kappa: 4.0 * chip_w,
    };
    let mut scratch = Scratch::new(n);
    let mut gx = vec![0.0; n];
    let mut gy = vec![0.0; n];
    let mut step = 0.5 / chip_w.max(1.0);
    let mut iterations = 0usize;
    let mut rounds_done = 0usize;

    for _ in 0..config.rounds {
        let ran = descend(
            &mut st,
            &conn,
            &params,
            config.iters_per_round,
            &mut step,
            &mut scratch,
            &mut should_stop,
        );
        iterations += ran;
        if ran < config.iters_per_round {
            break; // cooperative exit: legalize what we have
        }
        shape_sweep(&mut st, &conn, &params, &mut scratch, &mut gx, &mut gy);
        rounds_done += 1;
        // Outward density schedule + sharper maxima as rounds progress.
        params.mu *= 2.0;
        params.gamma = (params.gamma * 0.75).max(1e-3);
    }

    let smoothed_cost = cost_and_grad(&st, &conn, &params, &mut scratch, &mut gx, &mut gy);

    // Legalize in position order: bottom row first, then left to right,
    // so the skyline drop reproduces the analytical arrangement as
    // closely as legality allows.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ka = (st[a].cy - st[a].h / 2.0, st[a].cx - st[a].w / 2.0);
        let kb = (st[b].cy - st[b].h / 2.0, st[b].cx - st[b].w / 2.0);
        ka.partial_cmp(&kb)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let items: Vec<LegalizeItem> = order
        .iter()
        .map(|&i| {
            let width_adjust = match st[i].shape {
                ShapeState::Soft { w_max, .. } => (w_max - st[i].w).max(0.0),
                ShapeState::Rigid { .. } => 0.0,
            };
            LegalizeItem {
                id: fp_netlist::ModuleId(i),
                rotated: st[i].rotated,
                width_adjust,
            }
        })
        .collect();
    let floorplan = legalize(netlist, &config.floorplan, &items)?;

    Ok(AnalyticResult {
        floorplan,
        smoothed_cost,
        iterations,
        rounds: rounds_done,
        elapsed: started.elapsed(),
    })
}

/// Benchmark-only hooks for fp-bench's `geom_snapshot` bin — **not** a
/// stable API. Exposes the internal gradient evaluation (pruned vs
/// all-pairs) so the spatial-index speedup can be measured without making
/// optimizer internals public.
#[doc(hidden)]
pub mod bench_support {
    use crate::descent::{
        cost_and_grad, cost_and_grad_all_pairs, descend, overlap_all_pairs, overlap_pruned,
        CostParams, ModuleState, Scratch,
    };
    use fp_core::{derive_chip_width, FloorplanConfig};
    use fp_netlist::Netlist;

    /// A reusable gradient-evaluation harness over the states the
    /// optimizer actually visits for `netlist`.
    pub struct GradHarness {
        st: Vec<ModuleState>,
        conn: Vec<(usize, usize, f64)>,
        params: CostParams,
        scratch: Scratch,
        step: f64,
        gx: Vec<f64>,
        gy: Vec<f64>,
    }

    impl GradHarness {
        /// Builds the harness at the deterministic initial scatter of
        /// `netlist` (the state the first descent round sees).
        ///
        /// # Panics
        ///
        /// Panics on an empty netlist.
        #[must_use]
        pub fn new(netlist: &Netlist, seed: u64) -> Self {
            let chip_w = derive_chip_width(netlist, &FloorplanConfig::default())
                .expect("bench netlists are non-empty");
            let n = netlist.num_modules();
            let band_h = (netlist.total_module_area() * 1.5 / chip_w).max(1.0);
            GradHarness {
                st: crate::initial_states(netlist, true, chip_w, seed),
                conn: crate::connectivity_pairs(netlist),
                params: CostParams {
                    chip_w,
                    lambda: 0.5,
                    mu: chip_w,
                    gamma: 0.08 * band_h,
                    gamma_w: (0.05 * chip_w).max(1e-3),
                    kappa: 4.0 * chip_w,
                },
                scratch: Scratch::new(n),
                step: 0.5 / chip_w.max(1.0),
                gx: vec![0.0; n],
                gy: vec![0.0; n],
            }
        }

        /// Runs `iters` real descent iterations and doubles μ — advances
        /// the harness to a later (denser) continuation stage.
        pub fn advance(&mut self, iters: usize) {
            descend(
                &mut self.st,
                &self.conn,
                &self.params,
                iters,
                &mut self.step,
                &mut self.scratch,
                &mut || false,
            );
            self.params.mu *= 2.0;
        }

        /// One full cost+gradient evaluation through the bin-grid pruned
        /// overlap path.
        pub fn eval_pruned(&mut self) -> f64 {
            cost_and_grad(
                &self.st,
                &self.conn,
                &self.params,
                &mut self.scratch,
                &mut self.gx,
                &mut self.gy,
            )
        }

        /// One full cost+gradient evaluation through the `O(n²)`
        /// all-pairs overlap oracle.
        pub fn eval_all_pairs(&mut self) -> f64 {
            cost_and_grad_all_pairs(
                &self.st,
                &self.conn,
                &self.params,
                &mut self.scratch,
                &mut self.gx,
                &mut self.gy,
            )
        }

        /// The overlap term (cost + gradient) alone, through the
        /// bin-grid pruned `O(n·k)` path — the term the spatial index
        /// accelerates, isolated from the wirelength/height/wall terms
        /// that are identical on both kernels.
        pub fn eval_overlap_pruned(&mut self) -> f64 {
            self.gx.fill(0.0);
            self.gy.fill(0.0);
            overlap_pruned(
                &self.st,
                self.params.mu,
                &mut self.scratch,
                &mut self.gx,
                &mut self.gy,
            )
        }

        /// The overlap term (cost + gradient) alone, through the
        /// all-pairs `O(n²)` oracle.
        pub fn eval_overlap_all_pairs(&mut self) -> f64 {
            self.gx.fill(0.0);
            self.gy.fill(0.0);
            overlap_all_pairs(&self.st, self.params.mu, &mut self.gx, &mut self.gy)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::StopFlag;
    use fp_netlist::generator::ProblemGenerator;

    #[test]
    fn places_rigid_netlists_legally() {
        for seed in [1u64, 7, 23] {
            let nl = ProblemGenerator::new(10, seed).generate();
            let cfg = AnalyticConfig::default().with_seed(seed);
            let r = place(&nl, &cfg).unwrap();
            assert_eq!(r.floorplan.len(), 10);
            assert!(r.floorplan.is_valid(), "{:?}", r.floorplan.violations());
            assert!(r.iterations > 0);
        }
    }

    #[test]
    fn places_flexible_netlists_legally() {
        let nl = ProblemGenerator::new(12, 3)
            .with_flexible_fraction(0.4)
            .generate();
        let r = place(&nl, &AnalyticConfig::default()).unwrap();
        assert!(r.floorplan.is_valid(), "{:?}", r.floorplan.violations());
    }

    #[test]
    fn deterministic_per_seed() {
        let nl = ProblemGenerator::new(9, 11).generate();
        let cfg = AnalyticConfig::default().with_seed(99);
        let a = place(&nl, &cfg).unwrap();
        let b = place(&nl, &cfg).unwrap();
        assert_eq!(a.smoothed_cost.to_bits(), b.smoothed_cost.to_bits());
        for (pa, pb) in a.floorplan.iter().zip(b.floorplan.iter()) {
            assert_eq!(pa.rect, pb.rect);
            assert_eq!(pa.rotated, pb.rotated);
        }
    }

    #[test]
    fn respects_fixed_chip_width() {
        let nl = ProblemGenerator::new(8, 2).generate();
        let fp_cfg = FloorplanConfig::default().with_chip_width(40.0);
        let cfg = AnalyticConfig::default().with_floorplan(fp_cfg);
        let r = place(&nl, &cfg).unwrap();
        assert_eq!(r.floorplan.chip_width(), 40.0);
        assert!(r.floorplan.is_valid());
    }

    #[test]
    fn pre_triggered_stop_still_returns_legal_result() {
        let nl = ProblemGenerator::new(8, 5).generate();
        let stop = StopFlag::new();
        stop.trigger();
        let cfg =
            AnalyticConfig::default().with_floorplan(FloorplanConfig::default().with_stop(stop));
        let r = place(&nl, &cfg).unwrap();
        assert_eq!(r.iterations, 0);
        assert!(r.floorplan.is_valid());
    }

    #[test]
    fn empty_netlist_rejected() {
        let nl = Netlist::new("empty");
        assert!(matches!(
            place(&nl, &AnalyticConfig::default()),
            Err(FloorplanError::EmptyNetlist)
        ));
    }

    #[test]
    fn wirelength_objective_pulls_connected_modules_together() {
        // Two cliques with no cross connectivity: with λ > 0 the mean
        // intra-clique distance should not exceed the λ = 0 run's.
        use fp_core::Objective;
        let nl = ProblemGenerator::new(10, 13)
            .with_nets_per_module(2.0)
            .generate();
        let base = place(&nl, &AnalyticConfig::default()).unwrap();
        let cfg = AnalyticConfig::default().with_floorplan(
            FloorplanConfig::default()
                .with_objective(Objective::AreaPlusWirelength { lambda: 1.0 }),
        );
        let wired = place(&nl, &cfg).unwrap();
        assert!(wired.floorplan.is_valid());
        // Not a strict inequality (legalization reshuffles), but the smoothed
        // optimizer must at least produce a finite, comparable wirelength.
        assert!(wired.floorplan.center_wirelength(&nl).is_finite());
        assert!(base.floorplan.center_wirelength(&nl).is_finite());
    }
}
