//! Solution values and solve statistics.

use crate::var::Var;
use std::time::Duration;

/// Whether the returned solution is a proven optimum or the best incumbent
/// when a limit stopped the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Optimality {
    /// Proven optimal within tolerances.
    Proven,
    /// A node or time limit stopped the search; this is the best incumbent.
    Limit,
}

/// Per-worker slice of the search statistics.
///
/// Entry `i` of [`SolveStats::per_thread`] counts the work done by worker
/// `i`. In a serial solve there is exactly one entry; in a parallel solve
/// the root relaxation (solved on the calling thread before workers start)
/// is attributed to entry `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThreadStats {
    /// Branch-and-bound nodes this worker solved the LP relaxation of.
    pub nodes: usize,
    /// Simplex pivots this worker performed.
    pub simplex_iterations: usize,
    /// Nodes solved warm (dual simplex from the parent's basis).
    pub warm_nodes: usize,
    /// Nodes solved cold (two-phase primal), including warm fallbacks.
    pub cold_nodes: usize,
    /// Basis LU (re)factorizations this worker performed (sparse kernel;
    /// always `0` on the dense tableau).
    pub refactorizations: usize,
    /// Eta-file basis updates this worker recorded between
    /// refactorizations (sparse kernel; always `0` on the dense tableau).
    pub eta_updates: usize,
}

/// Search statistics reported alongside a [`Solution`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SolveStats {
    /// Branch-and-bound nodes whose LP relaxation was solved.
    pub nodes: usize,
    /// Total simplex pivots across all nodes.
    pub simplex_iterations: usize,
    /// Nodes whose LP was solved warm from the parent's basis. The root is
    /// always cold, so `warm_nodes + cold_nodes == nodes` with
    /// `cold_nodes >= 1` on any solve that reached the root LP.
    pub warm_nodes: usize,
    /// Nodes solved by the cold two-phase primal (including warm attempts
    /// that fell back on numerical trouble).
    pub cold_nodes: usize,
    /// Total basis LU (re)factorizations across all node LPs. Zero when the
    /// dense reference kernel is selected
    /// ([`SolveOptions::sparse`](crate::SolveOptions::sparse) = `false`),
    /// since the dense tableau never factorizes.
    pub refactorizations: usize,
    /// Total eta-file basis updates recorded between refactorizations
    /// across all node LPs (sparse kernel only; see
    /// [`SolveOptions::refactor_interval`](crate::SolveOptions::refactor_interval)).
    pub eta_updates: usize,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
    /// Worker threads the search ran on (`1` for a serial solve).
    pub threads: usize,
    /// Per-worker node and pivot counts; length equals [`threads`](Self::threads).
    pub per_thread: Vec<ThreadStats>,
    /// Classic presolve fixpoint passes actually run (capped by
    /// [`SolveOptions::presolve_passes`](crate::SolveOptions::presolve_passes)).
    pub presolve_passes: usize,
    /// Rows whose big-M / binary coefficients were tightened at the root.
    pub rows_tightened: usize,
    /// Binaries fixed by root probing (tentative fix propagated to a
    /// contradiction, so the opposite value is forced).
    pub binaries_fixed: usize,
    /// Binary implications harvested by probing (`x=1 ⇒ y=v` edges feeding
    /// the clique cuts).
    pub implications: usize,
    /// Cutting planes appended to the root LP (inherited by every node).
    pub cuts_added: usize,
    /// How the root LP was seeded from a cross-solve
    /// [`BasisStore`](crate::BasisStore): `Hot` (exact-dimension stored
    /// basis), `Warm` (stored basis over fewer rows, slack-extended), or
    /// `Cold` (no cross-solve basis engaged — the default, including when
    /// no store is wired or the cut loop committed its own basis).
    pub basis_tier: crate::BasisTier,
}

/// The result of a successful solve: an assignment of values to every model
/// variable plus the objective value.
///
/// ```
/// use fp_milp::{Model, Sense};
/// # fn main() -> Result<(), fp_milp::SolveError> {
/// let mut m = Model::new(Sense::Minimize);
/// let x = m.add_continuous("x", 2.0, 10.0);
/// m.set_objective(x + 0.0);
/// let sol = m.solve()?;
/// assert_eq!(sol.value(x), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
    optimality: Optimality,
    stats: SolveStats,
}

impl Solution {
    pub(crate) fn new(
        values: Vec<f64>,
        objective: f64,
        optimality: Optimality,
        stats: SolveStats,
    ) -> Self {
        Solution {
            values,
            objective,
            optimality,
            stats,
        }
    }

    /// The value assigned to `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` belongs to a different (larger) model.
    #[must_use]
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }

    /// The value of `var` rounded to the nearest integer — convenient for
    /// reading binary decision variables.
    #[must_use]
    pub fn rounded(&self, var: Var) -> i64 {
        self.value(var).round() as i64
    }

    /// All variable values, indexed by [`Var::index`].
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The objective value in the model's optimization sense.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Whether the solution is proven optimal or a limit incumbent.
    #[must_use]
    pub fn optimality(&self) -> Optimality {
        self.optimality
    }

    /// Search statistics for this solve.
    #[must_use]
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let sol = Solution::new(
            vec![1.0, 0.4999, 2.0],
            7.5,
            Optimality::Proven,
            SolveStats::default(),
        );
        assert_eq!(sol.value(Var(0)), 1.0);
        assert_eq!(sol.rounded(Var(1)), 0);
        assert_eq!(sol.values().len(), 3);
        assert_eq!(sol.objective(), 7.5);
        assert_eq!(sol.optimality(), Optimality::Proven);
        assert_eq!(sol.stats().nodes, 0);
    }
}
