//! Linear expressions over model variables.

use crate::var::Var;
use std::collections::BTreeMap;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A linear expression `Σ aᵢ·xᵢ + c` over model variables.
///
/// Expressions are built with ordinary arithmetic operators on [`Var`]s,
/// `f64`s and other expressions, so constraint code reads like the paper's
/// inequalities:
///
/// ```
/// use fp_milp::{Model, Sense, LinExpr};
/// let mut m = Model::new(Sense::Minimize);
/// let (xi, xj) = (m.add_continuous("xi", 0.0, 100.0), m.add_continuous("xj", 0.0, 100.0));
/// let pair = m.add_binary("xij");
/// let (wi, big_w) = (12.0, 100.0);
/// // Paper system (2): xi + wi <= xj + W * xij
/// m.add_le(xi + wi - xj - big_w * pair, 0.0);
/// ```
///
/// Duplicate variables are merged on every insertion, but coefficients
/// that merge to zero are *kept*: arithmetic never drops a term eagerly,
/// so `e.coeff(v)` distinguishes "cancelled to 0.0" from "never present"
/// via [`len`](LinExpr::len)/[`iter`](LinExpr::iter). Exact zeros are
/// dropped only by an explicit [`compact`](LinExpr::compact), which the
/// model runs on constraint ingestion (`add_le` / `add_ge` / `add_eq`),
/// so stored constraint rows carry no zero terms. The objective is stored
/// as given — its coefficients are densified per column anyway.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    /// `(column, coefficient)` pairs, deduplicated, sorted by column.
    terms: BTreeMap<usize, f64>,
    constant: f64,
}

impl LinExpr {
    /// The empty expression `0`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An expression holding only a constant.
    #[must_use]
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// Adds `coeff * var` to the expression, merging duplicates.
    pub fn add_term(&mut self, var: Var, coeff: f64) -> &mut Self {
        *self.terms.entry(var.0).or_insert(0.0) += coeff;
        self
    }

    /// Adds a constant offset.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// The constant part of the expression.
    #[must_use]
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// The coefficient of `var` (0 if absent).
    #[must_use]
    pub fn coeff(&self, var: Var) -> f64 {
        self.terms.get(&var.0).copied().unwrap_or(0.0)
    }

    /// Iterates over `(var, coefficient)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, f64)> + '_ {
        self.terms.iter().map(|(&i, &c)| (Var(i), c))
    }

    /// Number of stored terms (possibly including zero coefficients).
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression has no variable terms.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Drops terms whose coefficient is *exactly* `0.0` (or `-0.0`).
    ///
    /// Deliberately not an epsilon test: a tiny-but-nonzero coefficient is
    /// the caller's modeling decision and must reach the solver; only
    /// terms that cancelled exactly (e.g. `x - x`) are structural noise.
    pub fn compact(&mut self) -> &mut Self {
        self.terms.retain(|_, c| *c != 0.0);
        self
    }

    /// Evaluates the expression for a dense assignment indexed by column.
    ///
    /// # Panics
    ///
    /// Panics if a referenced column is out of range for `values`.
    #[must_use]
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|(&i, &c)| c * values[i]).sum::<f64>()
    }

    /// Largest column index referenced, if any.
    #[must_use]
    pub(crate) fn max_col(&self) -> Option<usize> {
        self.terms.keys().next_back().copied()
    }

    /// Multiplies every coefficient and the constant in place.
    pub fn scale(&mut self, factor: f64) -> &mut Self {
        for c in self.terms.values_mut() {
            *c *= factor;
        }
        self.constant *= factor;
        self
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (&i, &c) in &self.terms {
            if first {
                write!(f, "{c} v{i}")?;
                first = false;
            } else if c < 0.0 {
                write!(f, " - {} v{i}", -c)?;
            } else {
                write!(f, " + {c} v{i}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant != 0.0 {
            if self.constant < 0.0 {
                write!(f, " - {}", -self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        let mut e = LinExpr::new();
        e.add_term(v, 1.0);
        e
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant(c)
    }
}

// --- operator plumbing -------------------------------------------------

impl AddAssign<LinExpr> for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (i, c) in rhs.terms {
            *self.terms.entry(i).or_insert(0.0) += c;
        }
        self.constant += rhs.constant;
    }
}

impl SubAssign<LinExpr> for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        for (i, c) in rhs.terms {
            *self.terms.entry(i).or_insert(0.0) -= c;
        }
        self.constant -= rhs.constant;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        self.scale(-1.0);
        self
    }
}

impl Neg for Var {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        -LinExpr::from(self)
    }
}

macro_rules! impl_add_sub {
    ($lhs:ty, $rhs:ty) => {
        impl Add<$rhs> for $lhs {
            type Output = LinExpr;
            fn add(self, rhs: $rhs) -> LinExpr {
                let mut e = LinExpr::from(self);
                e += LinExpr::from(rhs);
                e
            }
        }
        impl Sub<$rhs> for $lhs {
            type Output = LinExpr;
            fn sub(self, rhs: $rhs) -> LinExpr {
                let mut e = LinExpr::from(self);
                e -= LinExpr::from(rhs);
                e
            }
        }
    };
}

impl_add_sub!(LinExpr, LinExpr);
impl_add_sub!(LinExpr, Var);
impl_add_sub!(LinExpr, f64);
impl_add_sub!(Var, LinExpr);
impl_add_sub!(Var, Var);
impl_add_sub!(Var, f64);
impl_add_sub!(f64, LinExpr);
impl_add_sub!(f64, Var);

impl Mul<f64> for Var {
    type Output = LinExpr;
    fn mul(self, rhs: f64) -> LinExpr {
        let mut e = LinExpr::new();
        e.add_term(self, rhs);
        e
    }
}

impl Mul<Var> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: Var) -> LinExpr {
        rhs * self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        self.scale(rhs);
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: LinExpr) -> LinExpr {
        rhs * self
    }
}

impl Sum for LinExpr {
    fn sum<I: Iterator<Item = LinExpr>>(iter: I) -> LinExpr {
        let mut acc = LinExpr::new();
        for e in iter {
            acc += e;
        }
        acc
    }
}

impl Sum<Var> for LinExpr {
    fn sum<I: Iterator<Item = Var>>(iter: I) -> LinExpr {
        let mut acc = LinExpr::new();
        for v in iter {
            acc.add_term(v, 1.0);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var(i)
    }

    #[test]
    fn build_and_merge_terms() {
        let e = v(0) + 2.0 * v(1) + v(0) - 3.0;
        assert_eq!(e.coeff(v(0)), 2.0);
        assert_eq!(e.coeff(v(1)), 2.0);
        assert_eq!(e.constant_part(), -3.0);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn eval_matches_hand_computation() {
        let e = 3.0 * v(0) - v(2) + 1.5;
        assert_eq!(e.eval(&[2.0, 9.0, 4.0]), 6.0 - 4.0 + 1.5);
    }

    #[test]
    fn neg_and_scale() {
        let e = -(v(0) + 4.0);
        assert_eq!(e.coeff(v(0)), -1.0);
        assert_eq!(e.constant_part(), -4.0);
        let mut f = LinExpr::from(v(1));
        f.scale(0.0);
        f.compact();
        assert!(f.is_empty());
    }

    #[test]
    fn sum_of_vars_and_exprs() {
        let total: LinExpr = (0..4).map(v).sum();
        assert_eq!(total.len(), 4);
        let weighted: LinExpr = (0..3).map(|i| (i as f64) * v(i)).sum();
        assert_eq!(weighted.coeff(v(2)), 2.0);
    }

    #[test]
    fn display_is_readable() {
        let e = 2.0 * v(0) - 1.0 * v(3) + 5.0;
        assert_eq!(e.to_string(), "2 v0 - 1 v3 + 5");
        assert_eq!(LinExpr::constant(0.0).to_string(), "0");
    }

    #[test]
    fn zero_coeff_kept_until_compact() {
        let mut e = v(0) - v(0);
        assert_eq!(e.len(), 1);
        e.compact();
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn compact_drops_exact_zeros_only() {
        // Duplicates merge on insertion; a merge that cancels to exactly
        // zero survives until compact; a denormal-small coefficient is a
        // real term and survives compact.
        let mut e = LinExpr::new();
        e.add_term(v(0), 2.5);
        e.add_term(v(0), -2.5); // cancels exactly
        e.add_term(v(1), 1e-300); // tiny but meaningful
        e.add_term(v(1), 1e-300);
        e.add_term(v(2), -0.0); // negative zero is still zero
        assert_eq!(e.len(), 3, "nothing dropped before compact");
        assert_eq!(e.coeff(v(0)), 0.0);
        e.compact();
        assert_eq!(e.len(), 1, "exact zeros dropped, tiny term kept");
        assert_eq!(e.coeff(v(1)), 2e-300);
        assert_eq!(e.coeff(v(2)), 0.0);
    }
}
