//! Model construction and the solve entry points.

use crate::branch;
use crate::error::SolveError;
use crate::expr::LinExpr;
use crate::options::SolveOptions;
use crate::solution::Solution;
use crate::var::{Var, VarDef, VarKind};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Minimize the objective (the paper minimizes chip height / area).
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// A stored linear constraint `expr (<=,>=,==) rhs` with the expression's
/// constant already folded into `rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    pub(crate) expr: LinExpr,
    pub(crate) cmp: Cmp,
    pub(crate) rhs: f64,
}

impl Constraint {
    /// The comparison operator.
    #[must_use]
    pub fn cmp(&self) -> Cmp {
        self.cmp
    }

    /// The right-hand side (constant side).
    #[must_use]
    pub fn rhs(&self) -> f64 {
        self.rhs
    }

    /// The variable side of the constraint.
    #[must_use]
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// Whether `values` satisfies this constraint within `tol`.
    #[must_use]
    pub fn is_satisfied(&self, values: &[f64], tol: f64) -> bool {
        let lhs = self.expr.eval(values);
        match self.cmp {
            Cmp::Le => lhs <= self.rhs + tol,
            Cmp::Ge => lhs >= self.rhs - tol,
            Cmp::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// A mixed 0-1 integer linear program under construction.
///
/// See the [crate-level documentation](crate) for a worked example.
#[derive(Debug, Clone)]
pub struct Model {
    sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) cons: Vec<Constraint>,
    pub(crate) objective: LinExpr,
}

impl Model {
    /// Creates an empty model with the given optimization sense.
    #[must_use]
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            cons: Vec::new(),
            objective: LinExpr::new(),
        }
    }

    /// The optimization sense.
    #[must_use]
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a variable with explicit kind and bounds and returns its handle.
    pub fn add_var(&mut self, name: impl Into<String>, kind: VarKind, lb: f64, ub: f64) -> Var {
        let v = Var(self.vars.len());
        self.vars.push(VarDef {
            name: name.into(),
            lb,
            ub,
            kind,
            branch_priority: 0,
        });
        v
    }

    /// Adds a continuous variable in `[lb, ub]` (`ub` may be `f64::INFINITY`,
    /// `lb` may be `f64::NEG_INFINITY`).
    pub fn add_continuous(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> Var {
        self.add_var(name, VarKind::Continuous, lb, ub)
    }

    /// Adds a 0-1 variable — the paper's pair-relation (`x_ij`, `y_ij`) and
    /// rotation (`z_i`) variables.
    pub fn add_binary(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name, VarKind::Binary, 0.0, 1.0)
    }

    /// Adds a general integer variable in `[lb, ub]`.
    pub fn add_integer(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> Var {
        self.add_var(name, VarKind::Integer, lb, ub)
    }

    /// Sets the branching priority of `var`; higher priorities are branched
    /// on first. The floorplanner prioritizes pair variables of large
    /// modules, which prunes the big-M disjunctions early.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a variable of this model.
    pub fn set_branch_priority(&mut self, var: Var, priority: i32) {
        self.vars[var.index()].branch_priority = priority;
    }

    /// The diagnostic name a variable was created with.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a variable of this model.
    #[must_use]
    pub fn var_name(&self, var: Var) -> &str {
        &self.vars[var.index()].name
    }

    /// Looks up a variable by its creation name (first match).
    #[must_use]
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.vars.iter().position(|d| d.name == name).map(Var)
    }

    /// Bounds `(lb, ub)` of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a variable of this model.
    #[must_use]
    pub fn bounds(&self, var: Var) -> (f64, f64) {
        let d = &self.vars[var.index()];
        (d.lb, d.ub)
    }

    /// Tightens the bounds of an existing variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a variable of this model.
    pub fn set_bounds(&mut self, var: Var, lb: f64, ub: f64) {
        let d = &mut self.vars[var.index()];
        d.lb = lb;
        d.ub = ub;
    }

    /// Changes the kind (continuous/binary/integer) of an existing
    /// variable; binary narrows the bounds to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a variable of this model.
    pub fn set_kind(&mut self, var: Var, kind: VarKind) {
        let d = &mut self.vars[var.index()];
        d.kind = kind;
        if kind == VarKind::Binary {
            d.lb = d.lb.max(0.0);
            d.ub = d.ub.min(1.0);
        }
    }

    /// Adds `expr cmp rhs`; any constant inside `expr` is moved to the rhs.
    /// Returns the constraint's row index.
    pub fn add_constraint(&mut self, expr: impl Into<LinExpr>, cmp: Cmp, rhs: f64) -> usize {
        let mut expr = expr.into();
        let shifted = rhs - expr.constant_part();
        expr.add_constant(-expr.constant_part());
        expr.compact();
        self.cons.push(Constraint {
            expr,
            cmp,
            rhs: shifted,
        });
        self.cons.len() - 1
    }

    /// Adds `expr <= rhs`.
    pub fn add_le(&mut self, expr: impl Into<LinExpr>, rhs: f64) -> usize {
        self.add_constraint(expr, Cmp::Le, rhs)
    }

    /// Adds `expr >= rhs`.
    pub fn add_ge(&mut self, expr: impl Into<LinExpr>, rhs: f64) -> usize {
        self.add_constraint(expr, Cmp::Ge, rhs)
    }

    /// Adds `expr == rhs`.
    pub fn add_eq(&mut self, expr: impl Into<LinExpr>, rhs: f64) -> usize {
        self.add_constraint(expr, Cmp::Eq, rhs)
    }

    /// Sets the objective expression (constants are preserved and simply
    /// offset the reported objective value).
    pub fn set_objective(&mut self, expr: impl Into<LinExpr>) {
        self.objective = expr.into();
    }

    /// The current objective expression.
    #[must_use]
    pub fn objective_expr(&self) -> &LinExpr {
        &self.objective
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.cons.len()
    }

    /// Number of integral (binary + integer) variables. The paper tracks this
    /// quantity carefully — `K(K-1)` pair variables for `K` modules — because
    /// it drives the branch-and-bound cost.
    #[must_use]
    pub fn num_integer_vars(&self) -> usize {
        self.vars.iter().filter(|d| d.kind.is_integral()).count()
    }

    /// Iterates over the constraints.
    pub fn constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.cons.iter()
    }

    /// Checks structural validity: finite coefficients, consistent bounds,
    /// variables in range.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidModel`] describing the first defect found.
    pub fn validate(&self) -> Result<(), SolveError> {
        for (i, d) in self.vars.iter().enumerate() {
            if d.lb > d.ub {
                return Err(SolveError::InvalidModel(format!(
                    "variable {} ('{}') has lb {} > ub {}",
                    i, d.name, d.lb, d.ub
                )));
            }
            if d.lb.is_nan() || d.ub.is_nan() {
                return Err(SolveError::InvalidModel(format!(
                    "variable {} ('{}') has NaN bound",
                    i, d.name
                )));
            }
            if d.kind.is_integral() && (!d.lb.is_finite() || !d.ub.is_finite()) {
                return Err(SolveError::InvalidModel(format!(
                    "integer variable {} ('{}') must have finite bounds",
                    i, d.name
                )));
            }
        }
        let check_expr = |what: &str, e: &LinExpr| -> Result<(), SolveError> {
            if let Some(max) = e.max_col() {
                if max >= self.vars.len() {
                    return Err(SolveError::InvalidModel(format!(
                        "{what} references variable {max} but model has {}",
                        self.vars.len()
                    )));
                }
            }
            for (v, c) in e.iter() {
                if !c.is_finite() {
                    return Err(SolveError::InvalidModel(format!(
                        "{what} has non-finite coefficient on {v}"
                    )));
                }
            }
            Ok(())
        };
        check_expr("objective", &self.objective)?;
        for (r, con) in self.cons.iter().enumerate() {
            check_expr(&format!("constraint {r}"), &con.expr)?;
            if !con.rhs.is_finite() {
                return Err(SolveError::InvalidModel(format!(
                    "constraint {r} has non-finite rhs"
                )));
            }
        }
        Ok(())
    }

    /// Whether `values` satisfies all constraints, bounds and integrality
    /// within `tol`. Used pervasively by the test suite.
    #[must_use]
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (d, &x) in self.vars.iter().zip(values) {
            if x < d.lb - tol || x > d.ub + tol {
                return false;
            }
            if d.kind.is_integral() && (x - x.round()).abs() > tol {
                return false;
            }
        }
        self.cons.iter().all(|c| c.is_satisfied(values, tol))
    }

    /// Solves the model with [`SolveOptions::default`].
    ///
    /// # Errors
    ///
    /// See [`SolveError`]; notably [`SolveError::Infeasible`] and
    /// [`SolveError::Unbounded`].
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with(&SolveOptions::default())
    }

    /// Solves the model with explicit options.
    ///
    /// Pure LPs (no integral variables) go straight to the simplex; otherwise
    /// branch-and-bound explores the 0-1 / integer space.
    ///
    /// # Errors
    ///
    /// See [`SolveError`].
    pub fn solve_with(&self, options: &SolveOptions) -> Result<Solution, SolveError> {
        self.solve_traced(options, &fp_obs::Tracer::disabled())
    }

    /// Solves the model with explicit options, emitting structured trace
    /// events ([`fp_obs::Event::SolveStart`], per-node
    /// [`fp_obs::Event::BnbNode`], [`fp_obs::Event::Incumbent`] updates in
    /// improvement order, and a final [`fp_obs::Event::SolveEnd`] whose node
    /// and simplex totals match [`Solution::stats`](crate::Solution::stats))
    /// through `tracer`. With [`fp_obs::Tracer::disabled`] this is exactly
    /// [`Model::solve_with`].
    ///
    /// ```
    /// use fp_milp::{Model, Sense, SolveOptions};
    /// use fp_obs::{Collector, EventKind, Tracer};
    /// # fn main() -> Result<(), fp_milp::SolveError> {
    /// let mut m = Model::new(Sense::Maximize);
    /// let x = m.add_integer("x", 0.0, 10.0);
    /// m.add_le(2.0 * x, 5.0);
    /// m.set_objective(x + 0.0);
    /// let collector = Collector::new();
    /// let s = m.solve_traced(&SolveOptions::default(), &Tracer::new(collector.clone()))?;
    /// assert_eq!(collector.count_of(EventKind::BnbNode), s.stats().nodes);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// See [`SolveError`]. Even on errors the trace pairs every
    /// `SolveStart` with a `SolveEnd`, except for
    /// [`SolveError::InvalidModel`], which is rejected before the solve
    /// starts and emits nothing.
    pub fn solve_traced(
        &self,
        options: &SolveOptions,
        tracer: &fp_obs::Tracer,
    ) -> Result<Solution, SolveError> {
        self.validate()?;
        branch::solve(self, options, tracer)
    }

    /// Solves the **LP relaxation**: integrality is dropped, everything else
    /// kept. The relaxation objective bounds the MILP optimum (lower bound
    /// when minimizing), which is useful for gap reporting and diagnostics.
    ///
    /// ```
    /// use fp_milp::{Model, Sense};
    /// # fn main() -> Result<(), fp_milp::SolveError> {
    /// let mut m = Model::new(Sense::Maximize);
    /// let x = m.add_integer("x", 0.0, 10.0);
    /// m.add_le(2.0 * x, 5.0);
    /// m.set_objective(x + 0.0);
    /// assert_eq!(m.solve()?.objective(), 2.0);             // integral
    /// assert_eq!(m.solve_relaxation()?.objective(), 2.5);  // relaxed
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// See [`SolveError`].
    pub fn solve_relaxation(&self) -> Result<Solution, SolveError> {
        let mut relaxed = self.clone();
        for def in &mut relaxed.vars {
            def.kind = VarKind::Continuous;
        }
        relaxed.solve()
    }

    /// Internal: objective coefficients as a dense vector in *minimization*
    /// form (maximization is negated), plus the constant offset.
    pub(crate) fn min_objective(&self) -> (Vec<f64>, f64) {
        let mut c = vec![0.0; self.vars.len()];
        for (v, coeff) in self.objective.iter() {
            c[v.index()] = coeff;
        }
        let mut offset = self.objective.constant_part();
        if self.sense == Sense::Maximize {
            for x in &mut c {
                *x = -*x;
            }
            offset = -offset;
        }
        (c, offset)
    }

    /// Internal: converts a minimization objective value back to the model's
    /// sense.
    pub(crate) fn externalize_obj(&self, min_obj: f64) -> f64 {
        match self.sense {
            Sense::Minimize => min_obj,
            Sense::Maximize => -min_obj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold_into_rhs() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 10.0);
        let row = m.add_le(x + 3.0, 5.0);
        let con = &m.cons[row];
        assert_eq!(con.rhs(), 2.0);
        assert_eq!(con.expr().constant_part(), 0.0);
    }

    #[test]
    fn validate_catches_bad_bounds() {
        let mut m = Model::new(Sense::Minimize);
        m.add_continuous("x", 2.0, 1.0);
        assert!(matches!(m.validate(), Err(SolveError::InvalidModel(_))));
    }

    #[test]
    fn validate_catches_unbounded_integer() {
        let mut m = Model::new(Sense::Minimize);
        m.add_integer("n", 0.0, f64::INFINITY);
        assert!(matches!(m.validate(), Err(SolveError::InvalidModel(_))));
    }

    #[test]
    fn feasibility_checker() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 10.0);
        let b = m.add_binary("b");
        m.add_le(x + 5.0 * b, 7.0);
        assert!(m.is_feasible(&[2.0, 1.0], 1e-9));
        assert!(!m.is_feasible(&[3.0, 1.0], 1e-9)); // constraint violated
        assert!(!m.is_feasible(&[2.0, 0.5], 1e-9)); // fractional binary
        assert!(!m.is_feasible(&[11.0, 0.0], 1e-9)); // bound violated
        assert!(!m.is_feasible(&[2.0], 1e-9)); // wrong arity
    }

    #[test]
    fn min_objective_negates_for_maximize() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 1.0);
        m.set_objective(2.0 * x + 1.0);
        let (c, offset) = m.min_objective();
        assert_eq!(c, vec![-2.0]);
        assert_eq!(offset, -1.0);
        assert_eq!(m.externalize_obj(-3.0), 3.0);
    }

    #[test]
    fn counts() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 1.0);
        let b = m.add_binary("b");
        m.add_integer("n", 0.0, 5.0);
        m.add_le(x + b, 1.0);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.num_integer_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
    }
}
