//! Solver configuration.

use crate::basis_store::BasisStore;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A cooperative cancellation handle polled at branch-and-bound node
/// boundaries (and between root cut rounds).
///
/// The default flag is *disabled*: it never trips and costs one `Option`
/// check per poll. A live flag ([`StopFlag::new`]) can be cloned into a
/// solve and [triggered](StopFlag::trigger) from another thread; the search
/// stops at its next node boundary and reports its best incumbent (or
/// [`SolveError::LimitWithoutIncumbent`](crate::SolveError) when none
/// exists), exactly like a node or time limit binding.
#[derive(Debug, Clone, Default)]
pub struct StopFlag(Option<Arc<AtomicBool>>);

impl StopFlag {
    /// A live flag, initially unset.
    #[must_use]
    pub fn new() -> Self {
        StopFlag(Some(Arc::new(AtomicBool::new(false))))
    }

    /// The disabled flag that never trips (what [`Default`] returns).
    #[must_use]
    pub fn disabled() -> Self {
        StopFlag(None)
    }

    /// Requests cancellation. Safe to call from any thread, idempotent, and
    /// a no-op on a disabled flag.
    pub fn trigger(&self) {
        if let Some(flag) = &self.0 {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_set(&self) -> bool {
        self.0.as_ref().is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

/// Two flags are equal when they share the same underlying cell (or are
/// both disabled) — handle identity, not current state, so configs holding
/// cloned flags compare equal.
impl PartialEq for StopFlag {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Which simplex kernel solves node LPs: the sparse revised simplex, the
/// dense reference tableau, or an automatic per-instance choice.
///
/// Both kernels implement identical pivot rules and are held equal by a
/// differential test suite, so the mode only changes speed. `BENCH_MILP`
/// shows the sparse kernel at 0.33–0.54× the dense per-pivot throughput on
/// tiny knapsacks (the CSC/LU machinery has fixed overhead a one-row
/// tableau never amortizes) while winning clearly on placement-sized LPs —
/// hence [`SparseMode::Auto`], which keeps the dense tableau below a small
/// size threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SparseMode {
    /// Pick per solve from the root LP dimensions: dense when
    /// `rows + structural columns < `[`SparseMode::AUTO_THRESHOLD`], sparse
    /// otherwise. The default.
    #[default]
    Auto,
    /// Always the sparse revised kernel.
    Sparse,
    /// Always the dense reference tableau.
    Dense,
}

impl SparseMode {
    /// `Auto` switches to the sparse kernel when `rows + structural
    /// columns` reaches this value. Calibrated so the knapsack family
    /// (1 row + ≤30 columns) stays dense while the placement MILPs
    /// (tens of rows and columns) go sparse.
    pub const AUTO_THRESHOLD: usize = 48;

    /// Resolves the mode against an instance's root dimensions: `true`
    /// selects the sparse kernel.
    #[must_use]
    pub fn resolve(self, rows: usize, structural_cols: usize) -> bool {
        match self {
            SparseMode::Sparse => true,
            SparseMode::Dense => false,
            SparseMode::Auto => rows + structural_cols >= Self::AUTO_THRESHOLD,
        }
    }
}

/// Tunable limits and tolerances for [`Model::solve_with`](crate::Model::solve_with).
///
/// The defaults are sized for the floorplanner's augmentation subproblems
/// (tens of binaries, a few hundred constraints). The paper relies on LINDO
/// returning the optimum of each subproblem; the limits here exist so a
/// pathological subproblem degrades to "best incumbent found" instead of
/// hanging, which keeps the successive-augmentation loop linear-time in
/// practice (Table 1's claim).
///
/// ```
/// let opts = fp_milp::SolveOptions::default().with_node_limit(1_000);
/// assert_eq!(opts.node_limit, 1_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOptions {
    /// Maximum branch-and-bound nodes explored.
    pub node_limit: usize,
    /// Wall-clock budget for the whole solve.
    pub time_limit: Duration,
    /// Feasibility tolerance for simplex basic values and constraint checks.
    pub feas_tol: f64,
    /// Reduced-cost optimality tolerance.
    pub opt_tol: f64,
    /// How far from integral a value may be and still count as integral.
    pub int_tol: f64,
    /// Accept any incumbent whose objective is within this absolute gap of
    /// the best bound and stop early. `0.0` demands a proven optimum.
    pub absolute_gap: f64,
    /// Worker threads for the branch-and-bound search. Values `<= 1` select
    /// the serial solver, which visits nodes in a deterministic dive-first
    /// DFS order; larger values share the frontier between that many
    /// workers, which reach the same proven optimum but may differ in node
    /// counts and in which optimal vertex is reported. Defaults to
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Warm-start each node's LP from its parent's optimal basis via the
    /// dual simplex instead of re-running two-phase primal from scratch.
    /// Purely a performance lever: any numerical doubt falls back to the
    /// cold solve, so results are identical either way. Default `true`.
    pub warm_start: bool,
    /// Maximum dual-simplex pivots per warm attempt before giving up and
    /// re-solving cold. `0` (the default) sizes the cap automatically from
    /// the row count.
    pub warm_pivot_cap: usize,
    /// Which kernel solves node LPs: the sparse revised simplex (CSC
    /// matrix, LU-factored basis with eta-file updates, partial pricing),
    /// the dense reference tableau, or a per-instance automatic choice.
    /// Both kernels implement identical pivot rules and are held equal by a
    /// differential test suite, so this only changes speed. Default
    /// [`SparseMode::Auto`]; [`SolveOptions::with_sparse`] still forces a
    /// kernel explicitly.
    pub sparse: SparseMode,
    /// Eta-file updates tolerated between basis refactorizations on the
    /// sparse kernel. Smaller values trade factorization time for tighter
    /// numerical drift control; `0` (the default) picks automatically.
    /// Ignored by the dense kernel, which refactorizes never (it carries
    /// `B⁻¹·A` explicitly). Sits alongside [`Self::warm_pivot_cap`] in the
    /// numerics-vs-speed knob family.
    pub refactor_interval: usize,
    /// Run the root model-strengthening layer (big-M coefficient
    /// tightening, 0-1 probing, root cutting planes) after classic
    /// presolve. Purely a performance lever: every reduction preserves the
    /// set of integer-feasible points, so the proven objective is identical
    /// either way. Default `true`.
    pub strengthen: bool,
    /// Work budget for 0-1 probing: the maximum number of tentative
    /// fix-and-propagate runs (each single-binary probe costs two, each
    /// co-occurring pair probe costs four). `0` disables probing while
    /// keeping coefficient tightening and knapsack cover cuts.
    pub probe_budget: usize,
    /// Maximum cutting planes appended to the root LP across all
    /// separation rounds. `0` disables cut generation.
    pub max_cuts: usize,
    /// Maximum fixpoint passes of the classic presolve loop (singleton
    /// folding, activity bounds, implied/integral tightening). The number
    /// actually run is reported in
    /// [`SolveStats::presolve_passes`](crate::SolveStats::presolve_passes).
    pub presolve_passes: usize,
    /// An externally known objective value (in the model's sense) that the
    /// search must strictly beat — typically the cost of a solution another
    /// solver already holds. Branch-and-bound prunes against it from the
    /// first node and only installs incumbents strictly better than it, so
    /// a solve can never return a solution at or worse than this bound; if
    /// nothing better exists the solve reports
    /// [`SolveError::Infeasible`](crate::SolveError) (proven) or
    /// [`SolveError::LimitWithoutIncumbent`](crate::SolveError) (limit
    /// bound first). For `Maximize` models the value acts as a lower
    /// cutoff. Non-finite values (the default, `f64::INFINITY`) disable it.
    pub initial_upper_bound: f64,
    /// Cooperative cancellation flag polled at node boundaries; see
    /// [`StopFlag`]. Disabled by default.
    pub stop: StopFlag,
    /// Cross-solve root-basis store (see [`BasisStore`]). When set, the
    /// solve fetches a root basis under [`Self::basis_load_key`] before the
    /// tree starts (unless the root cut loop already committed one of its
    /// own) and publishes its committed root basis under
    /// [`Self::basis_publish_key`] afterwards. `None` (the default) keeps
    /// warm starts strictly within one solve.
    pub basis_store: Option<Arc<BasisStore>>,
    /// Store key the root basis is *fetched* under — typically the base
    /// instance's fingerprint (an ECO re-solve loads the base job's basis).
    pub basis_load_key: u64,
    /// Store key the committed root basis is *published* under — typically
    /// this instance's own fingerprint.
    pub basis_publish_key: u64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            node_limit: 200_000,
            time_limit: Duration::from_secs(120),
            feas_tol: 1e-7,
            opt_tol: 1e-9,
            int_tol: 1e-6,
            absolute_gap: 0.0,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            warm_start: true,
            warm_pivot_cap: 0,
            sparse: SparseMode::Auto,
            refactor_interval: 0,
            strengthen: true,
            probe_budget: 512,
            max_cuts: 64,
            presolve_passes: 4,
            initial_upper_bound: f64::INFINITY,
            stop: StopFlag::disabled(),
            basis_store: None,
            basis_load_key: 0,
            basis_publish_key: 0,
        }
    }
}

impl SolveOptions {
    /// Returns options with the given node limit.
    #[must_use]
    pub fn with_node_limit(mut self, nodes: usize) -> Self {
        self.node_limit = nodes;
        self
    }

    /// Returns options with the given time limit.
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = limit;
        self
    }

    /// Returns options accepting incumbents within `gap` of the best bound.
    #[must_use]
    pub fn with_absolute_gap(mut self, gap: f64) -> Self {
        self.absolute_gap = gap;
        self
    }

    /// Returns options running the search on `threads` workers. `1` (or `0`,
    /// which is treated as `1`) selects the deterministic serial solver.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns options with warm-started node LPs enabled or disabled.
    #[must_use]
    pub fn with_warm_start(mut self, warm: bool) -> Self {
        self.warm_start = warm;
        self
    }

    /// Returns options with the given per-node dual pivot cap (`0` = auto).
    #[must_use]
    pub fn with_warm_pivot_cap(mut self, cap: usize) -> Self {
        self.warm_pivot_cap = cap;
        self
    }

    /// Returns options forcing a kernel: the sparse revised simplex
    /// (`true`) or the dense reference tableau (`false`), overriding the
    /// default per-instance [`SparseMode::Auto`] choice.
    #[must_use]
    pub fn with_sparse(mut self, sparse: bool) -> Self {
        self.sparse = if sparse {
            SparseMode::Sparse
        } else {
            SparseMode::Dense
        };
        self
    }

    /// Returns options with the given kernel-selection mode.
    #[must_use]
    pub fn with_sparse_mode(mut self, mode: SparseMode) -> Self {
        self.sparse = mode;
        self
    }

    /// Returns options with the given eta-update budget between basis
    /// refactorizations (`0` = auto; ignored by the dense kernel).
    #[must_use]
    pub fn with_refactor_interval(mut self, interval: usize) -> Self {
        self.refactor_interval = interval;
        self
    }

    /// Returns options with root model strengthening enabled or disabled.
    #[must_use]
    pub fn with_strengthen(mut self, on: bool) -> Self {
        self.strengthen = on;
        self
    }

    /// Returns options with the given probing work budget (`0` disables
    /// probing).
    #[must_use]
    pub fn with_probe_budget(mut self, probes: usize) -> Self {
        self.probe_budget = probes;
        self
    }

    /// Returns options with the given root-cut cap (`0` disables cuts).
    #[must_use]
    pub fn with_max_cuts(mut self, cuts: usize) -> Self {
        self.max_cuts = cuts;
        self
    }

    /// Returns options with the given presolve fixpoint pass cap (values
    /// `< 1` are treated as `1`; one pass always runs).
    #[must_use]
    pub fn with_presolve_passes(mut self, passes: usize) -> Self {
        self.presolve_passes = passes;
        self
    }

    /// Returns options with an externally known objective cutoff the search
    /// must strictly beat (non-finite disables; see
    /// [`Self::initial_upper_bound`]).
    #[must_use]
    pub fn with_initial_upper_bound(mut self, bound: f64) -> Self {
        self.initial_upper_bound = bound;
        self
    }

    /// Returns options polling the given cooperative cancellation flag at
    /// node boundaries.
    #[must_use]
    pub fn with_stop(mut self, stop: StopFlag) -> Self {
        self.stop = stop;
        self
    }

    /// Returns options wired to a cross-solve [`BasisStore`]: the root LP
    /// is seeded from the basis stored under `load_key` and the committed
    /// root basis is published under `publish_key` (pass the same key for
    /// plain repeat-traffic warm starts).
    #[must_use]
    pub fn with_basis_store(
        mut self,
        store: Arc<BasisStore>,
        load_key: u64,
        publish_key: u64,
    ) -> Self {
        self.basis_store = Some(store);
        self.basis_load_key = load_key;
        self.basis_publish_key = publish_key;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let o = SolveOptions::default()
            .with_node_limit(5)
            .with_time_limit(Duration::from_millis(10))
            .with_absolute_gap(0.5);
        assert_eq!(o.node_limit, 5);
        assert_eq!(o.time_limit, Duration::from_millis(10));
        assert_eq!(o.absolute_gap, 0.5);
    }

    #[test]
    fn defaults_are_sane() {
        let o = SolveOptions::default();
        assert!(o.feas_tol > 0.0 && o.feas_tol < 1e-3);
        assert!(o.int_tol >= o.feas_tol / 10.0);
        assert!(o.node_limit > 1_000);
        assert!(o.threads >= 1);
        assert!(o.warm_start);
        assert_eq!(o.warm_pivot_cap, 0);
        assert_eq!(o.sparse, SparseMode::Auto);
        assert_eq!(o.refactor_interval, 0);
        assert!(o.strengthen);
        assert!(o.probe_budget > 0);
        assert!(o.max_cuts > 0);
        assert!(o.presolve_passes >= 1);
        assert!(o.initial_upper_bound.is_infinite());
        assert!(!o.stop.is_set());
    }

    #[test]
    fn stop_flag_semantics() {
        let disabled = StopFlag::disabled();
        disabled.trigger();
        assert!(!disabled.is_set());

        let live = StopFlag::new();
        assert!(!live.is_set());
        let clone = live.clone();
        live.trigger();
        assert!(clone.is_set(), "clones share the underlying cell");

        // Identity equality: a clone is equal, a fresh flag is not.
        assert_eq!(live, clone);
        assert_ne!(live, StopFlag::new());
        assert_eq!(StopFlag::disabled(), StopFlag::default());
    }

    #[test]
    fn portfolio_builders() {
        let stop = StopFlag::new();
        let o = SolveOptions::default()
            .with_initial_upper_bound(42.5)
            .with_stop(stop.clone());
        assert_eq!(o.initial_upper_bound, 42.5);
        assert_eq!(o.stop, stop);
    }

    #[test]
    fn strengthen_builders() {
        let o = SolveOptions::default()
            .with_strengthen(false)
            .with_probe_budget(17)
            .with_max_cuts(3)
            .with_presolve_passes(9);
        assert!(!o.strengthen);
        assert_eq!(o.probe_budget, 17);
        assert_eq!(o.max_cuts, 3);
        assert_eq!(o.presolve_passes, 9);
    }

    #[test]
    fn warm_start_builders() {
        let o = SolveOptions::default()
            .with_warm_start(false)
            .with_warm_pivot_cap(7);
        assert!(!o.warm_start);
        assert_eq!(o.warm_pivot_cap, 7);
    }

    #[test]
    fn sparse_builders() {
        let o = SolveOptions::default()
            .with_sparse(false)
            .with_refactor_interval(16);
        assert_eq!(o.sparse, SparseMode::Dense);
        assert_eq!(o.refactor_interval, 16);
        assert_eq!(
            SolveOptions::default().with_sparse(true).sparse,
            SparseMode::Sparse
        );
        assert_eq!(
            SolveOptions::default()
                .with_sparse_mode(SparseMode::Auto)
                .sparse,
            SparseMode::Auto
        );
    }

    #[test]
    fn sparse_mode_resolution() {
        // Forced modes ignore the dimensions entirely.
        assert!(SparseMode::Sparse.resolve(0, 0));
        assert!(!SparseMode::Dense.resolve(1_000, 1_000));
        // Auto: knapsack-sized stays dense, placement-sized goes sparse.
        assert!(!SparseMode::Auto.resolve(1, 22)); // knapsack22
        assert!(SparseMode::Auto.resolve(32, 21)); // placement4
        let t = SparseMode::AUTO_THRESHOLD;
        assert!(!SparseMode::Auto.resolve(t - 1, 0));
        assert!(SparseMode::Auto.resolve(t, 0));
    }

    #[test]
    fn basis_store_builder() {
        let o = SolveOptions::default();
        assert!(o.basis_store.is_none());
        let store = Arc::new(BasisStore::new(8));
        let o = o.with_basis_store(Arc::clone(&store), 3, 9);
        assert!(o.basis_store.is_some());
        assert_eq!((o.basis_load_key, o.basis_publish_key), (3, 9));
        // Identity equality, like StopFlag: a clone of the handle is equal.
        assert_eq!(o.clone(), o);
    }

    #[test]
    fn with_threads_sets_field() {
        assert_eq!(SolveOptions::default().with_threads(4).threads, 4);
        assert_eq!(SolveOptions::default().with_threads(1).threads, 1);
    }
}
