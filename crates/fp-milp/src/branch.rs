//! Branch-and-bound over the integer variables.
//!
//! Depth-first search with dive-first child ordering (the child closest to
//! the LP-relaxation value is explored first), user branch priorities, and
//! incumbent pruning. Depth-first diving reaches integer-feasible leaves
//! quickly, which gives the strong upper bounds the big-M non-overlap
//! disjunctions of the floorplanning formulation need to prune.

use crate::error::SolveError;
use crate::model::Model;
use crate::options::SolveOptions;
use crate::presolve::{presolve, PresolveStatus};
use crate::simplex::{solve_lp, LpOutcome, LpProblem, SparseRow};
use crate::solution::{Optimality, Solution, SolveStats};
use std::time::Instant;

struct Node {
    lb: Vec<f64>,
    ub: Vec<f64>,
    depth: usize,
}

/// Entry point used by [`Model::solve_with`].
pub(crate) fn solve(model: &Model, options: &SolveOptions) -> Result<Solution, SolveError> {
    let started = Instant::now();
    let (c, c_offset) = model.min_objective();

    let rows: Vec<SparseRow> = model
        .cons
        .iter()
        .map(|con| {
            (
                con.expr.iter().map(|(v, a)| (v.index(), a)).collect(),
                con.cmp,
                con.rhs,
            )
        })
        .collect();

    let base_lb: Vec<f64> = model.vars.iter().map(|d| d.lb).collect();
    let base_ub: Vec<f64> = model.vars.iter().map(|d| d.ub).collect();

    // Root presolve: tighten bounds, drop redundant rows, or prove
    // infeasibility outright.
    let integral: Vec<bool> = model.vars.iter().map(|d| d.kind.is_integral()).collect();
    let pre = presolve(&rows, base_lb, base_ub, &integral, options.feas_tol);
    if pre.status == PresolveStatus::Infeasible {
        return Err(SolveError::Infeasible);
    }
    let rows: Vec<SparseRow> = pre.kept_rows.iter().map(|&r| rows[r].clone()).collect();
    let (base_lb, base_ub) = (pre.lb, pre.ub);

    // Integral columns ordered by descending branch priority (stable).
    let mut int_cols: Vec<usize> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, d)| d.kind.is_integral())
        .map(|(i, _)| i)
        .collect();
    int_cols.sort_by_key(|&i| std::cmp::Reverse(model.vars[i].branch_priority));

    let mut stats = SolveStats::default();
    let mut incumbent: Option<(Vec<f64>, f64)> = None; // (values, min-form obj)
    let mut proven = true;

    let mut stack = vec![Node {
        lb: base_lb,
        ub: base_ub,
        depth: 0,
    }];

    while let Some(node) = stack.pop() {
        if stats.nodes >= options.node_limit || started.elapsed() >= options.time_limit {
            proven = false;
            break;
        }
        stats.nodes += 1;

        let problem = LpProblem {
            ncols: model.num_vars(),
            rows: &rows,
            c: &c,
            lb: &node.lb,
            ub: &node.ub,
        };
        let outcome = solve_lp(&problem, options.feas_tol, options.opt_tol);
        let (x, obj) = match outcome {
            LpOutcome::Optimal { x, obj, iterations } => {
                stats.simplex_iterations += iterations;
                (x, obj)
            }
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                if node.depth == 0 && int_cols.is_empty() {
                    return Err(SolveError::Unbounded);
                }
                if node.depth == 0 {
                    // Unbounded relaxation: the MILP is unbounded or
                    // infeasible; report unbounded, matching solver practice.
                    return Err(SolveError::Unbounded);
                }
                proven = false;
                continue;
            }
            LpOutcome::IterationLimit => {
                if node.depth == 0 {
                    return Err(SolveError::IterationLimit);
                }
                proven = false;
                continue;
            }
        };

        // Bound pruning against the incumbent (minimization form).
        if let Some((_, inc_obj)) = &incumbent {
            if obj >= inc_obj - options.absolute_gap - 1e-9 {
                continue;
            }
        }

        // Find the branching variable: highest priority, then most
        // fractional.
        let mut branch_col: Option<(usize, f64, i32, f64)> = None; // (col, val, prio, frac-score)
        for &j in &int_cols {
            let v = x[j];
            let frac = (v - v.round()).abs();
            if frac <= options.int_tol {
                continue;
            }
            let prio = model.vars[j].branch_priority;
            let score = 0.5 - (v.fract().abs() - 0.5).abs(); // closeness to .5
            let better = match branch_col {
                None => true,
                Some((_, _, bp, bs)) => prio > bp || (prio == bp && score > bs),
            };
            if better {
                branch_col = Some((j, v, prio, score));
            }
        }

        match branch_col {
            None => {
                // Integer feasible: snap integers exactly and record.
                let mut vals = x;
                for &j in &int_cols {
                    vals[j] = vals[j].round();
                }
                let better = incumbent
                    .as_ref()
                    .is_none_or(|(_, inc_obj)| obj < *inc_obj - 1e-9);
                if better {
                    incumbent = Some((vals, obj));
                }
            }
            Some((j, v, _, _)) => {
                let floor = v.floor();
                let ceil = v.ceil();
                let mut down = Node {
                    lb: node.lb.clone(),
                    ub: node.ub.clone(),
                    depth: node.depth + 1,
                };
                down.ub[j] = floor;
                let mut up = Node {
                    lb: node.lb,
                    ub: node.ub,
                    depth: node.depth + 1,
                };
                up.lb[j] = ceil;
                // Dive toward the nearer integer: push the preferred child
                // last so the LIFO stack pops it first.
                if v - floor <= 0.5 {
                    stack.push(up);
                    stack.push(down);
                } else {
                    stack.push(down);
                    stack.push(up);
                }
            }
        }
    }

    stats.elapsed = started.elapsed();

    match incumbent {
        Some((values, min_obj)) => {
            let optimality = if proven {
                Optimality::Proven
            } else {
                Optimality::Limit
            };
            Ok(Solution::new(
                values,
                model.externalize_obj(min_obj + c_offset),
                optimality,
                stats,
            ))
        }
        None => {
            if proven {
                Err(SolveError::Infeasible)
            } else {
                Err(SolveError::LimitWithoutIncumbent)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Model, Optimality, Sense, SolveError, SolveOptions};
    use std::time::Duration;

    #[test]
    fn pure_lp_path() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_ge(x + y, 3.0);
        m.set_objective(2.0 * x + y);
        let s = m.solve().unwrap();
        assert!((s.objective() - 3.0).abs() < 1e-7);
        assert_eq!(s.optimality(), Optimality::Proven);
        assert_eq!(s.stats().nodes, 1);
    }

    #[test]
    fn knapsack_optimum() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6 -> b + c = 20.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_le(3.0 * a + 4.0 * b + 2.0 * c, 6.0);
        m.set_objective(10.0 * a + 13.0 * b + 7.0 * c);
        let s = m.solve().unwrap();
        assert!((s.objective() - 20.0).abs() < 1e-6);
        assert_eq!(s.rounded(a), 0);
        assert_eq!(s.rounded(b), 1);
        assert_eq!(s.rounded(c), 1);
    }

    #[test]
    fn integer_rounding_not_lp_rounding() {
        // Classic: max x, 2x <= 5, x integer -> 2 (LP gives 2.5).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_le(2.0 * x, 5.0);
        m.set_objective(LinExprOf(x));
        let s = m.solve().unwrap();
        assert_eq!(s.rounded(x), 2);
    }

    // helper because set_objective takes impl Into<LinExpr>
    #[allow(non_snake_case)]
    fn LinExprOf(v: crate::Var) -> crate::LinExpr {
        v + 0.0
    }

    #[test]
    fn infeasible_milp() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_ge(a + b, 3.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_reported() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(x + 0.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn node_limit_returns_incumbent_or_error() {
        // Root relaxation is fractional (2Σb <= 3), so one node cannot
        // complete the search: the limit must bind.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| m.add_binary(format!("b{i}"))).collect();
        let total: crate::LinExpr = vars.iter().map(|&v| 2.0 * v).sum();
        m.add_le(total.clone(), 3.0);
        m.set_objective(total);
        let opts = SolveOptions::default().with_node_limit(1);
        match m.solve_with(&opts) {
            Ok(s) => assert_eq!(s.optimality(), Optimality::Limit),
            Err(e) => assert_eq!(e, SolveError::LimitWithoutIncumbent),
        }
        // With a generous limit the same model solves to proven optimality.
        let s = m.solve().unwrap();
        assert_eq!(s.optimality(), Optimality::Proven);
        assert!((s.objective() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn time_limit_zero_behaves() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        m.set_objective(a + 0.0);
        let opts = SolveOptions::default().with_time_limit(Duration::ZERO);
        assert_eq!(
            m.solve_with(&opts).unwrap_err(),
            SolveError::LimitWithoutIncumbent
        );
    }

    #[test]
    fn branch_priority_respected_and_still_optimal() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_branch_priority(a, -5);
        m.set_branch_priority(b, 10);
        m.add_le(1.0 * a + 1.0 * b, 1.0);
        m.set_objective(2.0 * a + 3.0 * b);
        let s = m.solve().unwrap();
        assert!((s.objective() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constrained_milp() {
        // min a + 2b + 3c with a + b + c = 2 (binaries) -> a=1, b=1: obj 3.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_eq(a + b + c, 2.0);
        m.set_objective(1.0 * a + 2.0 * b + 3.0 * c);
        let s = m.solve().unwrap();
        assert!((s.objective() - 3.0).abs() < 1e-6);
        assert_eq!(s.rounded(c), 0);
    }

    #[test]
    fn disjunctive_big_m_interval_placement() {
        // Two unit intervals on [0, 2] must not overlap: the 1-D core of the
        // paper's non-overlap constraints, one binary selecting the order.
        let big = 10.0;
        let mut m = Model::new(Sense::Minimize);
        let x1 = m.add_continuous("x1", 0.0, 1.0);
        let x2 = m.add_continuous("x2", 0.0, 1.0);
        let p = m.add_binary("p");
        // x1 + 1 <= x2 + M p   and   x2 + 1 <= x1 + M (1 - p)
        m.add_le(x1 + 1.0 - x2 - big * p, 0.0);
        m.add_le(x2 + 1.0 - x1 - big * (1.0 - p), 0.0);
        // Minimize the right edge: span y >= xi + 1.
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_ge(y - x1, 1.0);
        m.add_ge(y - x2, 1.0);
        m.set_objective(y + 0.0);
        let s = m.solve().unwrap();
        assert!((s.objective() - 2.0).abs() < 1e-6);
        let (a, b) = (s.value(x1), s.value(x2));
        assert!((a - b).abs() >= 1.0 - 1e-6, "intervals overlap: {a} {b}");
    }

    #[test]
    fn objective_constant_offset_preserved() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 1.0, 5.0);
        m.set_objective(x + 100.0);
        let s = m.solve().unwrap();
        assert!((s.objective() - 101.0).abs() < 1e-7);
    }

    #[test]
    fn gap_accepts_near_optimal() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8).map(|i| m.add_binary(format!("b{i}"))).collect();
        let total: crate::LinExpr = vars.iter().map(|&v| 1.0 * v).sum();
        m.add_le(total.clone(), 4.0);
        m.set_objective(total);
        let opts = SolveOptions::default().with_absolute_gap(1.5);
        let s = m.solve_with(&opts).unwrap();
        // Within 1.5 of the optimum 4.
        assert!(s.objective() >= 2.5 - 1e-6);
    }
}
