//! Branch-and-bound over the integer variables.
//!
//! Depth-first search with dive-first child ordering (the child closest to
//! the LP-relaxation value is explored first), user branch priorities, and
//! incumbent pruning. Depth-first diving reaches integer-feasible leaves
//! quickly, which gives the strong upper bounds the big-M non-overlap
//! disjunctions of the floorplanning formulation need to prune.
//!
//! With [`SolveOptions::threads`] above one, the search runs work-sharing
//! parallel branch-and-bound: the root relaxation is solved on the calling
//! thread (so depth-0 error cases surface exactly as in the serial solver),
//! then scoped worker threads pop nodes from a shared LIFO frontier, prune
//! against a shared incumbent, and terminate when every worker is idle with
//! an empty frontier. `threads <= 1` runs the original serial loop, whose
//! node order — and therefore incumbent, node count, and reported optimal
//! vertex — is fully deterministic.

use crate::error::SolveError;
use crate::model::Model;
use crate::options::SolveOptions;
use crate::presolve::{presolve, strengthen, CutSeparator, PresolveStatus, Strengthened};
use crate::simplex::{BasisSnapshot, LpConfig, LpOutcome, LpProblem, SparseRow, Workspace};
use crate::solution::{Optimality, Solution, SolveStats, ThreadStats};
use fp_obs::{Event, Phase, Tracer};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

struct Node {
    lb: Vec<f64>,
    ub: Vec<f64>,
    depth: usize,
    /// The parent's optimal basis, shared by both children so each node's
    /// LP can warm-start via the dual simplex. `None` at the root or when
    /// [`SolveOptions::warm_start`] is off.
    basis: Option<Arc<BasisSnapshot>>,
}

/// Root strengthening counters patched onto [`SolveStats`] after the search.
#[derive(Default)]
struct StrengthenCounters {
    presolve_passes: usize,
    rows_tightened: usize,
    binaries_fixed: usize,
    implications: usize,
    cuts_added: usize,
}

/// Cut generation rounds run against the root relaxation (logic cuts take
/// the first round, violated-cut separation the rest).
const CUT_ROUNDS: usize = 4;

/// Relative root-bound improvement a cut round must deliver to be kept.
/// A round that fails the test is rolled back: cuts that don't move the
/// relaxation bound still bloat every node LP in the tree and perturb
/// branching for nothing (the knapsack18 node-count regression).
const CUT_IMPROVE_TOL: f64 = 1e-9;

/// Appends root cutting planes to `rows`: implication-logic cuts first
/// (round 0, no LP point needed), then violated-cut separation against the
/// root relaxation, up to [`CUT_ROUNDS`] rounds total. Every round is
/// provisional until the re-solved root LP proves a relative bound
/// improvement of at least [`CUT_IMPROVE_TOL`]; a stalled round is
/// truncated off the row set and separation stops. Returns the number of
/// cuts kept (capped at [`SolveOptions::max_cuts`]) plus the optimal basis
/// of the final committed row set when the last LP solve still describes
/// it — the tree's root node warm-starts from that basis instead of
/// repeating the same cold two-phase solve.
///
/// The LP pivots spent separating are deliberately *not* counted in
/// [`SolveStats::simplex_iterations`], which tallies tree-node pivots only
/// (traced per-node pivot sums must keep matching it).
#[allow(clippy::too_many_arguments)]
fn add_root_cuts(
    model: &Model,
    options: &SolveOptions,
    started: Instant,
    c: &[f64],
    rows: &mut Vec<SparseRow>,
    lb: &[f64],
    ub: &[f64],
    integral: &[bool],
    st: &Strengthened,
    seed: Option<Arc<BasisSnapshot>>,
    tracer: &Tracer,
) -> (
    usize,
    Option<Arc<BasisSnapshot>>,
    Option<Arc<BasisSnapshot>>,
) {
    let mut sep = CutSeparator::new(st, rows, lb, ub, integral);
    let max = options.max_cuts;
    let mut added = 0;

    let deadline = started.checked_add(options.time_limit);
    let lp_cfg = lp_config(options, deadline, rows.len(), c.len());
    let mut ws = Workspace::new();

    // Bound of the relaxation over the committed row set; the first
    // iteration solves the cut-free baseline it is measured against.
    let mut bound = f64::NEG_INFINITY;
    // `(round, cuts appended, row count before they were appended)` of the
    // round awaiting its bound-improvement verdict.
    let mut pending: Option<(usize, usize, usize)> = None;
    // Optimal basis over the latest *committed* row set, captured before any
    // provisional cuts are appended — a rollback truncates back to exactly
    // the row count this basis was solved over, so it stays reusable. The
    // cross-solve `seed` (if any) plays the role of a zeroth committed
    // basis, so the otherwise-cold baseline solve warm-starts from it.
    let mut committed: Option<Arc<BasisSnapshot>> = seed;
    // The basis of the cut-free baseline relaxation: the only snapshot whose
    // row count a *future* solve of this model can still load (cut rows are
    // per-solve), so it is what a BasisStore publishes.
    let mut baseline: Option<Arc<BasisSnapshot>> = None;

    for round in 0..=CUT_ROUNDS {
        let problem = LpProblem {
            ncols: model.num_vars(),
            rows,
            c,
            lb,
            ub,
        };
        // Rounds after the first warm-start from the last committed basis:
        // the sparse kernel extends it across the appended cut rows (their
        // slacks go basic) and dual-repairs just those rows.
        let (outcome, _) = ws.solve(&problem, committed.as_ref(), &lp_cfg);
        let x = match outcome {
            LpOutcome::Optimal { x, obj } => {
                if let Some((r, count, base_len)) = pending.take() {
                    if obj > bound + CUT_IMPROVE_TOL * (1.0 + bound.abs()) {
                        added += count;
                        tracer.emit(
                            Phase::Solver,
                            Event::CutRound {
                                round: r,
                                cuts: count,
                            },
                        );
                    } else {
                        rows.truncate(base_len);
                        break;
                    }
                }
                bound = obj;
                committed = Some(ws.snapshot());
                if baseline.is_none() {
                    baseline = committed.clone();
                }
                x
            }
            // Infeasible/unbounded/limits: the pending round can't be
            // judged, but its cuts are valid inequalities — keep them and
            // let the tree surface the condition on its normal path.
            _ => {
                if let Some((r, count, _)) = pending.take() {
                    added += count;
                    tracer.emit(
                        Phase::Solver,
                        Event::CutRound {
                            round: r,
                            cuts: count,
                        },
                    );
                }
                break;
            }
        };
        if round == CUT_ROUNDS || added >= max || options.stop.is_set() {
            break;
        }
        // Logic cuts need no LP point and go first; when probing found
        // none, the first round separates like the rest.
        let mut cuts = if round == 0 {
            sep.logic_cuts(max - added)
        } else {
            Vec::new()
        };
        if cuts.is_empty() {
            cuts = sep.separate(&x, rows, max - added);
        }
        if cuts.is_empty() {
            break;
        }
        pending = Some((round, cuts.len(), rows.len()));
        rows.extend(cuts);
    }
    // `committed.m < rows.len()` (cuts kept on an unjudgeable break) still
    // warm-starts the root via the same slack-extension load.
    (added, committed, baseline)
}

/// The per-node LP configuration derived once per solve. The kernel choice
/// ([`SparseMode`](crate::SparseMode)) is resolved here against the root
/// dimensions — every
/// node of one solve runs on the same kernel.
fn lp_config(
    options: &SolveOptions,
    deadline: Option<Instant>,
    rows: usize,
    structural_cols: usize,
) -> LpConfig {
    LpConfig {
        feas_tol: options.feas_tol,
        opt_tol: options.opt_tol,
        deadline,
        warm_pivot_cap: options.warm_pivot_cap,
        sparse: options.sparse.resolve(rows, structural_cols),
        refactor_interval: options.refactor_interval,
    }
}

/// `(incumbent values + min-form objective, bound proven, stats)` from
/// either search loop; the caller converts this into the public result.
type SearchResult = (Option<(Vec<f64>, f64)>, bool, SolveStats);

/// Entry point used by [`Model::solve_with`] and [`Model::solve_traced`].
///
/// Trace contract: exactly one `SolveStart` is emitted on entry and exactly
/// one `SolveEnd` on every exit path (including errors), with one `BnbNode`
/// per node counted in [`SolveStats::nodes`] in between.
pub(crate) fn solve(
    model: &Model,
    options: &SolveOptions,
    tracer: &Tracer,
) -> Result<Solution, SolveError> {
    let started = Instant::now();
    tracer.emit(
        Phase::Solver,
        Event::SolveStart {
            binaries: model.num_integer_vars(),
            constraints: model.num_constraints(),
        },
    );
    let (c, c_offset) = model.min_objective();

    // External-sense cutoff internalized to minimization form: the search
    // prunes against it from the first node and only accepts strictly
    // better incumbents, so the returned solution can never be at or worse
    // than the injected bound. `externalize_obj` is an involution, so it
    // also maps external → internal sense.
    let cutoff = if options.initial_upper_bound.is_finite() {
        model.externalize_obj(options.initial_upper_bound) - c_offset
    } else {
        f64::INFINITY
    };

    let rows: Vec<SparseRow> = model
        .cons
        .iter()
        .map(|con| {
            (
                con.expr.iter().map(|(v, a)| (v.index(), a)).collect(),
                con.cmp,
                con.rhs,
            )
        })
        .collect();

    let base_lb: Vec<f64> = model.vars.iter().map(|d| d.lb).collect();
    let base_ub: Vec<f64> = model.vars.iter().map(|d| d.ub).collect();

    // Root presolve: tighten bounds, drop redundant rows, or prove
    // infeasibility outright.
    let integral: Vec<bool> = model.vars.iter().map(|d| d.kind.is_integral()).collect();
    let pre = presolve(
        &rows,
        base_lb,
        base_ub,
        &integral,
        options.feas_tol,
        options.presolve_passes,
    );
    if pre.status == PresolveStatus::Infeasible {
        tracer.emit(
            Phase::Solver,
            Event::SolveEnd {
                nodes: 0,
                simplex_iterations: 0,
                proven: true,
            },
        );
        return Err(SolveError::Infeasible);
    }
    let mut rows: Vec<SparseRow> = pre.kept_rows.iter().map(|&r| rows[r].clone()).collect();
    let mut lb = pre.lb;
    let mut ub = pre.ub;
    // Optimal basis of the final root relaxation, recovered from the cut
    // loop so the tree's root node does not repeat its cold solve.
    let mut root_basis: Option<Arc<BasisSnapshot>> = None;
    // The basis a cross-solve BasisStore publishes for future solves; only
    // the cut-free baseline qualifies (cut rows are per-solve).
    let mut publish_basis: Option<Arc<BasisSnapshot>> = None;

    // Cross-solve warm start: seed this solve's root relaxation from the
    // basis an earlier keyed solve published. Dimension checks mirror what
    // the kernels accept (`n_struct` must match; fewer rows load via slack
    // extension), so a stale entry degrades to a cold root, never an error —
    // a wrong-but-well-formed basis can only cost pivots.
    let mut basis_tier = crate::BasisTier::Cold;
    let basis_seed = if options.warm_start {
        options.basis_store.as_ref().and_then(|store| {
            store
                .fetch(crate::basis_store::slot(
                    options.basis_load_key,
                    model.num_vars(),
                ))
                .filter(|snap| snap.n_struct == model.num_vars() && snap.m <= rows.len())
        })
    } else {
        None
    };
    if let Some(snap) = &basis_seed {
        basis_tier = if snap.m == rows.len() {
            crate::BasisTier::Hot
        } else {
            crate::BasisTier::Warm
        };
    }

    // Root model strengthening: big-M coefficient tightening, 0-1 probing,
    // and cutting planes appended to the row set so every node (and every
    // warm-started basis) inherits the tighter relaxation.
    let mut counters = StrengthenCounters {
        presolve_passes: pre.passes,
        ..StrengthenCounters::default()
    };
    if options.strengthen {
        let st = match strengthen(
            &mut rows,
            &mut lb,
            &mut ub,
            &integral,
            options.feas_tol,
            options.probe_budget,
        ) {
            Ok(st) => st,
            Err(()) => {
                // Probing proved the model integer-infeasible.
                tracer.emit(
                    Phase::Solver,
                    Event::SolveEnd {
                        nodes: 0,
                        simplex_iterations: 0,
                        proven: true,
                    },
                );
                return Err(SolveError::Infeasible);
            }
        };
        counters.rows_tightened = st.rows_tightened;
        counters.binaries_fixed = st.binaries_fixed;
        counters.implications = st.implications.len();
        tracer.emit(
            Phase::Solver,
            Event::Presolve {
                passes: pre.passes,
                rows_tightened: st.rows_tightened,
                binaries_fixed: st.binaries_fixed,
                implications: st.implications.len(),
            },
        );
        if options.max_cuts > 0 {
            let (cuts_added, basis, baseline) = add_root_cuts(
                model,
                options,
                started,
                &c,
                &mut rows,
                &lb,
                &ub,
                &integral,
                &st,
                basis_seed.clone(),
                tracer,
            );
            counters.cuts_added = cuts_added;
            publish_basis = baseline;
            if options.warm_start {
                root_basis = basis;
            }
        } else if options.warm_start {
            root_basis = basis_seed.clone();
        }
    } else {
        tracer.emit(
            Phase::Solver,
            Event::Presolve {
                passes: pre.passes,
                rows_tightened: 0,
                binaries_fixed: 0,
                implications: 0,
            },
        );
        if options.warm_start {
            root_basis = basis_seed;
        }
    }

    // Publish the cut-free baseline basis for future solves of this (or a
    // structurally similar) instance. Solves that never reached a baseline
    // optimum (strengthen off, infeasible root, limits) publish nothing.
    if let Some(store) = &options.basis_store {
        if let Some(snap) = &publish_basis {
            store.publish(
                crate::basis_store::slot(options.basis_publish_key, model.num_vars()),
                Arc::clone(snap),
            );
        }
    }

    let root = Node {
        lb,
        ub,
        depth: 0,
        basis: root_basis,
    };

    // Integral columns ordered by descending branch priority (stable).
    let mut int_cols: Vec<usize> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, d)| d.kind.is_integral())
        .map(|(i, _)| i)
        .collect();
    int_cols.sort_by_key(|&i| std::cmp::Reverse(model.vars[i].branch_priority));

    let threads = options.threads.max(1);
    let trace = TraceCtx {
        tracer,
        model,
        c_offset,
    };
    let searched = if threads == 1 {
        solve_serial(
            model, options, started, &c, &rows, &int_cols, root, cutoff, &trace,
        )
    } else {
        solve_parallel(
            model, options, started, &c, &rows, &int_cols, root, cutoff, threads, &trace,
        )
    };
    let (incumbent, proven, mut stats) = match searched {
        Ok(result) => result,
        Err(err) => {
            // Root-LP failure: no search statistics exist, but SolveEnd
            // must still pair with the SolveStart above.
            tracer.emit(
                Phase::Solver,
                Event::SolveEnd {
                    nodes: 0,
                    simplex_iterations: 0,
                    proven: false,
                },
            );
            return Err(err);
        }
    };
    stats.elapsed = started.elapsed();
    stats.presolve_passes = counters.presolve_passes;
    stats.rows_tightened = counters.rows_tightened;
    stats.binaries_fixed = counters.binaries_fixed;
    stats.implications = counters.implications;
    stats.cuts_added = counters.cuts_added;
    stats.basis_tier = basis_tier;
    tracer.emit(
        Phase::Solver,
        Event::SolveEnd {
            nodes: stats.nodes,
            simplex_iterations: stats.simplex_iterations,
            proven,
        },
    );

    match incumbent {
        Some((values, min_obj)) => {
            let optimality = if proven {
                Optimality::Proven
            } else {
                Optimality::Limit
            };
            Ok(Solution::new(
                values,
                model.externalize_obj(min_obj + c_offset),
                optimality,
                stats,
            ))
        }
        None => {
            if proven {
                Err(SolveError::Infeasible)
            } else {
                Err(SolveError::LimitWithoutIncumbent)
            }
        }
    }
}

/// The branching variable and its LP value: highest priority first, ties
/// broken by closeness to one half. `None` means integer feasible.
fn branch_choice(
    model: &Model,
    int_cols: &[usize],
    x: &[f64],
    int_tol: f64,
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64, i32, f64)> = None; // (col, val, prio, frac-score)
    for &j in int_cols {
        let v = x[j];
        let frac = (v - v.round()).abs();
        if frac <= int_tol {
            continue;
        }
        let prio = model.vars[j].branch_priority;
        let score = 0.5 - (v.fract().abs() - 0.5).abs(); // closeness to .5
        let better = match best {
            None => true,
            Some((_, _, bp, bs)) => prio > bp || (prio == bp && score > bs),
        };
        if better {
            best = Some((j, v, prio, score));
        }
    }
    best.map(|(j, v, _, _)| (j, v))
}

/// Splits `node` on column `j` at LP value `v` into (down, up) children,
/// both warm-startable from the parent's optimal `basis`.
fn split(node: Node, j: usize, v: f64, basis: Option<Arc<BasisSnapshot>>) -> (Node, Node) {
    let mut down = Node {
        lb: node.lb.clone(),
        ub: node.ub.clone(),
        depth: node.depth + 1,
        basis: basis.clone(),
    };
    down.ub[j] = v.floor();
    let mut up = Node {
        lb: node.lb,
        ub: node.ub,
        depth: node.depth + 1,
        basis,
    };
    up.lb[j] = v.ceil();
    (down, up)
}

/// Tracing context shared by both search loops: the tracer plus what is
/// needed to report objectives in the model's external sense.
struct TraceCtx<'a> {
    tracer: &'a Tracer,
    model: &'a Model,
    c_offset: f64,
}

impl TraceCtx<'_> {
    /// Converts a minimization-form objective to the model's sense.
    fn external(&self, min_obj: f64) -> f64 {
        self.model.externalize_obj(min_obj + self.c_offset)
    }

    /// One `BnbNode` per claimed node, emitted *after* its LP solve so the
    /// warm/pivot/factorization fields are known; every outcome path emits
    /// exactly once.
    fn node(&self, depth: usize, info: &crate::simplex::LpInfo) {
        self.tracer.emit(
            Phase::Solver,
            Event::BnbNode {
                depth,
                warm: info.warm,
                pivots: info.pivots as u64,
                refactors: info.refactors as u64,
                etas: info.etas as u64,
            },
        );
    }

    fn root_lp(&self, min_obj: f64) {
        self.tracer.emit(
            Phase::Solver,
            Event::RootLp {
                objective: self.external(min_obj),
            },
        );
    }

    fn incumbent(&self, min_obj: f64) {
        self.tracer.emit(
            Phase::Solver,
            Event::Incumbent {
                objective: self.external(min_obj),
            },
        );
    }
}

/// The original deterministic dive-first DFS loop, unchanged in behavior.
#[allow(clippy::too_many_arguments)]
fn solve_serial(
    model: &Model,
    options: &SolveOptions,
    started: Instant,
    c: &[f64],
    rows: &[SparseRow],
    int_cols: &[usize],
    root: Node,
    cutoff: f64,
    trace: &TraceCtx,
) -> Result<SearchResult, SolveError> {
    let mut local = ThreadStats::default();
    let mut incumbent: Option<(Vec<f64>, f64)> = None; // (values, min-form obj)
                                                       // Pruning bound: starts at the externally injected cutoff (infinite when
                                                       // none) and tightens to each new incumbent. Exhausting the tree with a
                                                       // finite cutoff and no incumbent proves nothing better than the cutoff
                                                       // exists, which the epilogue reports as `Infeasible`.
    let mut bound = cutoff;
    let mut proven = true;
    // Absolute deadline handed to every LP so a single long relaxation
    // cannot overshoot the time limit (`None` if it overflows Instant).
    let deadline = started.checked_add(options.time_limit);
    let lp_cfg = lp_config(options, deadline, rows.len(), c.len());
    // One workspace for the whole serial solve: the dive child is popped
    // immediately after its parent, so its warm start is usually the hot
    // path (bound deltas applied to the still-loaded parent tableau).
    let mut ws = Workspace::new();

    let mut stack = vec![root];

    while let Some(node) = stack.pop() {
        if local.nodes >= options.node_limit
            || started.elapsed() >= options.time_limit
            || options.stop.is_set()
        {
            proven = false;
            break;
        }
        local.nodes += 1;

        let problem = LpProblem {
            ncols: model.num_vars(),
            rows,
            c,
            lb: &node.lb,
            ub: &node.ub,
        };
        let basis = if options.warm_start {
            node.basis.as_ref()
        } else {
            None
        };
        let (outcome, info) = ws.solve(&problem, basis, &lp_cfg);
        local.simplex_iterations += info.pivots;
        local.refactorizations += info.refactors;
        local.eta_updates += info.etas;
        if info.warm {
            local.warm_nodes += 1;
        } else {
            local.cold_nodes += 1;
        }
        trace.node(node.depth, &info);
        let (x, obj) = match outcome {
            LpOutcome::Optimal { x, obj } => {
                if node.depth == 0 {
                    trace.root_lp(obj);
                }
                (x, obj)
            }
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                if node.depth == 0 {
                    // Unbounded relaxation: the MILP is unbounded or
                    // infeasible; report unbounded, matching solver practice.
                    return Err(SolveError::Unbounded);
                }
                proven = false;
                continue;
            }
            LpOutcome::IterationLimit => {
                if node.depth == 0 {
                    return Err(SolveError::IterationLimit);
                }
                proven = false;
                continue;
            }
            // Deadline hit mid-LP: stop searching, exactly as if the
            // node-boundary time check had bound.
            LpOutcome::TimedOut => {
                proven = false;
                break;
            }
        };

        // Bound pruning against the incumbent or injected cutoff
        // (minimization form).
        if obj >= bound - options.absolute_gap - 1e-9 {
            continue;
        }

        match branch_choice(model, int_cols, &x, options.int_tol) {
            None => {
                // Integer feasible: snap integers exactly and record.
                let mut vals = x;
                for &j in int_cols {
                    vals[j] = vals[j].round();
                }
                if obj < bound - 1e-9 {
                    trace.incumbent(obj);
                    bound = obj;
                    incumbent = Some((vals, obj));
                }
            }
            Some((j, v)) => {
                let floor = v.floor();
                let snap = options.warm_start.then(|| ws.snapshot());
                let (down, up) = split(node, j, v, snap);
                // Dive toward the nearer integer: push the preferred child
                // last so the LIFO stack pops it first.
                if v - floor <= 0.5 {
                    stack.push(up);
                    stack.push(down);
                } else {
                    stack.push(down);
                    stack.push(up);
                }
            }
        }
    }

    let stats = SolveStats {
        nodes: local.nodes,
        simplex_iterations: local.simplex_iterations,
        warm_nodes: local.warm_nodes,
        cold_nodes: local.cold_nodes,
        refactorizations: local.refactorizations,
        eta_updates: local.eta_updates,
        elapsed: std::time::Duration::ZERO, // filled in by the caller
        threads: 1,
        per_thread: vec![local],
        ..SolveStats::default()
    };
    Ok((incumbent, proven, stats))
}

/// The node frontier plus the bookkeeping the termination protocol needs.
/// All three fields live under one mutex so "empty frontier" and "every
/// worker idle" are observed atomically together.
struct Frontier {
    stack: Vec<Node>,
    idle: usize,
    done: bool,
}

/// State shared by every worker of a parallel solve.
struct SharedSearch<'a> {
    model: &'a Model,
    rows: &'a [SparseRow],
    c: &'a [f64],
    int_cols: &'a [usize],
    options: &'a SolveOptions,
    started: Instant,
    /// Per-node LP tolerances, deadline, and warm-start pivot cap.
    lp_cfg: LpConfig,
    nworkers: usize,
    trace: &'a TraceCtx<'a>,
    frontier: Mutex<Frontier>,
    work_ready: Condvar,
    /// Best integer-feasible point found, in minimization form.
    incumbent: Mutex<Option<(Vec<f64>, f64)>>,
    /// `f64::to_bits` of the incumbent objective (the injected cutoff —
    /// `f64::INFINITY` by default — while no incumbent exists), so pruning
    /// can read the bound without a lock. Written only while `incumbent` is
    /// held, so stores never go backward.
    bound_bits: AtomicU64,
    /// Nodes claimed against `node_limit` across all workers.
    nodes: AtomicUsize,
    /// Cleared when a limit binds or a deep LP fails to resolve.
    proven: AtomicBool,
}

impl SharedSearch<'_> {
    /// Counts one node against the limits; `false` means a limit bound.
    fn claim_node(&self) -> bool {
        if self.started.elapsed() >= self.options.time_limit || self.options.stop.is_set() {
            return false;
        }
        self.nodes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.options.node_limit).then_some(n + 1)
            })
            .is_ok()
    }

    /// A limit bound: drop the proof claim and stop every worker.
    fn halt_limits(&self) {
        self.proven.store(false, Ordering::Relaxed);
        let mut f = self.frontier.lock().expect("frontier lock");
        f.done = true;
        self.work_ready.notify_all();
    }

    /// Lock-free read of the current incumbent objective bound.
    fn incumbent_bound(&self) -> f64 {
        f64::from_bits(self.bound_bits.load(Ordering::Relaxed))
    }

    /// Installs `vals` as the incumbent if it improves on the current bound
    /// (the best incumbent so far, or the injected cutoff before one exists).
    fn offer_incumbent(&self, vals: Vec<f64>, obj: f64) {
        let mut inc = self.incumbent.lock().expect("incumbent lock");
        // `bound_bits` is only written under this lock, so the read is
        // consistent with `inc`.
        if obj < self.incumbent_bound() - 1e-9 {
            self.bound_bits.store(obj.to_bits(), Ordering::Relaxed);
            // Emitted while the incumbent lock is held so sink order equals
            // improvement order: collected incumbent objectives are monotone
            // even with racing workers.
            self.trace.incumbent(obj);
            *inc = Some((vals, obj));
        }
    }

    /// Solves one node's relaxation and either records an incumbent or
    /// pushes the two children onto the shared frontier.
    fn process_node(&self, node: Node, stats: &mut ThreadStats, ws: &mut Workspace) {
        let options = self.options;
        let problem = LpProblem {
            ncols: self.model.num_vars(),
            rows: self.rows,
            c: self.c,
            lb: &node.lb,
            ub: &node.ub,
        };
        let basis = if options.warm_start {
            node.basis.as_ref()
        } else {
            None
        };
        let (outcome, info) = ws.solve(&problem, basis, &self.lp_cfg);
        stats.simplex_iterations += info.pivots;
        stats.refactorizations += info.refactors;
        stats.eta_updates += info.etas;
        if info.warm {
            stats.warm_nodes += 1;
        } else {
            stats.cold_nodes += 1;
        }
        self.trace.node(node.depth, &info);
        let (x, obj) = match outcome {
            LpOutcome::Optimal { x, obj } => (x, obj),
            LpOutcome::Infeasible => return,
            // Depth 0 runs on the calling thread before workers start, so
            // these are numerical trouble deep in the tree: abandon the
            // subtree without a proof claim, exactly like the serial path.
            LpOutcome::Unbounded | LpOutcome::IterationLimit => {
                self.proven.store(false, Ordering::Relaxed);
                return;
            }
            // Deadline hit mid-LP: the time limit bound, stop every worker.
            LpOutcome::TimedOut => {
                self.halt_limits();
                return;
            }
        };

        // Bound pruning against the shared incumbent (minimization form).
        if obj >= self.incumbent_bound() - options.absolute_gap - 1e-9 {
            return;
        }

        match branch_choice(self.model, self.int_cols, &x, options.int_tol) {
            None => {
                let mut vals = x;
                for &j in self.int_cols {
                    vals[j] = vals[j].round();
                }
                self.offer_incumbent(vals, obj);
            }
            Some((j, v)) => {
                let floor = v.floor();
                let snap = options.warm_start.then(|| ws.snapshot());
                let (down, up) = split(node, j, v, snap);
                let mut f = self.frontier.lock().expect("frontier lock");
                if f.done {
                    return; // halted while we were solving: drop the children
                }
                // Dive-first order: the preferred child goes on top.
                if v - floor <= 0.5 {
                    f.stack.push(up);
                    f.stack.push(down);
                } else {
                    f.stack.push(down);
                    f.stack.push(up);
                }
                self.work_ready.notify_all();
            }
        }
    }
}

/// One worker: pop, solve, branch, until the frontier drains or a limit
/// binds. Termination: a worker finding the frontier empty goes idle; the
/// last worker to go idle proves global exhaustion (nobody is processing a
/// node that could refill the frontier) and wakes everyone to exit.
fn worker(shared: &SharedSearch) -> ThreadStats {
    let mut stats = ThreadStats::default();
    let mut ws = Workspace::new();
    loop {
        let node = {
            let mut f = shared.frontier.lock().expect("frontier lock");
            loop {
                if f.done {
                    return stats;
                }
                if let Some(n) = f.stack.pop() {
                    break n;
                }
                f.idle += 1;
                if f.idle == shared.nworkers {
                    f.done = true;
                    shared.work_ready.notify_all();
                    return stats;
                }
                f = shared.work_ready.wait(f).expect("frontier lock");
                f.idle -= 1;
            }
        };
        if !shared.claim_node() {
            shared.halt_limits();
            return stats;
        }
        stats.nodes += 1;
        shared.process_node(node, &mut stats, &mut ws);
    }
}

/// Work-sharing parallel branch-and-bound on `threads` scoped workers.
#[allow(clippy::too_many_arguments)]
fn solve_parallel(
    model: &Model,
    options: &SolveOptions,
    started: Instant,
    c: &[f64],
    rows: &[SparseRow],
    int_cols: &[usize],
    root: Node,
    cutoff: f64,
    threads: usize,
    trace: &TraceCtx,
) -> Result<SearchResult, SolveError> {
    let shared = SharedSearch {
        model,
        rows,
        c,
        int_cols,
        options,
        started,
        lp_cfg: lp_config(
            options,
            started.checked_add(options.time_limit),
            rows.len(),
            c.len(),
        ),
        nworkers: threads,
        trace,
        frontier: Mutex::new(Frontier {
            stack: Vec::new(),
            idle: 0,
            done: false,
        }),
        work_ready: Condvar::new(),
        incumbent: Mutex::new(None),
        bound_bits: AtomicU64::new(cutoff.to_bits()),
        nodes: AtomicUsize::new(0),
        proven: AtomicBool::new(true),
    };

    // The root relaxation runs on the calling thread so that the depth-0
    // outcomes (unbounded, iteration limit, limits binding before any node)
    // surface exactly as in the serial solver.
    let mut root_stats = ThreadStats::default();
    if !shared.claim_node() {
        let stats = SolveStats {
            threads,
            per_thread: vec![ThreadStats::default(); threads],
            ..SolveStats::default()
        };
        return Ok((None, false, stats));
    }
    root_stats.nodes += 1;
    let problem = LpProblem {
        ncols: model.num_vars(),
        rows,
        c,
        lb: &root.lb,
        ub: &root.ub,
    };
    let mut root_ws = Workspace::new();
    let root_basis = if options.warm_start {
        root.basis.as_ref()
    } else {
        None
    };
    let (root_outcome, root_info) = root_ws.solve(&problem, root_basis, &shared.lp_cfg);
    root_stats.simplex_iterations += root_info.pivots;
    root_stats.refactorizations += root_info.refactors;
    root_stats.eta_updates += root_info.etas;
    if root_info.warm {
        root_stats.warm_nodes += 1;
    } else {
        root_stats.cold_nodes += 1;
    }
    trace.node(0, &root_info);
    match root_outcome {
        LpOutcome::Optimal { x, obj } => {
            trace.root_lp(obj);
            match branch_choice(model, int_cols, &x, options.int_tol) {
                None => {
                    let mut vals = x;
                    for &j in int_cols {
                        vals[j] = vals[j].round();
                    }
                    shared.offer_incumbent(vals, obj);
                }
                Some((j, v)) => {
                    let floor = v.floor();
                    let snap = options.warm_start.then(|| root_ws.snapshot());
                    let (down, up) = split(root, j, v, snap);
                    let mut f = shared.frontier.lock().expect("frontier lock");
                    if v - floor <= 0.5 {
                        f.stack.push(up);
                        f.stack.push(down);
                    } else {
                        f.stack.push(down);
                        f.stack.push(up);
                    }
                }
            }
        }
        // Root infeasible: the frontier stays empty and the epilogue
        // reports proven infeasibility, matching the serial path.
        LpOutcome::Infeasible => {}
        LpOutcome::Unbounded => return Err(SolveError::Unbounded),
        LpOutcome::IterationLimit => return Err(SolveError::IterationLimit),
        // Deadline hit inside the root LP: same shape as the limits binding
        // before the root node, minus the root work already spent.
        LpOutcome::TimedOut => {
            let mut per_thread = vec![ThreadStats::default(); threads];
            per_thread[0] = root_stats;
            let stats = SolveStats {
                nodes: shared.nodes.load(Ordering::Relaxed),
                simplex_iterations: root_stats.simplex_iterations,
                warm_nodes: root_stats.warm_nodes,
                cold_nodes: root_stats.cold_nodes,
                refactorizations: root_stats.refactorizations,
                eta_updates: root_stats.eta_updates,
                threads,
                per_thread,
                ..SolveStats::default()
            };
            return Ok((None, false, stats));
        }
    }

    let need_workers = !shared
        .frontier
        .lock()
        .expect("frontier lock")
        .stack
        .is_empty();
    let mut per_thread: Vec<ThreadStats> = if need_workers {
        thread::scope(|s| {
            let handles: Vec<_> = (0..threads).map(|_| s.spawn(|| worker(&shared))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("solver worker panicked"))
                .collect()
        })
    } else {
        vec![ThreadStats::default(); threads]
    };
    per_thread[0].nodes += root_stats.nodes;
    per_thread[0].simplex_iterations += root_stats.simplex_iterations;
    per_thread[0].warm_nodes += root_stats.warm_nodes;
    per_thread[0].cold_nodes += root_stats.cold_nodes;
    per_thread[0].refactorizations += root_stats.refactorizations;
    per_thread[0].eta_updates += root_stats.eta_updates;

    let proven = shared.proven.load(Ordering::Relaxed);
    let incumbent = shared.incumbent.into_inner().expect("incumbent lock");
    let stats = SolveStats {
        nodes: shared.nodes.load(Ordering::Relaxed),
        simplex_iterations: per_thread.iter().map(|t| t.simplex_iterations).sum(),
        warm_nodes: per_thread.iter().map(|t| t.warm_nodes).sum(),
        cold_nodes: per_thread.iter().map(|t| t.cold_nodes).sum(),
        refactorizations: per_thread.iter().map(|t| t.refactorizations).sum(),
        eta_updates: per_thread.iter().map(|t| t.eta_updates).sum(),
        elapsed: std::time::Duration::ZERO, // filled in by the caller
        threads,
        per_thread,
        ..SolveStats::default()
    };
    Ok((incumbent, proven, stats))
}

#[cfg(test)]
mod tests {
    use crate::{Model, Optimality, Sense, SolveError, SolveOptions};
    use std::time::Duration;

    fn serial() -> SolveOptions {
        SolveOptions::default().with_threads(1)
    }

    #[test]
    fn pure_lp_path() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_ge(x + y, 3.0);
        m.set_objective(2.0 * x + y);
        let s = m.solve_with(&serial()).unwrap();
        assert!((s.objective() - 3.0).abs() < 1e-7);
        assert_eq!(s.optimality(), Optimality::Proven);
        assert_eq!(s.stats().nodes, 1);
        assert_eq!(s.stats().threads, 1);
        assert_eq!(s.stats().per_thread.len(), 1);
        assert_eq!(s.stats().per_thread[0].nodes, 1);
    }

    #[test]
    fn pure_lp_path_parallel() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_ge(x + y, 3.0);
        m.set_objective(2.0 * x + y);
        let opts = SolveOptions::default().with_threads(4);
        let s = m.solve_with(&opts).unwrap();
        assert!((s.objective() - 3.0).abs() < 1e-7);
        assert_eq!(s.optimality(), Optimality::Proven);
        // The root is the only node; workers find an empty frontier.
        assert_eq!(s.stats().nodes, 1);
        assert_eq!(s.stats().threads, 4);
        assert_eq!(s.stats().per_thread.len(), 4);
        let total: usize = s.stats().per_thread.iter().map(|t| t.nodes).sum();
        assert_eq!(total, s.stats().nodes);
    }

    #[test]
    fn knapsack_optimum() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6 -> b + c = 20.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_le(3.0 * a + 4.0 * b + 2.0 * c, 6.0);
        m.set_objective(10.0 * a + 13.0 * b + 7.0 * c);
        let s = m.solve().unwrap();
        assert!((s.objective() - 20.0).abs() < 1e-6);
        assert_eq!(s.rounded(a), 0);
        assert_eq!(s.rounded(b), 1);
        assert_eq!(s.rounded(c), 1);
    }

    #[test]
    fn knapsack_optimum_parallel() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_le(3.0 * a + 4.0 * b + 2.0 * c, 6.0);
        m.set_objective(10.0 * a + 13.0 * b + 7.0 * c);
        let s = m
            .solve_with(&SolveOptions::default().with_threads(4))
            .unwrap();
        assert!((s.objective() - 20.0).abs() < 1e-6);
        assert_eq!(s.optimality(), Optimality::Proven);
        assert_eq!(s.rounded(a), 0);
        assert_eq!(s.rounded(b), 1);
        assert_eq!(s.rounded(c), 1);
    }

    #[test]
    fn integer_rounding_not_lp_rounding() {
        // Classic: max x, 2x <= 5, x integer -> 2 (LP gives 2.5).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_le(2.0 * x, 5.0);
        m.set_objective(LinExprOf(x));
        let s = m.solve().unwrap();
        assert_eq!(s.rounded(x), 2);
    }

    // helper because set_objective takes impl Into<LinExpr>
    #[allow(non_snake_case)]
    fn LinExprOf(v: crate::Var) -> crate::LinExpr {
        v + 0.0
    }

    #[test]
    fn infeasible_milp() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_ge(a + b, 3.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_reported() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(x + 0.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn unbounded_reported_parallel() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(x + 0.0);
        let opts = SolveOptions::default().with_threads(4);
        assert_eq!(m.solve_with(&opts).unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn node_limit_returns_incumbent_or_error() {
        // Root relaxation is fractional (2Σb <= 3), so one node cannot
        // complete the search: the limit must bind.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| m.add_binary(format!("b{i}"))).collect();
        let total: crate::LinExpr = vars.iter().map(|&v| 2.0 * v).sum();
        m.add_le(total.clone(), 3.0);
        m.set_objective(total);
        let opts = serial().with_node_limit(1);
        match m.solve_with(&opts) {
            Ok(s) => assert_eq!(s.optimality(), Optimality::Limit),
            Err(e) => assert_eq!(e, SolveError::LimitWithoutIncumbent),
        }
        // With a generous limit the same model solves to proven optimality.
        let s = m.solve().unwrap();
        assert_eq!(s.optimality(), Optimality::Proven);
        assert!((s.objective() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_binds_in_parallel() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| m.add_binary(format!("b{i}"))).collect();
        let total: crate::LinExpr = vars.iter().map(|&v| 2.0 * v).sum();
        m.add_le(total.clone(), 3.0);
        m.set_objective(total);
        let opts = SolveOptions::default().with_threads(4).with_node_limit(3);
        match m.solve_with(&opts) {
            Ok(s) => {
                assert_eq!(s.optimality(), Optimality::Limit);
                assert!(s.stats().nodes <= 3, "overshot: {}", s.stats().nodes);
            }
            Err(e) => assert_eq!(e, SolveError::LimitWithoutIncumbent),
        }
    }

    #[test]
    fn time_limit_zero_behaves() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        m.set_objective(a + 0.0);
        let opts = serial().with_time_limit(Duration::ZERO);
        assert_eq!(
            m.solve_with(&opts).unwrap_err(),
            SolveError::LimitWithoutIncumbent
        );
        let opts = SolveOptions::default()
            .with_threads(4)
            .with_time_limit(Duration::ZERO);
        assert_eq!(
            m.solve_with(&opts).unwrap_err(),
            SolveError::LimitWithoutIncumbent
        );
    }

    #[test]
    fn branch_priority_respected_and_still_optimal() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_branch_priority(a, -5);
        m.set_branch_priority(b, 10);
        m.add_le(1.0 * a + 1.0 * b, 1.0);
        m.set_objective(2.0 * a + 3.0 * b);
        let s = m.solve().unwrap();
        assert!((s.objective() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constrained_milp() {
        // min a + 2b + 3c with a + b + c = 2 (binaries) -> a=1, b=1: obj 3.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_eq(a + b + c, 2.0);
        m.set_objective(1.0 * a + 2.0 * b + 3.0 * c);
        let s = m.solve().unwrap();
        assert!((s.objective() - 3.0).abs() < 1e-6);
        assert_eq!(s.rounded(c), 0);
    }

    #[test]
    fn disjunctive_big_m_interval_placement() {
        // Two unit intervals on [0, 2] must not overlap: the 1-D core of the
        // paper's non-overlap constraints, one binary selecting the order.
        let big = 10.0;
        let mut m = Model::new(Sense::Minimize);
        let x1 = m.add_continuous("x1", 0.0, 1.0);
        let x2 = m.add_continuous("x2", 0.0, 1.0);
        let p = m.add_binary("p");
        // x1 + 1 <= x2 + M p   and   x2 + 1 <= x1 + M (1 - p)
        m.add_le(x1 + 1.0 - x2 - big * p, 0.0);
        m.add_le(x2 + 1.0 - x1 - big * (1.0 - p), 0.0);
        // Minimize the right edge: span y >= xi + 1.
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_ge(y - x1, 1.0);
        m.add_ge(y - x2, 1.0);
        m.set_objective(y + 0.0);
        let s = m.solve().unwrap();
        assert!((s.objective() - 2.0).abs() < 1e-6);
        let (a, b) = (s.value(x1), s.value(x2));
        assert!((a - b).abs() >= 1.0 - 1e-6, "intervals overlap: {a} {b}");
    }

    #[test]
    fn objective_constant_offset_preserved() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 1.0, 5.0);
        m.set_objective(x + 100.0);
        let s = m.solve().unwrap();
        assert!((s.objective() - 101.0).abs() < 1e-7);
    }

    #[test]
    fn gap_accepts_near_optimal() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8).map(|i| m.add_binary(format!("b{i}"))).collect();
        let total: crate::LinExpr = vars.iter().map(|&v| 1.0 * v).sum();
        m.add_le(total.clone(), 4.0);
        m.set_objective(total);
        let opts = SolveOptions::default().with_absolute_gap(1.5);
        let s = m.solve_with(&opts).unwrap();
        // Within 1.5 of the optimum 4.
        assert!(s.objective() >= 2.5 - 1e-6);
    }

    #[test]
    fn parallel_infeasible_is_proven() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        // Fractionally satisfiable but integrally infeasible so presolve
        // cannot shortcut: the tree itself must prove infeasibility.
        m.add_eq(2.0 * a + 2.0 * b, 3.0);
        m.set_objective(a + b);
        let opts = SolveOptions::default().with_threads(4);
        assert_eq!(m.solve_with(&opts).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn warm_cold_counts_partition_nodes() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..10).map(|i| m.add_binary(format!("b{i}"))).collect();
        let weight: crate::LinExpr = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (2.0 + (i % 4) as f64) * v)
            .sum();
        m.add_le(weight, 11.0);
        let value: crate::LinExpr = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (3.0 + (i % 5) as f64) * v)
            .sum();
        m.set_objective(value);

        let warm = m.solve_with(&serial()).unwrap();
        let ws = warm.stats();
        assert_eq!(ws.warm_nodes + ws.cold_nodes, ws.nodes);
        assert!(ws.warm_nodes > 0, "a branching solve should warm-start");

        // Without the strengthening cut loop there is no recovered root
        // basis, so the root relaxation must solve cold.
        let nostr = m.solve_with(&serial().with_strengthen(false)).unwrap();
        let ns = nostr.stats();
        assert_eq!(ns.warm_nodes + ns.cold_nodes, ns.nodes);
        assert!(ns.cold_nodes >= 1, "without root cuts the root solves cold");

        let cold = m.solve_with(&serial().with_warm_start(false)).unwrap();
        let cs = cold.stats();
        assert_eq!(cs.warm_nodes, 0);
        assert_eq!(cs.cold_nodes, cs.nodes);
        assert!((warm.objective() - cold.objective()).abs() < 1e-9);
    }

    #[test]
    fn per_thread_stats_sum_to_totals() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..14).map(|i| m.add_binary(format!("b{i}"))).collect();
        let weight: crate::LinExpr = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (3.0 + (i % 5) as f64) * v)
            .sum();
        m.add_le(weight, 17.0);
        let value: crate::LinExpr = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (4.0 + (i % 7) as f64) * v)
            .sum();
        m.set_objective(value);
        let s = m
            .solve_with(&SolveOptions::default().with_threads(3))
            .unwrap();
        let stats = s.stats();
        assert_eq!(stats.threads, 3);
        assert_eq!(stats.per_thread.len(), 3);
        assert_eq!(
            stats.per_thread.iter().map(|t| t.nodes).sum::<usize>(),
            stats.nodes
        );
        assert_eq!(
            stats
                .per_thread
                .iter()
                .map(|t| t.simplex_iterations)
                .sum::<usize>(),
            stats.simplex_iterations
        );
    }

    /// Minimization covering knapsack used by the cutoff tests: enough
    /// binaries that the tree is nontrivial, so pruning is observable.
    fn covering_knapsack() -> Model {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..10).map(|i| m.add_binary(format!("b{i}"))).collect();
        let cover: crate::LinExpr = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (3.0 + (i % 5) as f64) * v)
            .sum();
        m.add_ge(cover, 17.0);
        let cost: crate::LinExpr = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (4.0 + (i % 7) as f64) * v)
            .sum();
        m.set_objective(cost);
        m
    }

    #[test]
    fn initial_upper_bound_prunes_and_never_returns_worse() {
        let baseline = covering_knapsack().solve_with(&serial()).unwrap();
        let opt = baseline.objective();
        assert_eq!(baseline.optimality(), Optimality::Proven);

        // A bound strictly above the optimum: same answer, and the injected
        // cutoff can only prune (the dive order is identical), so the tree
        // is no larger than the baseline's.
        let loose = covering_knapsack()
            .solve_with(&serial().with_initial_upper_bound(opt + 0.5))
            .unwrap();
        assert!((loose.objective() - opt).abs() < 1e-7);
        assert_eq!(loose.optimality(), Optimality::Proven);
        assert!(loose.stats().nodes <= baseline.stats().nodes);

        // A bound at the optimum: the solver must strictly beat it, so it
        // proves no acceptable solution exists rather than returning one
        // that merely ties.
        let tied = covering_knapsack().solve_with(&serial().with_initial_upper_bound(opt));
        assert!(matches!(tied, Err(SolveError::Infeasible)));

        // A bound below the optimum: likewise never returns anything worse
        // than the bound.
        let below = covering_knapsack().solve_with(&serial().with_initial_upper_bound(opt - 1.0));
        assert!(matches!(below, Err(SolveError::Infeasible)));
    }

    #[test]
    fn initial_upper_bound_maximize_sense() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6 -> optimum 20 (b + c).
        let build = || {
            let mut m = Model::new(Sense::Maximize);
            let a = m.add_binary("a");
            let b = m.add_binary("b");
            let c = m.add_binary("c");
            m.add_le(3.0 * a + 4.0 * b + 2.0 * c, 6.0);
            m.set_objective(10.0 * a + 13.0 * b + 7.0 * c);
            m
        };
        // For Maximize the "upper bound" is an objective value to beat from
        // below externally: a known solution of value 19 must not stop the
        // solver from finding 20...
        let s = build()
            .solve_with(&serial().with_initial_upper_bound(19.0))
            .unwrap();
        assert!((s.objective() - 20.0).abs() < 1e-7);
        // ...and a known solution of value 20 proves nothing better exists.
        let tied = build().solve_with(&serial().with_initial_upper_bound(20.0));
        assert!(matches!(tied, Err(SolveError::Infeasible)));
    }

    #[test]
    fn initial_upper_bound_parallel_matches_serial() {
        let baseline = covering_knapsack().solve_with(&serial()).unwrap();
        let opt = baseline.objective();
        let opts = SolveOptions::default()
            .with_threads(3)
            .with_initial_upper_bound(opt + 0.5);
        let s = covering_knapsack().solve_with(&opts).unwrap();
        assert!((s.objective() - opt).abs() < 1e-7);
        assert_eq!(s.optimality(), Optimality::Proven);
        let tied = covering_knapsack().solve_with(
            &SolveOptions::default()
                .with_threads(3)
                .with_initial_upper_bound(opt),
        );
        assert!(matches!(tied, Err(SolveError::Infeasible)));
    }

    #[test]
    fn pre_triggered_stop_flag_halts_search() {
        let stop = crate::StopFlag::new();
        stop.trigger();
        // Serial: the stop binds before the first node, like a zero limit.
        let s = covering_knapsack().solve_with(&serial().with_stop(stop.clone()));
        assert!(matches!(s, Err(SolveError::LimitWithoutIncumbent)));
        // Parallel: claim_node refuses, same shape as limits binding early.
        let p = covering_knapsack()
            .solve_with(&SolveOptions::default().with_threads(3).with_stop(stop));
        assert!(matches!(p, Err(SolveError::LimitWithoutIncumbent)));
    }

    #[test]
    fn basis_store_cross_solve_hot_reuse() {
        use crate::{BasisStore, BasisTier};
        use std::sync::Arc;

        let store = Arc::new(BasisStore::new(8));
        let key = 0xfeed_beef_u64;
        let opts = serial().with_basis_store(Arc::clone(&store), key, key);

        // First solve: store is empty, so the root LP is cold; the cut-free
        // baseline basis is published under (key, num_vars).
        let cold = covering_knapsack().solve_with(&opts).unwrap();
        assert_eq!(cold.stats().basis_tier, BasisTier::Cold);
        assert!(!store.is_empty(), "first solve publishes its root basis");

        // Second solve of the identical model: same column and row space, so
        // the stored basis loads hot and the answer is unchanged.
        let hot = covering_knapsack().solve_with(&opts).unwrap();
        assert_eq!(hot.stats().basis_tier, BasisTier::Hot);
        assert!((hot.objective() - cold.objective()).abs() < 1e-9);
        assert_eq!(hot.optimality(), Optimality::Proven);
        let (hits, _, published) = store.stats();
        assert!(hits >= 1);
        assert!(published >= 2, "both solves publish");
    }

    #[test]
    fn basis_store_mismatched_key_stays_cold() {
        use crate::{BasisStore, BasisTier};
        use std::sync::Arc;

        let store = Arc::new(BasisStore::new(8));
        let first = serial().with_basis_store(Arc::clone(&store), 1, 1);
        covering_knapsack().solve_with(&first).unwrap();
        // Loading under a different key misses; the solve stays cold and
        // still reaches the same proven optimum.
        let second = serial().with_basis_store(Arc::clone(&store), 2, 2);
        let s = covering_knapsack().solve_with(&second).unwrap();
        assert_eq!(s.stats().basis_tier, BasisTier::Cold);
        assert_eq!(s.optimality(), Optimality::Proven);
    }

    #[test]
    fn basis_store_warm_start_off_ignores_store() {
        use crate::{BasisStore, BasisTier};
        use std::sync::Arc;

        let store = Arc::new(BasisStore::new(8));
        let opts = serial().with_basis_store(Arc::clone(&store), 5, 5);
        covering_knapsack().solve_with(&opts).unwrap();
        let no_warm = opts.clone().with_warm_start(false);
        let s = covering_knapsack().solve_with(&no_warm).unwrap();
        assert_eq!(s.stats().basis_tier, BasisTier::Cold);
    }
}
