//! Variable handles and kinds.

use std::fmt;

/// An opaque handle to a decision variable of a [`Model`](crate::Model).
///
/// Handles are cheap to copy and are only meaningful for the model that
/// created them. They index [`Solution::value`](crate::Solution::value).
///
/// ```
/// use fp_milp::{Model, Sense};
/// let mut m = Model::new(Sense::Minimize);
/// let x = m.add_continuous("x", 0.0, 10.0);
/// assert_eq!(x.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The column index of this variable within its model (creation order).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The domain of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VarKind {
    /// Real-valued within its bounds.
    #[default]
    Continuous,
    /// Integer-valued 0 or 1 (the paper's `x_ij`, `y_ij`, `z_i` variables).
    Binary,
    /// General integer within its bounds.
    Integer,
}

impl VarKind {
    /// Whether a variable of this kind must take an integral value.
    #[must_use]
    pub fn is_integral(self) -> bool {
        !matches!(self, VarKind::Continuous)
    }
}

/// Full definition of one column: bounds, kind and diagnostic name.
#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub kind: VarKind,
    /// Larger values are branched on first; ties broken by fractionality.
    pub branch_priority: i32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_integrality() {
        assert!(!VarKind::Continuous.is_integral());
        assert!(VarKind::Binary.is_integral());
        assert!(VarKind::Integer.is_integral());
    }

    #[test]
    fn var_display_and_index() {
        let v = Var(7);
        assert_eq!(v.index(), 7);
        assert_eq!(v.to_string(), "v7");
    }

    #[test]
    fn default_kind_is_continuous() {
        assert_eq!(VarKind::default(), VarKind::Continuous);
    }
}
