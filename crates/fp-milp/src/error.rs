//! Solver error types.

use std::error::Error;
use std::fmt;

/// Reasons a [`Model::solve`](crate::Model::solve) call can fail to produce a
/// solution.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// A node, iteration or time limit was reached before any integer-feasible
    /// incumbent was found. (If an incumbent exists, `solve` returns it with
    /// [`Optimality::Limit`](crate::Optimality::Limit) instead.)
    LimitWithoutIncumbent,
    /// The simplex exceeded its iteration safety cap — typically a sign of a
    /// badly scaled model.
    IterationLimit,
    /// The model is structurally invalid (e.g. a variable with `lb > ub`, or a
    /// non-finite coefficient). The payload describes the defect.
    InvalidModel(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "model is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::LimitWithoutIncumbent => {
                write!(
                    f,
                    "search limit reached before any feasible integer solution"
                )
            }
            SolveError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            SolveError::InvalidModel(why) => write!(f, "invalid model: {why}"),
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(SolveError::Infeasible.to_string(), "model is infeasible");
        assert!(SolveError::InvalidModel("lb > ub".into())
            .to_string()
            .contains("lb > ub"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolveError>();
    }
}
