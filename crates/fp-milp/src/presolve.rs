//! Root presolve: bound tightening and redundant-row elimination.
//!
//! Run once before branch-and-bound. Three classic, safe reductions:
//!
//! 1. **Singleton rows** (`a·x ⋄ b` with one term) become variable bounds
//!    and are dropped.
//! 2. **Activity bounds**: a row whose worst-case activity already
//!    satisfies it is redundant and dropped; one whose best-case activity
//!    violates it proves infeasibility.
//! 3. **Implied bounds**: each variable's bound is tightened against every
//!    row's residual activity; integral variables then round their bounds
//!    inward.
//!
//! Passes repeat until a fixpoint (capped), since each tightening can
//! enable more.

use crate::model::Cmp;
use crate::simplex::SparseRow;

/// Outcome of presolving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PresolveStatus {
    /// Continue with the reduced problem.
    Reduced,
    /// The constraint system is infeasible.
    Infeasible,
}

/// Result: tightened bounds plus the subset of rows still needed.
#[derive(Debug, Clone)]
pub(crate) struct Presolved {
    pub status: PresolveStatus,
    /// Indices into the original row set that must be kept.
    pub kept_rows: Vec<usize>,
    pub lb: Vec<f64>,
    pub ub: Vec<f64>,
}

const MAX_PASSES: usize = 4;

/// Presolves the system. `integral[j]` marks variables whose bounds may be
/// rounded inward.
pub(crate) fn presolve(
    rows: &[SparseRow],
    mut lb: Vec<f64>,
    mut ub: Vec<f64>,
    integral: &[bool],
    feas_tol: f64,
) -> Presolved {
    let mut alive: Vec<bool> = rows.iter().map(|(terms, _, _)| !terms.is_empty()).collect();

    // Empty rows are pure feasibility checks.
    for (terms, cmp, rhs) in rows {
        if terms.is_empty() {
            let ok = match cmp {
                Cmp::Le => 0.0 <= rhs + feas_tol,
                Cmp::Ge => 0.0 >= rhs - feas_tol,
                Cmp::Eq => rhs.abs() <= feas_tol,
            };
            if !ok {
                return infeasible(lb, ub);
            }
        }
    }

    for _ in 0..MAX_PASSES {
        let mut changed = false;

        for (r, (terms, cmp, rhs)) in rows.iter().enumerate() {
            if !alive[r] {
                continue;
            }

            // Singleton rows fold into bounds and die.
            if terms.len() == 1 {
                let (j, a) = terms[0];
                if a.abs() > 1e-12 {
                    let v = rhs / a;
                    let (new_lb, new_ub) = match (cmp, a > 0.0) {
                        (Cmp::Le, true) | (Cmp::Ge, false) => (f64::NEG_INFINITY, v),
                        (Cmp::Le, false) | (Cmp::Ge, true) => (v, f64::INFINITY),
                        (Cmp::Eq, _) => (v, v),
                    };
                    if new_lb > lb[j] + 1e-12 {
                        lb[j] = new_lb;
                        changed = true;
                    }
                    if new_ub < ub[j] - 1e-12 {
                        ub[j] = new_ub;
                        changed = true;
                    }
                    alive[r] = false;
                    continue;
                }
            }

            // Activity bounds.
            let mut min_act = 0.0_f64;
            let mut max_act = 0.0_f64;
            let mut finite = true;
            for &(j, a) in terms {
                let (lo, hi) = if a >= 0.0 {
                    (a * lb[j], a * ub[j])
                } else {
                    (a * ub[j], a * lb[j])
                };
                min_act += lo;
                max_act += hi;
                if !lo.is_finite() || !hi.is_finite() {
                    finite = false;
                }
            }

            match cmp {
                Cmp::Le => {
                    if (finite || min_act.is_finite())
                        && min_act > rhs + feas_tol.max(1e-9) * (1.0 + rhs.abs())
                    {
                        return infeasible(lb, ub);
                    }
                    if max_act.is_finite() && max_act <= rhs + 1e-12 {
                        alive[r] = false; // redundant
                        changed = true;
                        continue;
                    }
                    // Implied bounds: a_j x_j <= rhs - (min_act - own min).
                    if min_act.is_finite() {
                        for &(j, a) in terms {
                            let own_min = if a >= 0.0 { a * lb[j] } else { a * ub[j] };
                            let slack = rhs - (min_act - own_min);
                            if a > 1e-12 {
                                let implied = slack / a;
                                if implied < ub[j] - 1e-9 {
                                    ub[j] = implied;
                                    changed = true;
                                }
                            } else if a < -1e-12 {
                                let implied = slack / a;
                                if implied > lb[j] + 1e-9 {
                                    lb[j] = implied;
                                    changed = true;
                                }
                            }
                        }
                    }
                }
                Cmp::Ge => {
                    if max_act.is_finite() && max_act < rhs - feas_tol.max(1e-9) * (1.0 + rhs.abs())
                    {
                        return infeasible(lb, ub);
                    }
                    if min_act.is_finite() && min_act >= rhs - 1e-12 {
                        alive[r] = false;
                        changed = true;
                        continue;
                    }
                    if max_act.is_finite() {
                        for &(j, a) in terms {
                            let own_max = if a >= 0.0 { a * ub[j] } else { a * lb[j] };
                            let slack = rhs - (max_act - own_max);
                            if a > 1e-12 {
                                let implied = slack / a;
                                if implied > lb[j] + 1e-9 {
                                    lb[j] = implied;
                                    changed = true;
                                }
                            } else if a < -1e-12 {
                                let implied = slack / a;
                                if implied < ub[j] - 1e-9 {
                                    ub[j] = implied;
                                    changed = true;
                                }
                            }
                        }
                    }
                }
                Cmp::Eq => {
                    // Treat as both <= and >= for feasibility only (bound
                    // tightening through equalities is left to the LP).
                    if min_act.is_finite() && min_act > rhs + feas_tol * (1.0 + rhs.abs()) {
                        return infeasible(lb, ub);
                    }
                    if max_act.is_finite() && max_act < rhs - feas_tol * (1.0 + rhs.abs()) {
                        return infeasible(lb, ub);
                    }
                }
            }
        }

        // Integral rounding + bound sanity.
        for j in 0..lb.len() {
            if integral[j] {
                let rl = lb[j].ceil();
                let ru = ub[j].floor();
                if rl > lb[j] + 1e-9 {
                    // Guard against float fuzz pushing past a true integer.
                    lb[j] = if (lb[j] - lb[j].round()).abs() <= 1e-9 {
                        lb[j].round()
                    } else {
                        rl
                    };
                    changed = true;
                }
                if ru < ub[j] - 1e-9 {
                    ub[j] = if (ub[j] - ub[j].round()).abs() <= 1e-9 {
                        ub[j].round()
                    } else {
                        ru
                    };
                    changed = true;
                }
            }
            if lb[j] > ub[j] + feas_tol {
                return infeasible(lb, ub);
            }
        }

        if !changed {
            break;
        }
    }

    Presolved {
        status: PresolveStatus::Reduced,
        kept_rows: alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(r, _)| r)
            .collect(),
        lb,
        ub,
    }
}

fn infeasible(lb: Vec<f64>, ub: Vec<f64>) -> Presolved {
    Presolved {
        status: PresolveStatus::Infeasible,
        kept_rows: Vec::new(),
        lb,
        ub,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(terms: Vec<(usize, f64)>, rhs: f64) -> SparseRow {
        (terms, Cmp::Le, rhs)
    }
    fn ge(terms: Vec<(usize, f64)>, rhs: f64) -> SparseRow {
        (terms, Cmp::Ge, rhs)
    }

    #[test]
    fn singleton_rows_become_bounds() {
        let rows = vec![le(vec![(0, 2.0)], 10.0), ge(vec![(1, 1.0)], 3.0)];
        let p = presolve(
            &rows,
            vec![0.0, 0.0],
            vec![100.0, 100.0],
            &[false, false],
            1e-7,
        );
        assert_eq!(p.status, PresolveStatus::Reduced);
        assert!(p.kept_rows.is_empty());
        assert_eq!(p.ub[0], 5.0);
        assert_eq!(p.lb[1], 3.0);
    }

    #[test]
    fn redundant_rows_dropped() {
        // x + y <= 100 with x,y in [0,10] can never bind.
        let rows = vec![le(vec![(0, 1.0), (1, 1.0)], 100.0)];
        let p = presolve(&rows, vec![0.0; 2], vec![10.0; 2], &[false; 2], 1e-7);
        assert!(p.kept_rows.is_empty());
    }

    #[test]
    fn infeasibility_detected() {
        // x + y >= 50 with x,y in [0,10].
        let rows = vec![ge(vec![(0, 1.0), (1, 1.0)], 50.0)];
        let p = presolve(&rows, vec![0.0; 2], vec![10.0; 2], &[false; 2], 1e-7);
        assert_eq!(p.status, PresolveStatus::Infeasible);
        // Crossed bounds after singleton folding also infeasible.
        let rows = vec![le(vec![(0, 1.0)], 1.0), ge(vec![(0, 1.0)], 2.0)];
        let p = presolve(&rows, vec![0.0], vec![10.0], &[false], 1e-7);
        assert_eq!(p.status, PresolveStatus::Infeasible);
    }

    #[test]
    fn implied_bounds_tighten() {
        // 2x + y <= 10, y >= 0 => x <= 5; y <= 10.
        let rows = vec![le(vec![(0, 2.0), (1, 1.0)], 10.0)];
        let p = presolve(
            &rows,
            vec![0.0, 0.0],
            vec![f64::INFINITY, f64::INFINITY],
            &[false, false],
            1e-7,
        );
        assert_eq!(p.status, PresolveStatus::Reduced);
        assert!((p.ub[0] - 5.0).abs() < 1e-9);
        assert!((p.ub[1] - 10.0).abs() < 1e-9);
        // Row stays (it can still bind).
        assert_eq!(p.kept_rows, vec![0]);
    }

    #[test]
    fn integral_bounds_round_inward() {
        // 2x <= 5 with x integer -> x <= 2.
        let rows = vec![le(vec![(0, 2.0)], 5.0)];
        let p = presolve(&rows, vec![0.0], vec![10.0], &[true], 1e-7);
        assert_eq!(p.ub[0], 2.0);
    }

    #[test]
    fn ge_implied_bounds() {
        // x + y >= 8 with y <= 3 implies x >= 5.
        let rows = vec![ge(vec![(0, 1.0), (1, 1.0)], 8.0)];
        let p = presolve(&rows, vec![0.0, 0.0], vec![10.0, 3.0], &[false; 2], 1e-7);
        assert!((p.lb[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_row_feasibility() {
        let rows = vec![(vec![], Cmp::Le, -1.0)];
        let p = presolve(&rows, vec![], vec![], &[], 1e-7);
        assert_eq!(p.status, PresolveStatus::Infeasible);
        let rows = vec![(vec![], Cmp::Le, 1.0)];
        let p = presolve(&rows, vec![], vec![], &[], 1e-7);
        assert_eq!(p.status, PresolveStatus::Reduced);
    }

    #[test]
    fn negative_coefficients() {
        // -x <= -4  =>  x >= 4 (singleton with negative coefficient).
        let rows = vec![le(vec![(0, -1.0)], -4.0)];
        let p = presolve(&rows, vec![0.0], vec![10.0], &[false], 1e-7);
        assert_eq!(p.lb[0], 4.0);
        assert!(p.kept_rows.is_empty());
    }

    #[test]
    fn chained_tightening_across_passes() {
        // x <= 3 (singleton), then y <= x implies y <= 3 on the next pass.
        let rows = vec![le(vec![(0, 1.0)], 3.0), le(vec![(1, 1.0), (0, -1.0)], 0.0)];
        let p = presolve(
            &rows,
            vec![0.0, 0.0],
            vec![100.0, 100.0],
            &[false, false],
            1e-7,
        );
        assert!((p.ub[0] - 3.0).abs() < 1e-9);
        assert!((p.ub[1] - 3.0).abs() < 1e-9);
    }
}
