//! Root presolve: bound tightening and redundant-row elimination.
//!
//! Run once before branch-and-bound. Three classic, safe reductions:
//!
//! 1. **Singleton rows** (`a·x ⋄ b` with one term) become variable bounds
//!    and are dropped.
//! 2. **Activity bounds**: a row whose worst-case activity already
//!    satisfies it is redundant and dropped; one whose best-case activity
//!    violates it proves infeasibility.
//! 3. **Implied bounds**: each variable's bound is tightened against every
//!    row's residual activity; integral variables then round their bounds
//!    inward.
//!
//! Passes repeat until a fixpoint (capped), since each tightening can
//! enable more.

use crate::model::Cmp;
use crate::simplex::SparseRow;
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of presolving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PresolveStatus {
    /// Continue with the reduced problem.
    Reduced,
    /// The constraint system is infeasible.
    Infeasible,
}

/// Result: tightened bounds plus the subset of rows still needed.
#[derive(Debug, Clone)]
pub(crate) struct Presolved {
    pub status: PresolveStatus,
    /// Indices into the original row set that must be kept.
    pub kept_rows: Vec<usize>,
    pub lb: Vec<f64>,
    pub ub: Vec<f64>,
    /// Fixpoint passes actually run (1..=max_passes).
    pub passes: usize,
}

/// Presolves the system. `integral[j]` marks variables whose bounds may be
/// rounded inward. `max_passes` caps the fixpoint loop (values below one
/// are treated as one); the number of passes actually run is reported in
/// [`Presolved::passes`].
pub(crate) fn presolve(
    rows: &[SparseRow],
    mut lb: Vec<f64>,
    mut ub: Vec<f64>,
    integral: &[bool],
    feas_tol: f64,
    max_passes: usize,
) -> Presolved {
    let mut alive: Vec<bool> = rows.iter().map(|(terms, _, _)| !terms.is_empty()).collect();

    // Empty rows are pure feasibility checks.
    for (terms, cmp, rhs) in rows {
        if terms.is_empty() {
            let ok = match cmp {
                Cmp::Le => 0.0 <= rhs + feas_tol,
                Cmp::Ge => 0.0 >= rhs - feas_tol,
                Cmp::Eq => rhs.abs() <= feas_tol,
            };
            if !ok {
                return infeasible(lb, ub);
            }
        }
    }

    let mut passes = 0;
    for _ in 0..max_passes.max(1) {
        passes += 1;
        let mut changed = false;

        for (r, (terms, cmp, rhs)) in rows.iter().enumerate() {
            if !alive[r] {
                continue;
            }

            // Singleton rows fold into bounds and die.
            if terms.len() == 1 {
                let (j, a) = terms[0];
                if a.abs() > 1e-12 {
                    let v = rhs / a;
                    let (new_lb, new_ub) = match (cmp, a > 0.0) {
                        (Cmp::Le, true) | (Cmp::Ge, false) => (f64::NEG_INFINITY, v),
                        (Cmp::Le, false) | (Cmp::Ge, true) => (v, f64::INFINITY),
                        (Cmp::Eq, _) => (v, v),
                    };
                    if new_lb > lb[j] + 1e-12 {
                        lb[j] = new_lb;
                        changed = true;
                    }
                    if new_ub < ub[j] - 1e-12 {
                        ub[j] = new_ub;
                        changed = true;
                    }
                    alive[r] = false;
                    continue;
                }
            }

            // Activity bounds.
            let mut min_act = 0.0_f64;
            let mut max_act = 0.0_f64;
            let mut finite = true;
            for &(j, a) in terms {
                let (lo, hi) = if a >= 0.0 {
                    (a * lb[j], a * ub[j])
                } else {
                    (a * ub[j], a * lb[j])
                };
                min_act += lo;
                max_act += hi;
                if !lo.is_finite() || !hi.is_finite() {
                    finite = false;
                }
            }

            match cmp {
                Cmp::Le => {
                    if (finite || min_act.is_finite())
                        && min_act > rhs + feas_tol.max(1e-9) * (1.0 + rhs.abs())
                    {
                        return infeasible(lb, ub);
                    }
                    if max_act.is_finite() && max_act <= rhs + 1e-12 {
                        alive[r] = false; // redundant
                        changed = true;
                        continue;
                    }
                    // Implied bounds: a_j x_j <= rhs - (min_act - own min).
                    if min_act.is_finite() {
                        for &(j, a) in terms {
                            let own_min = if a >= 0.0 { a * lb[j] } else { a * ub[j] };
                            let slack = rhs - (min_act - own_min);
                            if a > 1e-12 {
                                let implied = slack / a;
                                if implied < ub[j] - 1e-9 {
                                    ub[j] = implied;
                                    changed = true;
                                }
                            } else if a < -1e-12 {
                                let implied = slack / a;
                                if implied > lb[j] + 1e-9 {
                                    lb[j] = implied;
                                    changed = true;
                                }
                            }
                        }
                    }
                }
                Cmp::Ge => {
                    if max_act.is_finite() && max_act < rhs - feas_tol.max(1e-9) * (1.0 + rhs.abs())
                    {
                        return infeasible(lb, ub);
                    }
                    if min_act.is_finite() && min_act >= rhs - 1e-12 {
                        alive[r] = false;
                        changed = true;
                        continue;
                    }
                    if max_act.is_finite() {
                        for &(j, a) in terms {
                            let own_max = if a >= 0.0 { a * ub[j] } else { a * lb[j] };
                            let slack = rhs - (max_act - own_max);
                            if a > 1e-12 {
                                let implied = slack / a;
                                if implied > lb[j] + 1e-9 {
                                    lb[j] = implied;
                                    changed = true;
                                }
                            } else if a < -1e-12 {
                                let implied = slack / a;
                                if implied < ub[j] - 1e-9 {
                                    ub[j] = implied;
                                    changed = true;
                                }
                            }
                        }
                    }
                }
                Cmp::Eq => {
                    // Treat as both <= and >= for feasibility only (bound
                    // tightening through equalities is left to the LP).
                    if min_act.is_finite() && min_act > rhs + feas_tol * (1.0 + rhs.abs()) {
                        return infeasible(lb, ub);
                    }
                    if max_act.is_finite() && max_act < rhs - feas_tol * (1.0 + rhs.abs()) {
                        return infeasible(lb, ub);
                    }
                }
            }
        }

        // Integral rounding + bound sanity.
        for j in 0..lb.len() {
            if integral[j] {
                let rl = lb[j].ceil();
                let ru = ub[j].floor();
                if rl > lb[j] + 1e-9 {
                    // Guard against float fuzz pushing past a true integer.
                    lb[j] = if (lb[j] - lb[j].round()).abs() <= 1e-9 {
                        lb[j].round()
                    } else {
                        rl
                    };
                    changed = true;
                }
                if ru < ub[j] - 1e-9 {
                    ub[j] = if (ub[j] - ub[j].round()).abs() <= 1e-9 {
                        ub[j].round()
                    } else {
                        ru
                    };
                    changed = true;
                }
            }
            if lb[j] > ub[j] + feas_tol {
                return infeasible(lb, ub);
            }
        }

        if !changed {
            break;
        }
    }

    Presolved {
        status: PresolveStatus::Reduced,
        kept_rows: alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(r, _)| r)
            .collect(),
        lb,
        ub,
        passes,
    }
}

fn infeasible(lb: Vec<f64>, ub: Vec<f64>) -> Presolved {
    Presolved {
        status: PresolveStatus::Infeasible,
        kept_rows: Vec::new(),
        lb,
        ub,
        passes: 0,
    }
}

// ---------------------------------------------------------------------------
// Model strengthening: big-M coefficient tightening, 0-1 probing, and the
// root cutting planes separated from what probing learned.
//
// Everything here preserves the set of integer-feasible points exactly —
// reductions may cut LP-relaxation points (that is the goal) but never an
// assignment where every integral variable takes an integer value within
// its original bounds and every original row holds.
// ---------------------------------------------------------------------------

/// Bound-propagation passes used inside each tentative probe.
const PROBE_PASSES: usize = 3;
/// Bound implications harvested per probe (memory cap; the strongest cuts
/// come from the first few row-mates anyway).
const HARVEST_CAP: usize = 8;

/// Which side of a variable's range a probing implication tightens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum BoundKind {
    /// The implication raises the variable's lower bound.
    Lower,
    /// The implication lowers the variable's upper bound.
    Upper,
}

/// A logical edge harvested by probing: `bin = val` forces `other = forced`.
/// Infeasible probe vertices are recorded in the same shape (`(vp, vq)`
/// infeasible ⇔ `p = vp ⇒ q = !vq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Implication {
    pub bin: usize,
    pub val: bool,
    pub other: usize,
    pub forced: bool,
}

/// `bin = val` implies `var`'s `kind` bound improves to `bound`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct BoundImpl {
    pub bin: usize,
    pub val: bool,
    pub var: usize,
    pub kind: BoundKind,
    pub bound: f64,
}

/// `(p, q) = (vp, vq)` implies `var`'s `kind` bound improves to `bound` —
/// the two-binary analogue of [`BoundImpl`], harvested from pair probing on
/// the floorplan disjunction shape (rows with exactly two binaries).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PairImpl {
    pub p: usize,
    pub q: usize,
    pub vp: bool,
    pub vq: bool,
    pub var: usize,
    pub kind: BoundKind,
    pub bound: f64,
}

/// What [`strengthen`] learned, feeding both `SolveStats` counters and the
/// root [`CutSeparator`].
#[derive(Debug, Default)]
pub(crate) struct Strengthened {
    /// Rows whose binary coefficients were tightened at least once.
    pub rows_tightened: usize,
    /// Binaries fixed because one probe value propagated to a contradiction.
    pub binaries_fixed: usize,
    /// Binary-to-binary implications (single probes + infeasible pair
    /// vertices), deduplicated.
    pub implications: Vec<Implication>,
    /// Single-binary continuous-bound implications.
    pub bound_impls: Vec<BoundImpl>,
    /// Pair-vertex continuous-bound implications.
    pub pair_impls: Vec<PairImpl>,
}

/// Activity-based bound propagation to a fixpoint (capped at `max_passes`):
/// implied bounds from every row's residual activity, integral rounding,
/// and crossed-bound detection. Unlike [`presolve`] it never drops rows, so
/// it is safe to run on tentative (probing) bound vectors. Returns `false`
/// when the bounds prove the system infeasible.
pub(crate) fn propagate(
    rows: &[SparseRow],
    lb: &mut [f64],
    ub: &mut [f64],
    integral: &[bool],
    feas_tol: f64,
    max_passes: usize,
) -> bool {
    for _ in 0..max_passes.max(1) {
        let mut changed = false;
        for (terms, cmp, rhs) in rows {
            // An equality propagates as both inequalities.
            let as_le = matches!(cmp, Cmp::Le | Cmp::Eq);
            let as_ge = matches!(cmp, Cmp::Ge | Cmp::Eq);
            let mut min_act = 0.0_f64;
            let mut max_act = 0.0_f64;
            for &(j, a) in terms {
                let (lo, hi) = if a >= 0.0 {
                    (a * lb[j], a * ub[j])
                } else {
                    (a * ub[j], a * lb[j])
                };
                min_act += lo;
                max_act += hi;
            }
            let tol = feas_tol.max(1e-9) * (1.0 + rhs.abs());
            if as_le && min_act.is_finite() {
                if min_act > rhs + tol {
                    return false;
                }
                for &(j, a) in terms {
                    let own_min = if a >= 0.0 { a * lb[j] } else { a * ub[j] };
                    let slack = rhs - (min_act - own_min);
                    if a > 1e-12 {
                        let implied = slack / a;
                        if implied < ub[j] - 1e-9 {
                            ub[j] = implied;
                            changed = true;
                        }
                    } else if a < -1e-12 {
                        let implied = slack / a;
                        if implied > lb[j] + 1e-9 {
                            lb[j] = implied;
                            changed = true;
                        }
                    }
                }
            }
            if as_ge && max_act.is_finite() {
                if max_act < rhs - tol {
                    return false;
                }
                for &(j, a) in terms {
                    let own_max = if a >= 0.0 { a * ub[j] } else { a * lb[j] };
                    let slack = rhs - (max_act - own_max);
                    if a > 1e-12 {
                        let implied = slack / a;
                        if implied > lb[j] + 1e-9 {
                            lb[j] = implied;
                            changed = true;
                        }
                    } else if a < -1e-12 {
                        let implied = slack / a;
                        if implied < ub[j] - 1e-9 {
                            ub[j] = implied;
                            changed = true;
                        }
                    }
                }
            }
        }
        for j in 0..lb.len() {
            if integral[j] {
                let rl = lb[j].ceil();
                let ru = ub[j].floor();
                if rl > lb[j] + 1e-9 {
                    lb[j] = if (lb[j] - lb[j].round()).abs() <= 1e-9 {
                        lb[j].round()
                    } else {
                        rl
                    };
                    changed = true;
                }
                if ru < ub[j] - 1e-9 {
                    ub[j] = if (ub[j] - ub[j].round()).abs() <= 1e-9 {
                        ub[j].round()
                    } else {
                        ru
                    };
                    changed = true;
                }
            }
            if lb[j] > ub[j] + feas_tol {
                return false;
            }
        }
        if !changed {
            break;
        }
    }
    true
}

/// A free (unfixed) 0-1 column under the current bounds.
fn is_binary(j: usize, lb: &[f64], ub: &[f64], integral: &[bool]) -> bool {
    integral[j] && lb[j] == 0.0 && ub[j] == 1.0
}

/// Tightens the binary coefficients of one `<=` row.
///
/// For a binary `y` with coefficient `a > 0` in `f(x) + a·y <= b`: with
/// `U = max f` over the current box, if `d = b - U` is strictly between `0`
/// and `a` the `y = 0` branch has slack `d`, and `f + (a-d)·y <= b - d`
/// keeps both integer branches exactly (`y=0`: `f <= U`, always true;
/// `y=1`: `f <= b - a`, unchanged) while shrinking the LP relaxation.
///
/// For `a < 0`: the `y = 1` branch relaxes to `f <= b - a`; if `U < b - a`
/// the coefficient lifts to `a' = b - U > a` (`y=1` becomes `f <= U`,
/// always true; `y=0` unchanged). Returns whether anything changed.
fn tighten_le(
    terms: &mut [(usize, f64)],
    rhs: &mut f64,
    lb: &[f64],
    ub: &[f64],
    integral: &[bool],
) -> bool {
    let mut hit = false;
    // Each tightening changes the row activity, so recompute and re-scan;
    // the process provably stalls (a tightened coefficient's slack becomes
    // zero), the cap is belt-and-braces against float drift.
    for _ in 0..16 {
        let mut max_act = 0.0_f64;
        for &(j, a) in terms.iter() {
            max_act += if a >= 0.0 { a * ub[j] } else { a * lb[j] };
        }
        if !max_act.is_finite() {
            return hit;
        }
        let mut changed = false;
        for t in terms.iter_mut() {
            let (j, a) = (t.0, t.1);
            if a.abs() <= 1e-12 || !is_binary(j, lb, ub, integral) {
                continue;
            }
            let tol = 1e-9 * (1.0 + rhs.abs().max(a.abs()));
            if a > 0.0 {
                let rest = max_act - a; // y = 0 branch activity bound
                let delta = *rhs - rest;
                if delta > tol && delta < a - tol {
                    t.1 = a - delta;
                    *rhs -= delta;
                    changed = true;
                    hit = true;
                    break;
                }
            } else {
                let lifted = *rhs - max_act; // y's own max contribution is 0
                if lifted > a + tol {
                    t.1 = lifted;
                    changed = true;
                    hit = true;
                    break;
                }
            }
        }
        if !changed {
            return hit;
        }
    }
    hit
}

/// One coefficient-tightening sweep over every inequality row, marking the
/// rows it changed in `hit`. `>=` rows tighten through negation to `<=`
/// form; equalities have no slack branch and are skipped.
fn tighten_sweep(
    rows: &mut [SparseRow],
    lb: &[f64],
    ub: &[f64],
    integral: &[bool],
    hit: &mut [bool],
) {
    for (r, (terms, cmp, rhs)) in rows.iter_mut().enumerate() {
        let changed = match cmp {
            Cmp::Le => tighten_le(terms, rhs, lb, ub, integral),
            Cmp::Ge => {
                for t in terms.iter_mut() {
                    t.1 = -t.1;
                }
                *rhs = -*rhs;
                let changed = tighten_le(terms, rhs, lb, ub, integral);
                for t in terms.iter_mut() {
                    t.1 = -t.1;
                }
                *rhs = -*rhs;
                changed
            }
            Cmp::Eq => false,
        };
        if changed {
            hit[r] = true;
        }
    }
}

/// Runs the root model-strengthening pipeline in place: coefficient
/// tightening interleaved with propagation, then single-binary probing,
/// then pair probing on the two-binary disjunction rows, then a final
/// tighten/propagate sweep over whatever the probes fixed. `probe_budget`
/// is spent in propagation runs (2 per single probe, 4 per pair probe).
/// `Err(())` means the system was proven integer-infeasible.
pub(crate) fn strengthen(
    rows: &mut [SparseRow],
    lb: &mut [f64],
    ub: &mut [f64],
    integral: &[bool],
    feas_tol: f64,
    probe_budget: usize,
) -> Result<Strengthened, ()> {
    let mut out = Strengthened::default();
    let mut hit = vec![false; rows.len()];

    // Stage 1: tighten + propagate. Two rounds: propagation after the first
    // sweep can expose further coefficient slack.
    for _ in 0..2 {
        tighten_sweep(rows, lb, ub, integral, &mut hit);
        if !propagate(rows, lb, ub, integral, feas_tol, PROBE_PASSES) {
            return Err(());
        }
    }

    // Row membership per variable, for neighbor harvesting.
    let n = lb.len();
    let mut var_rows: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (r, (terms, _, _)) in rows.iter().enumerate() {
        for &(j, _) in terms.iter() {
            var_rows[j].push(r);
        }
    }
    let mut implications: BTreeSet<Implication> = BTreeSet::new();
    let mut budget = probe_budget;
    let mut fixed_any = false;

    // Stage 2: single-binary probing.
    let binaries: Vec<usize> = (0..n).filter(|&j| is_binary(j, lb, ub, integral)).collect();
    for &j in &binaries {
        if budget < 2 {
            break;
        }
        if lb[j] == ub[j] {
            continue; // fixed by an earlier probe
        }
        budget -= 2;
        let probe = |val: f64| -> Option<(Vec<f64>, Vec<f64>)> {
            let mut plb = lb.to_vec();
            let mut pub_ = ub.to_vec();
            plb[j] = val;
            pub_[j] = val;
            propagate(rows, &mut plb, &mut pub_, integral, feas_tol, PROBE_PASSES)
                .then_some((plb, pub_))
        };
        match (probe(0.0), probe(1.0)) {
            (None, None) => return Err(()),
            (None, Some(_)) => {
                lb[j] = 1.0;
                ub[j] = 1.0;
                out.binaries_fixed += 1;
                fixed_any = true;
            }
            (Some(_), None) => {
                lb[j] = 0.0;
                ub[j] = 0.0;
                out.binaries_fixed += 1;
                fixed_any = true;
            }
            (Some(zero), Some(one)) => {
                for (val, (plb, pub_)) in [(false, zero), (true, one)] {
                    harvest_single(
                        j,
                        val,
                        &plb,
                        &pub_,
                        lb,
                        ub,
                        integral,
                        &var_rows,
                        rows,
                        &mut implications,
                        &mut out.bound_impls,
                    );
                }
            }
        }
    }

    // Stage 3: pair probing on rows with exactly two free binaries — the
    // non-overlap disjunction shape. Each infeasible vertex is an
    // implication; each feasible vertex donates bound implications over the
    // variables the pair's rows share.
    let mut pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (terms, _, _) in rows.iter() {
        let mut bins = terms
            .iter()
            .map(|&(j, _)| j)
            .filter(|&j| is_binary(j, lb, ub, integral));
        if let (Some(a), Some(b), None) = (bins.next(), bins.next(), bins.next()) {
            if a != b {
                pairs.insert((a.min(b), a.max(b)));
            }
        }
    }
    for &(p, q) in &pairs {
        if budget < 4 {
            break;
        }
        if lb[p] == ub[p] || lb[q] == ub[q] {
            continue;
        }
        budget -= 4;
        let vertices = [(false, false), (false, true), (true, false), (true, true)];
        let mut feas: [Option<(Vec<f64>, Vec<f64>)>; 4] = [None, None, None, None];
        for (k, &(vp, vq)) in vertices.iter().enumerate() {
            let mut plb = lb.to_vec();
            let mut pub_ = ub.to_vec();
            plb[p] = f64::from(u8::from(vp));
            pub_[p] = plb[p];
            plb[q] = f64::from(u8::from(vq));
            pub_[q] = plb[q];
            if propagate(rows, &mut plb, &mut pub_, integral, feas_tol, PROBE_PASSES) {
                feas[k] = Some((plb, pub_));
            } else {
                implications.insert(Implication {
                    bin: p,
                    val: vp,
                    other: q,
                    forced: !vq,
                });
            }
        }
        let alive: Vec<usize> = (0..4).filter(|&k| feas[k].is_some()).collect();
        match alive.len() {
            0 => return Err(()),
            1 => {
                let (vp, vq) = vertices[alive[0]];
                lb[p] = f64::from(u8::from(vp));
                ub[p] = lb[p];
                lb[q] = f64::from(u8::from(vq));
                ub[q] = lb[q];
                out.binaries_fixed += 2;
                fixed_any = true;
                continue;
            }
            2 => {
                // Both survivors sharing a coordinate value fix that binary.
                let (a, b) = (vertices[alive[0]], vertices[alive[1]]);
                if a.0 == b.0 {
                    lb[p] = f64::from(u8::from(a.0));
                    ub[p] = lb[p];
                    out.binaries_fixed += 1;
                    fixed_any = true;
                }
                if a.1 == b.1 {
                    lb[q] = f64::from(u8::from(a.1));
                    ub[q] = lb[q];
                    out.binaries_fixed += 1;
                    fixed_any = true;
                }
            }
            _ => {}
        }
        // Variables appearing in a row together with both p and q.
        let mut shared: BTreeSet<usize> = BTreeSet::new();
        for &r in &var_rows[p] {
            let (terms, _, _) = &rows[r];
            if terms.iter().any(|&(j, _)| j == q) {
                shared.extend(terms.iter().map(|&(j, _)| j));
            }
        }
        shared.remove(&p);
        shared.remove(&q);
        let mut harvested = 0usize;
        for (k, &(vp, vq)) in vertices.iter().enumerate() {
            let Some((plb, pub_)) = &feas[k] else {
                continue;
            };
            for &v in &shared {
                if harvested >= HARVEST_CAP {
                    break;
                }
                let tol = 1e-7 * (1.0 + lb[v].abs().min(ub[v].abs()));
                if plb[v] > lb[v] + tol && plb[v].is_finite() {
                    out.pair_impls.push(PairImpl {
                        p,
                        q,
                        vp,
                        vq,
                        var: v,
                        kind: BoundKind::Lower,
                        bound: plb[v],
                    });
                    harvested += 1;
                }
                if harvested >= HARVEST_CAP {
                    break;
                }
                if pub_[v] < ub[v] - tol && pub_[v].is_finite() {
                    out.pair_impls.push(PairImpl {
                        p,
                        q,
                        vp,
                        vq,
                        var: v,
                        kind: BoundKind::Upper,
                        bound: pub_[v],
                    });
                    harvested += 1;
                }
            }
        }
    }

    // Probing fixings enable another propagate + tighten round.
    if fixed_any {
        if !propagate(rows, lb, ub, integral, feas_tol, PROBE_PASSES) {
            return Err(());
        }
        tighten_sweep(rows, lb, ub, integral, &mut hit);
    }

    out.rows_tightened = hit.iter().filter(|&&h| h).count();
    out.implications = implications.into_iter().collect();
    Ok(out)
}

/// Harvests what a feasible single probe (`bin = val`) learned, comparing
/// the propagated bounds of `bin`'s row-mates against the global ones.
#[allow(clippy::too_many_arguments)]
fn harvest_single(
    bin: usize,
    val: bool,
    plb: &[f64],
    pub_: &[f64],
    lb: &[f64],
    ub: &[f64],
    integral: &[bool],
    var_rows: &[Vec<usize>],
    rows: &[SparseRow],
    implications: &mut BTreeSet<Implication>,
    bound_impls: &mut Vec<BoundImpl>,
) {
    let mut neighbors: BTreeSet<usize> = BTreeSet::new();
    for &r in &var_rows[bin] {
        neighbors.extend(rows[r].0.iter().map(|&(j, _)| j));
    }
    neighbors.remove(&bin);
    let mut harvested = 0usize;
    for &v in &neighbors {
        if harvested >= HARVEST_CAP {
            break;
        }
        if is_binary(v, lb, ub, integral) {
            if plb[v] == pub_[v] {
                implications.insert(Implication {
                    bin,
                    val,
                    other: v,
                    forced: plb[v] > 0.5,
                });
                harvested += 1;
            }
            continue;
        }
        let tol = 1e-7 * (1.0 + lb[v].abs().min(ub[v].abs()));
        if plb[v] > lb[v] + tol && plb[v].is_finite() {
            bound_impls.push(BoundImpl {
                bin,
                val,
                var: v,
                kind: BoundKind::Lower,
                bound: plb[v],
            });
            harvested += 1;
        }
        if harvested < HARVEST_CAP && pub_[v] < ub[v] - tol && pub_[v].is_finite() {
            bound_impls.push(BoundImpl {
                bin,
                val,
                var: v,
                kind: BoundKind::Upper,
                bound: pub_[v],
            });
            harvested += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Root cut separation.
// ---------------------------------------------------------------------------

/// A normal form for `<=` rows used to deduplicate cuts against the rows
/// already in the model (and against each other): sorted `(column,
/// coefficient-bits)` terms plus the rhs bits.
type RowKey = (Vec<(usize, u64)>, u64);

fn row_key(terms: &[(usize, f64)], rhs: f64) -> RowKey {
    let mut t: Vec<(usize, u64)> = terms.iter().map(|&(j, a)| (j, a.to_bits())).collect();
    t.sort_unstable();
    (t, rhs.to_bits())
}

/// Cut violation threshold: a candidate must beat the row by this much at
/// the LP point to be worth a round.
const CUT_VIOLATION: f64 = 1e-6;

/// Separates root cutting planes from what [`strengthen`] learned plus the
/// `<=`-rows themselves. All cuts are `<=` rows valid for every
/// integer-feasible point, so appending them before the tree starts changes
/// relaxation bounds, never answers.
pub(crate) struct CutSeparator {
    implications: Vec<Implication>,
    bound_impls: Vec<BoundImpl>,
    pair_impls: Vec<PairImpl>,
    /// Conflict edges `(p, q)` meaning `p + q <= 1`, and the adjacency the
    /// greedy clique extension walks.
    conflicts: BTreeSet<(usize, usize)>,
    adjacent: BTreeMap<usize, BTreeSet<usize>>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Free-binary mask at separation time.
    bin: Vec<bool>,
    seen: BTreeSet<RowKey>,
}

impl CutSeparator {
    /// Builds a separator over the strengthened system. Every existing row
    /// is registered so no duplicate of it can be emitted as a cut.
    pub(crate) fn new(
        st: &Strengthened,
        rows: &[SparseRow],
        lb: &[f64],
        ub: &[f64],
        integral: &[bool],
    ) -> Self {
        let mut seen = BTreeSet::new();
        for (terms, cmp, rhs) in rows {
            let neg: Vec<(usize, f64)> = terms.iter().map(|&(j, a)| (j, -a)).collect();
            match cmp {
                Cmp::Le => {
                    seen.insert(row_key(terms, *rhs));
                }
                Cmp::Ge => {
                    seen.insert(row_key(&neg, -*rhs));
                }
                Cmp::Eq => {
                    seen.insert(row_key(terms, *rhs));
                    seen.insert(row_key(&neg, -*rhs));
                }
            }
        }
        let mut conflicts = BTreeSet::new();
        let mut adjacent: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for imp in &st.implications {
            // `p=1 ⇒ q=0` is the "not both" edge feeding clique cuts.
            if imp.val && !imp.forced {
                let (a, b) = (imp.bin.min(imp.other), imp.bin.max(imp.other));
                conflicts.insert((a, b));
                adjacent.entry(a).or_default().insert(b);
                adjacent.entry(b).or_default().insert(a);
            }
        }
        CutSeparator {
            implications: st.implications.clone(),
            bound_impls: st.bound_impls.clone(),
            pair_impls: st.pair_impls.clone(),
            conflicts,
            adjacent,
            lb: lb.to_vec(),
            ub: ub.to_vec(),
            bin: (0..lb.len())
                .map(|j| is_binary(j, lb, ub, integral))
                .collect(),
            seen,
        }
    }

    /// Appends `(terms, <=, rhs)` unless it duplicates a known row. Returns
    /// `false` once `max` cuts have been collected.
    fn push(
        &mut self,
        cuts: &mut Vec<SparseRow>,
        terms: Vec<(usize, f64)>,
        rhs: f64,
        max: usize,
    ) -> bool {
        if cuts.len() >= max {
            return false;
        }
        if self.seen.insert(row_key(&terms, rhs)) {
            cuts.push((terms, Cmp::Le, rhs));
        }
        true
    }

    /// Implication logic cuts — valid independent of any LP point, so they
    /// are added once, unconditionally, before the first separation round.
    pub(crate) fn logic_cuts(&mut self, max: usize) -> Vec<SparseRow> {
        let mut cuts = Vec::new();
        for imp in self.implications.clone() {
            let (p, q) = (imp.bin, imp.other);
            let (terms, rhs) = match (imp.val, imp.forced) {
                (true, false) => (vec![(p, 1.0), (q, 1.0)], 1.0), // p+q <= 1
                (true, true) => (vec![(p, 1.0), (q, -1.0)], 0.0), // p <= q
                (false, true) => (vec![(p, -1.0), (q, -1.0)], -1.0), // p+q >= 1
                (false, false) => (vec![(p, -1.0), (q, 1.0)], 0.0), // q <= p
            };
            if !self.push(&mut cuts, terms, rhs, max) {
                break;
            }
        }
        cuts
    }

    /// Cuts violated by the LP point `x`, at most `max` of them.
    pub(crate) fn separate(&mut self, x: &[f64], rows: &[SparseRow], max: usize) -> Vec<SparseRow> {
        let mut cuts = Vec::new();
        self.implied_bound_cuts(x, &mut cuts, max);
        self.pair_bound_cuts(x, &mut cuts, max);
        self.clique_cuts(x, &mut cuts, max);
        self.cover_cuts(x, rows, &mut cuts, max);
        cuts
    }

    /// Single-binary implied-bound cuts: `bin=val ⇒ x ⋄ bound` linearized
    /// over the binary so the relaxation feels the implication fractionally.
    fn implied_bound_cuts(&mut self, x: &[f64], cuts: &mut Vec<SparseRow>, max: usize) {
        for bi in self.bound_impls.clone() {
            let (b, v) = (bi.bin, bi.var);
            let (terms, rhs) = match bi.kind {
                BoundKind::Lower => {
                    let l = self.lb[v];
                    if !l.is_finite() {
                        continue;
                    }
                    let g = bi.bound - l;
                    if g <= 1e-9 {
                        continue;
                    }
                    if bi.val {
                        (vec![(v, -1.0), (b, g)], -l)
                    } else {
                        (vec![(v, -1.0), (b, -g)], -bi.bound)
                    }
                }
                BoundKind::Upper => {
                    let u = self.ub[v];
                    if !u.is_finite() {
                        continue;
                    }
                    let g = u - bi.bound;
                    if g <= 1e-9 {
                        continue;
                    }
                    if bi.val {
                        (vec![(v, 1.0), (b, g)], u)
                    } else {
                        (vec![(v, 1.0), (b, -g)], bi.bound)
                    }
                }
            };
            if violated(&terms, rhs, x) && !self.push(cuts, terms, rhs, max) {
                return;
            }
        }
    }

    /// Pair-vertex implied-bound cuts. With `φ = c0 + sp·p + sq·q` (1 at
    /// the probed vertex, 0 at adjacent vertices, -1 opposite), a lower
    /// implication `x >= bound` at the vertex linearizes to
    /// `x >= lb + (bound-lb)·φ`, which holds at all four vertices and cuts
    /// fractional `(p, q)` points — the tightened-disjunction inequality
    /// for the floorplan non-overlap rows.
    fn pair_bound_cuts(&mut self, x: &[f64], cuts: &mut Vec<SparseRow>, max: usize) {
        for pi in self.pair_impls.clone() {
            let sp = if pi.vp { 1.0 } else { -1.0 };
            let sq = if pi.vq { 1.0 } else { -1.0 };
            let c0 = f64::from(u8::from(!pi.vp)) + f64::from(u8::from(!pi.vq)) - 1.0;
            let v = pi.var;
            let (terms, rhs) = match pi.kind {
                BoundKind::Lower => {
                    let l = self.lb[v];
                    if !l.is_finite() {
                        continue;
                    }
                    let g = pi.bound - l;
                    if g <= 1e-9 {
                        continue;
                    }
                    (vec![(v, -1.0), (pi.p, g * sp), (pi.q, g * sq)], -l - g * c0)
                }
                BoundKind::Upper => {
                    let u = self.ub[v];
                    if !u.is_finite() {
                        continue;
                    }
                    let g = u - pi.bound;
                    if g <= 1e-9 {
                        continue;
                    }
                    (vec![(v, 1.0), (pi.p, g * sp), (pi.q, g * sq)], u - g * c0)
                }
            };
            if violated(&terms, rhs, x) && !self.push(cuts, terms, rhs, max) {
                return;
            }
        }
    }

    /// Clique cuts from the conflict graph: each violated "not both" edge
    /// is greedily extended to a maximal clique (largest LP value first),
    /// giving `Σ clique <= 1`.
    fn clique_cuts(&mut self, x: &[f64], cuts: &mut Vec<SparseRow>, max: usize) {
        for (p, q) in self.conflicts.clone() {
            if x[p] + x[q] <= 1.0 + CUT_VIOLATION {
                continue;
            }
            let mut clique = vec![p, q];
            loop {
                let mut best: Option<usize> = None;
                for (&cand, neigh) in &self.adjacent {
                    if clique.contains(&cand) || !self.bin[cand] {
                        continue;
                    }
                    if clique.iter().all(|m| neigh.contains(m))
                        && best.is_none_or(|b| x[cand] > x[b] + 1e-12)
                    {
                        best = Some(cand);
                    }
                }
                match best {
                    Some(c) => clique.push(c),
                    None => break,
                }
            }
            clique.sort_unstable();
            let lhs: f64 = clique.iter().map(|&j| x[j]).sum();
            if lhs > 1.0 + CUT_VIOLATION {
                let terms: Vec<(usize, f64)> = clique.iter().map(|&j| (j, 1.0)).collect();
                if !self.push(cuts, terms, 1.0, max) {
                    return;
                }
            }
        }
    }

    /// Knapsack cover cuts from each `<=` row's binary support: complement
    /// negative coefficients, absorb the continuous part's worst case into
    /// the capacity, greedily build a violated minimal cover `C`, and emit
    /// `Σ_{j∈C} x'_j <= |C| - 1` back in original variables.
    fn cover_cuts(&mut self, x: &[f64], rows: &[SparseRow], cuts: &mut Vec<SparseRow>, max: usize) {
        for (terms, cmp, rhs) in rows {
            if *cmp != Cmp::Le {
                continue;
            }
            let mut cap = *rhs;
            // (column, weight, complemented LP value, complemented?)
            let mut items: Vec<(usize, f64, f64, bool)> = Vec::new();
            let mut finite = true;
            for &(j, a) in terms {
                if self.bin[j] && a.abs() > 1e-9 {
                    if a > 0.0 {
                        items.push((j, a, x[j], false));
                    } else {
                        cap -= a; // substitute x = 1 - x'
                        items.push((j, -a, 1.0 - x[j], true));
                    }
                } else {
                    let mn = if a >= 0.0 {
                        a * self.lb[j]
                    } else {
                        a * self.ub[j]
                    };
                    if !mn.is_finite() {
                        finite = false;
                        break;
                    }
                    cap -= mn;
                }
            }
            if !finite || items.len() < 2 || cap < -1e-9 {
                continue;
            }
            let total: f64 = items.iter().map(|i| i.1).sum();
            if total <= cap + 1e-9 {
                continue; // no cover exists
            }
            items.sort_by(|a, b| {
                b.2.partial_cmp(&a.2)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            let mut cover: Vec<(usize, f64, f64, bool)> = Vec::new();
            let mut w = 0.0;
            for it in &items {
                cover.push(*it);
                w += it.1;
                if w > cap + 1e-9 {
                    break;
                }
            }
            if w <= cap + 1e-9 {
                continue;
            }
            // Minimalize from the weakest member up.
            let mut i = cover.len();
            while i > 0 {
                i -= 1;
                if w - cover[i].1 > cap + 1e-9 {
                    w -= cover[i].1;
                    cover.remove(i);
                }
            }
            let lhs: f64 = cover.iter().map(|it| it.2).sum();
            if lhs <= cover.len() as f64 - 1.0 + CUT_VIOLATION {
                continue;
            }
            let ncompl = cover.iter().filter(|it| it.3).count();
            let mut terms: Vec<(usize, f64)> = cover
                .iter()
                .map(|it| (it.0, if it.3 { -1.0 } else { 1.0 }))
                .collect();
            terms.sort_unstable_by_key(|t| t.0);
            let rhs = cover.len() as f64 - 1.0 - ncompl as f64;
            if !self.push(cuts, terms, rhs, max) {
                return;
            }
        }
    }
}

/// Whether the `<=` cut is violated at `x` beyond [`CUT_VIOLATION`].
fn violated(terms: &[(usize, f64)], rhs: f64, x: &[f64]) -> bool {
    let act: f64 = terms.iter().map(|&(j, a)| a * x[j]).sum();
    act > rhs + CUT_VIOLATION
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(terms: Vec<(usize, f64)>, rhs: f64) -> SparseRow {
        (terms, Cmp::Le, rhs)
    }
    fn ge(terms: Vec<(usize, f64)>, rhs: f64) -> SparseRow {
        (terms, Cmp::Ge, rhs)
    }

    #[test]
    fn singleton_rows_become_bounds() {
        let rows = vec![le(vec![(0, 2.0)], 10.0), ge(vec![(1, 1.0)], 3.0)];
        let p = presolve(
            &rows,
            vec![0.0, 0.0],
            vec![100.0, 100.0],
            &[false, false],
            1e-7,
            4,
        );
        assert_eq!(p.status, PresolveStatus::Reduced);
        assert!(p.kept_rows.is_empty());
        assert_eq!(p.ub[0], 5.0);
        assert_eq!(p.lb[1], 3.0);
    }

    #[test]
    fn redundant_rows_dropped() {
        // x + y <= 100 with x,y in [0,10] can never bind.
        let rows = vec![le(vec![(0, 1.0), (1, 1.0)], 100.0)];
        let p = presolve(&rows, vec![0.0; 2], vec![10.0; 2], &[false; 2], 1e-7, 4);
        assert!(p.kept_rows.is_empty());
    }

    #[test]
    fn infeasibility_detected() {
        // x + y >= 50 with x,y in [0,10].
        let rows = vec![ge(vec![(0, 1.0), (1, 1.0)], 50.0)];
        let p = presolve(&rows, vec![0.0; 2], vec![10.0; 2], &[false; 2], 1e-7, 4);
        assert_eq!(p.status, PresolveStatus::Infeasible);
        // Crossed bounds after singleton folding also infeasible.
        let rows = vec![le(vec![(0, 1.0)], 1.0), ge(vec![(0, 1.0)], 2.0)];
        let p = presolve(&rows, vec![0.0], vec![10.0], &[false], 1e-7, 4);
        assert_eq!(p.status, PresolveStatus::Infeasible);
    }

    #[test]
    fn implied_bounds_tighten() {
        // 2x + y <= 10, y >= 0 => x <= 5; y <= 10.
        let rows = vec![le(vec![(0, 2.0), (1, 1.0)], 10.0)];
        let p = presolve(
            &rows,
            vec![0.0, 0.0],
            vec![f64::INFINITY, f64::INFINITY],
            &[false, false],
            1e-7,
            4,
        );
        assert_eq!(p.status, PresolveStatus::Reduced);
        assert!((p.ub[0] - 5.0).abs() < 1e-9);
        assert!((p.ub[1] - 10.0).abs() < 1e-9);
        // Row stays (it can still bind).
        assert_eq!(p.kept_rows, vec![0]);
    }

    #[test]
    fn integral_bounds_round_inward() {
        // 2x <= 5 with x integer -> x <= 2.
        let rows = vec![le(vec![(0, 2.0)], 5.0)];
        let p = presolve(&rows, vec![0.0], vec![10.0], &[true], 1e-7, 4);
        assert_eq!(p.ub[0], 2.0);
    }

    #[test]
    fn ge_implied_bounds() {
        // x + y >= 8 with y <= 3 implies x >= 5.
        let rows = vec![ge(vec![(0, 1.0), (1, 1.0)], 8.0)];
        let p = presolve(&rows, vec![0.0, 0.0], vec![10.0, 3.0], &[false; 2], 1e-7, 4);
        assert!((p.lb[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_row_feasibility() {
        let rows = vec![(vec![], Cmp::Le, -1.0)];
        let p = presolve(&rows, vec![], vec![], &[], 1e-7, 4);
        assert_eq!(p.status, PresolveStatus::Infeasible);
        let rows = vec![(vec![], Cmp::Le, 1.0)];
        let p = presolve(&rows, vec![], vec![], &[], 1e-7, 4);
        assert_eq!(p.status, PresolveStatus::Reduced);
    }

    #[test]
    fn negative_coefficients() {
        // -x <= -4  =>  x >= 4 (singleton with negative coefficient).
        let rows = vec![le(vec![(0, -1.0)], -4.0)];
        let p = presolve(&rows, vec![0.0], vec![10.0], &[false], 1e-7, 4);
        assert_eq!(p.lb[0], 4.0);
        assert!(p.kept_rows.is_empty());
    }

    #[test]
    fn chained_tightening_across_passes() {
        // x <= 3 (singleton), then y <= x implies y <= 3 on the next pass.
        let rows = vec![le(vec![(0, 1.0)], 3.0), le(vec![(1, 1.0), (0, -1.0)], 0.0)];
        let p = presolve(
            &rows,
            vec![0.0, 0.0],
            vec![100.0, 100.0],
            &[false, false],
            1e-7,
            4,
        );
        assert!((p.ub[0] - 3.0).abs() < 1e-9);
        assert!((p.ub[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn passes_reported_and_capped() {
        // The dependent row comes first, so a single in-order pass cannot
        // see through the chain; a cap of one stops early and says so.
        let rows = vec![le(vec![(1, 1.0), (0, -1.0)], 0.0), le(vec![(0, 1.0)], 3.0)];
        let p = presolve(
            &rows,
            vec![0.0, 0.0],
            vec![100.0, 100.0],
            &[false, false],
            1e-7,
            1,
        );
        assert_eq!(p.passes, 1);
        assert!(p.ub[1] > 50.0, "one pass cannot see through the chain");
        let p = presolve(
            &rows,
            vec![0.0, 0.0],
            vec![100.0, 100.0],
            &[false, false],
            1e-7,
            8,
        );
        assert!(p.passes >= 2 && p.passes <= 8);
        assert!((p.ub[1] - 3.0).abs() < 1e-9);
    }

    // -- strengthening ------------------------------------------------------

    /// `x + 5b <= 12` with `x in [0, 8]`: the `b = 0` branch has slack 4,
    /// so the row tightens to `x + b <= 8` (both integer branches intact).
    #[test]
    fn big_m_positive_coefficient_tightens() {
        let mut rows = vec![le(vec![(0, 1.0), (1, 5.0)], 12.0)];
        let mut lb = vec![0.0, 0.0];
        let mut ub = vec![8.0, 1.0];
        let st = strengthen(&mut rows, &mut lb, &mut ub, &[false, true], 1e-7, 0).unwrap();
        assert_eq!(st.rows_tightened, 1);
        assert!((rows[0].0[1].1 - 1.0).abs() < 1e-9, "coeff: {:?}", rows[0]);
        assert!((rows[0].2 - 8.0).abs() < 1e-9);
    }

    /// `x - 10b <= 0` with `x in [0, 8]`: the `b = 1` branch relaxes to
    /// `x <= 10`, never binding, so the coefficient lifts to `-8`.
    #[test]
    fn big_m_negative_coefficient_lifts() {
        let mut rows = vec![le(vec![(0, 1.0), (1, -10.0)], 0.0)];
        let mut lb = vec![0.0, 0.0];
        let mut ub = vec![8.0, 1.0];
        let st = strengthen(&mut rows, &mut lb, &mut ub, &[false, true], 1e-7, 0).unwrap();
        assert_eq!(st.rows_tightened, 1);
        assert!(
            (rows[0].0[1].1 - (-8.0)).abs() < 1e-9,
            "coeff: {:?}",
            rows[0]
        );
        assert!((rows[0].2 - 0.0).abs() < 1e-9);
    }

    /// `x + 10b >= 3` with `x in [0, 8]`: through negation the big-M
    /// shrinks to the least coefficient covering the `b = 1` branch.
    #[test]
    fn big_m_ge_row_tightens_via_negation() {
        let mut rows = vec![ge(vec![(0, 1.0), (1, 10.0)], 3.0)];
        let mut lb = vec![0.0, 0.0];
        let mut ub = vec![8.0, 1.0];
        let st = strengthen(&mut rows, &mut lb, &mut ub, &[false, true], 1e-7, 0).unwrap();
        assert_eq!(st.rows_tightened, 1);
        assert_eq!(rows[0].1, Cmp::Ge);
        assert!((rows[0].0[1].1 - 3.0).abs() < 1e-9, "coeff: {:?}", rows[0]);
        assert!((rows[0].2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn probing_fixes_contradicted_binary() {
        // x - 4b >= 2 and x + 4b <= 8 with x in [0, 10]: neither row alone
        // moves b (each implied bound stays above 1), but probing b = 1
        // chains them into x >= 6 and x <= 4 — contradiction, so b = 0.
        let mut rows = vec![
            ge(vec![(0, 1.0), (1, -4.0)], 2.0),
            le(vec![(0, 1.0), (1, 4.0)], 8.0),
        ];
        let mut lb = vec![0.0, 0.0];
        let mut ub = vec![10.0, 1.0];
        let st = strengthen(&mut rows, &mut lb, &mut ub, &[false, true], 1e-7, 64).unwrap();
        assert_eq!(st.binaries_fixed, 1);
        assert_eq!((lb[1], ub[1]), (0.0, 0.0));
    }

    #[test]
    fn probing_detects_total_infeasibility() {
        // x in [6, 10], x + 10b <= 10 and x - 10b <= 0: both b values die.
        let mut rows = vec![
            le(vec![(0, 1.0), (1, 10.0)], 10.0),
            le(vec![(0, 1.0), (1, -10.0)], 0.0),
        ];
        let mut lb = vec![6.0, 0.0];
        let mut ub = vec![10.0, 1.0];
        assert!(strengthen(&mut rows, &mut lb, &mut ub, &[false, true], 1e-7, 64).is_err());
    }

    #[test]
    fn probing_harvests_binary_implication() {
        // b + c <= 1 with both binaries and enough budget: probing b = 1
        // forces c = 0.
        let mut rows = vec![
            le(vec![(0, 1.0), (1, 1.0)], 1.0),
            // A second, non-binary row keeps the system from being solved
            // outright by bound propagation.
            le(vec![(0, 1.0), (2, 1.0)], 5.0),
        ];
        let mut lb = vec![0.0, 0.0, 0.0];
        let mut ub = vec![1.0, 1.0, 10.0];
        let st = strengthen(&mut rows, &mut lb, &mut ub, &[true, true, false], 1e-7, 64).unwrap();
        assert!(
            st.implications.contains(&Implication {
                bin: 0,
                val: true,
                other: 1,
                forced: false,
            }),
            "implications: {:?}",
            st.implications
        );
    }

    #[test]
    fn pair_probing_harvests_vertex_bound() {
        // The placement disjunction shape: y_j + 4 - y_i + 10p + 10q <= 20
        // (i.e. "i above j" when (p, q) = (1, 1)) with y's in [0, 10]. At
        // the (1, 1) vertex propagation derives y_i >= y_j + 4 >= 4 — a
        // bound that only holds at that vertex, which the separator turns
        // into the tightened-disjunction cut -y_i + 4p + 4q <= 4.
        let mut rows = vec![le(vec![(0, -1.0), (1, 1.0), (2, 10.0), (3, 10.0)], 16.0)];
        let mut lb = vec![0.0; 4];
        let mut ub = vec![10.0, 10.0, 1.0, 1.0];
        let integral = [false, false, true, true];
        let st = strengthen(&mut rows, &mut lb, &mut ub, &integral, 1e-7, 64).unwrap();
        assert!(
            st.pair_impls.iter().any(|pi| pi.p == 2
                && pi.q == 3
                && pi.vp
                && pi.vq
                && pi.var == 0
                && pi.kind == BoundKind::Lower
                && (pi.bound - 4.0).abs() < 1e-9),
            "pair implications: {:?}",
            st.pair_impls
        );

        // Violated at the fractional-friendly point (y_i, y_j, p, q) =
        // (0, 0, 1, 1); the emitted cut must not be the original row.
        let mut sep = CutSeparator::new(&st, &rows, &lb, &ub, &integral);
        let cuts = sep.separate(&[0.0, 0.0, 1.0, 1.0], &rows, 64);
        let cut = cuts
            .iter()
            .find(|(t, _, _)| t.iter().any(|&(j, a)| j == 0 && a < 0.0))
            .unwrap_or_else(|| panic!("no pair cut on y_i: {cuts:?}"));
        // Every integer vertex with its implied y_i survives the cuts.
        for pt in [
            [0.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
            [4.0, 0.0, 1.0, 1.0],
            [10.0, 6.0, 1.0, 1.0],
        ] {
            let act: f64 = cut.0.iter().map(|&(j, a)| a * pt[j]).sum();
            assert!(act <= cut.2 + 1e-9, "cut {cut:?} excludes vertex {pt:?}");
        }
    }

    #[test]
    fn cover_cut_separated_and_valid() {
        // 3a + 4b + 2c <= 6: {a, b} is a minimal cover; at the fractional
        // point (1, 0.9, 0) it is violated and yields a + b <= 1.
        let rows = vec![le(vec![(0, 3.0), (1, 4.0), (2, 2.0)], 6.0)];
        let lb = vec![0.0; 3];
        let ub = vec![1.0; 3];
        let integral = [true, true, true];
        let st = Strengthened::default();
        let mut sep = CutSeparator::new(&st, &rows, &lb, &ub, &integral);
        let cuts = sep.separate(&[1.0, 0.9, 0.0], &rows, 64);
        assert!(
            cuts.iter()
                .any(|(t, _, rhs)| t == &vec![(0, 1.0), (1, 1.0)] && (*rhs - 1.0).abs() < 1e-9),
            "cuts: {cuts:?}"
        );
        // No cover is violated at an integral feasible point.
        let none = sep.separate(&[0.0, 1.0, 1.0], &rows, 64);
        assert!(none.is_empty(), "spurious cuts: {none:?}");
    }

    #[test]
    fn logic_cuts_dedup_against_existing_rows() {
        let st = Strengthened {
            implications: vec![Implication {
                bin: 0,
                val: true,
                other: 1,
                forced: false,
            }],
            ..Strengthened::default()
        };
        // The model already carries p + q <= 1: the logic cut is a dup.
        let rows = vec![le(vec![(0, 1.0), (1, 1.0)], 1.0)];
        let lb = vec![0.0; 2];
        let ub = vec![1.0; 2];
        let mut sep = CutSeparator::new(&st, &rows, &lb, &ub, &[true, true]);
        assert!(sep.logic_cuts(64).is_empty());

        // Without the row it materializes.
        let mut sep = CutSeparator::new(&st, &[], &lb, &ub, &[true, true]);
        let cuts = sep.logic_cuts(64);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].0, vec![(0, 1.0), (1, 1.0)]);
    }

    /// Satellite: randomized check that the whole strengthening pipeline —
    /// tightening, probing, and every cut family — never excludes an
    /// integer point that was feasible in the original system.
    #[test]
    fn strengthening_never_cuts_feasible_integer_points() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let feasible = |pt: &[f64], rows: &[SparseRow], lb: &[f64], ub: &[f64]| -> bool {
            pt.iter()
                .zip(lb.iter().zip(ub.iter()))
                .all(|(&v, (&l, &u))| v >= l - 1e-9 && v <= u + 1e-9)
                && rows.iter().all(|(t, cmp, rhs)| {
                    let act: f64 = t.iter().map(|&(j, a)| a * pt[j]).sum();
                    match cmp {
                        Cmp::Le => act <= rhs + 1e-7,
                        Cmp::Ge => act >= rhs - 1e-7,
                        Cmp::Eq => (act - rhs).abs() <= 1e-7,
                    }
                })
        };

        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let nbin = rng.gen_range(2..6usize);
            let ncont = rng.gen_range(1..4usize);
            let n = nbin + ncont;
            let lb0 = vec![0.0; n];
            let ub0: Vec<f64> = (0..n)
                .map(|j| {
                    if j < nbin {
                        1.0
                    } else {
                        2.0 + rng.gen_range(0..8) as f64
                    }
                })
                .collect();
            let integral: Vec<bool> = (0..n).map(|j| j < nbin).collect();

            let mut rows: Vec<SparseRow> = Vec::new();
            for _ in 0..rng.gen_range(2..6usize) {
                let mut terms: Vec<(usize, f64)> = Vec::new();
                for j in 0..n {
                    if rng.gen_bool(0.6) {
                        let mag = rng.gen_range(1..12) as f64;
                        terms.push((j, if rng.gen_bool(0.3) { -mag } else { mag }));
                    }
                }
                if terms.is_empty() {
                    continue;
                }
                // rhs near the midpoint activity keeps the system feasible
                // often enough to matter while still binding.
                let mid: f64 = terms
                    .iter()
                    .map(|&(j, a)| a * 0.5 * (lb0[j] + ub0[j]))
                    .sum();
                rows.push((terms, Cmp::Le, mid + rng.gen_range(0..6) as f64));
            }

            // Sample feasible integer points of the ORIGINAL system.
            let orig = rows.clone();
            let mut points: Vec<Vec<f64>> = Vec::new();
            for _ in 0..300 {
                let pt: Vec<f64> = (0..n)
                    .map(|j| {
                        if j < nbin {
                            f64::from(u8::from(rng.gen_bool(0.5)))
                        } else {
                            rng.gen_range(0..=(ub0[j] as i64)) as f64
                        }
                    })
                    .collect();
                if feasible(&pt, &orig, &lb0, &ub0) {
                    points.push(pt);
                }
                if points.len() >= 12 {
                    break;
                }
            }

            let mut lb = lb0.clone();
            let mut ub = ub0.clone();
            let st = match strengthen(&mut rows, &mut lb, &mut ub, &integral, 1e-7, 256) {
                Ok(st) => st,
                Err(()) => {
                    assert!(
                        points.is_empty(),
                        "seed {seed}: strengthen proved infeasible but {} feasible points exist",
                        points.len()
                    );
                    continue;
                }
            };

            // Generate every cut family: unconditional logic cuts plus
            // separation against random fractional LP-like points.
            let mut all_rows = rows.clone();
            let mut sep = CutSeparator::new(&st, &rows, &lb, &ub, &integral);
            all_rows.extend(sep.logic_cuts(256));
            for _ in 0..4 {
                let x: Vec<f64> = (0..n)
                    .map(|j| {
                        let (l, u) = (lb[j], ub[j]);
                        if l > u {
                            l
                        } else {
                            l + rng.gen::<f64>() * (u - l)
                        }
                    })
                    .collect();
                let cuts = sep.separate(&x, &all_rows, 256);
                if cuts.is_empty() {
                    break;
                }
                all_rows.extend(cuts);
            }

            for pt in &points {
                assert!(
                    feasible(pt, &all_rows, &lb, &ub),
                    "seed {seed}: strengthening cut off feasible point {pt:?}"
                );
            }
        }
    }
}
