//! Test-only probes into the sparse revised simplex kernel.
//!
//! Hidden from docs and semver guarantees: this module exists so the
//! integration-level property tests (`tests/prop_solver.rs`) can measure
//! internal invariants — the LU + eta-file basis round-trip — that have no
//! business in the public API. Nothing here is stable.

use crate::model::Model;
use crate::simplex::{LpConfig, LpOutcome, LpProblem, SparseRow, Workspace};

/// What [`sparse_root_lp_probe`] measured on one root-LP solve.
#[derive(Debug, Clone, Copy)]
pub struct LuProbe {
    /// Root relaxation objective in minimization form (objective offset
    /// included), or `None` when the LP is infeasible/unbounded/limited.
    pub objective: Option<f64>,
    /// `max_i ‖B·(B⁻¹·e_i) − e_i‖_∞` over every basis column, with `B⁻¹`
    /// applied through the kernel's LU factors *plus the live eta file* and
    /// `B` through the raw constraint columns of the final basis.
    pub roundtrip: f64,
    /// Simplex pivots the solve spent.
    pub pivots: usize,
    /// Basis (re)factorizations performed.
    pub refactors: usize,
    /// Eta-file updates recorded over the whole solve (monotone counter;
    /// refactorizations do not rewind it).
    pub etas: usize,
    /// Eta columns still live in the product-form file at the probe point
    /// (the final accuracy refresh is suppressed so the file is *not*
    /// cleared before measuring).
    pub live_etas: usize,
}

/// Solves `model`'s root LP relaxation cold on the sparse kernel with the
/// given `refactor_interval` (`0` = auto) and probes the resulting basis
/// representation. The final accuracy refactorization is suppressed, so
/// after K pivots with a large interval the round-trip exercises an LU
/// factorization plus K eta updates — exactly the accumulated state the
/// equivalence argument depends on.
pub fn sparse_root_lp_probe(model: &Model, refactor_interval: usize) -> LuProbe {
    let (c, c_offset) = model.min_objective();
    let rows: Vec<SparseRow> = model
        .cons
        .iter()
        .map(|con| {
            (
                con.expr.iter().map(|(v, a)| (v.index(), a)).collect(),
                con.cmp,
                con.rhs,
            )
        })
        .collect();
    let lb: Vec<f64> = model.vars.iter().map(|d| d.lb).collect();
    let ub: Vec<f64> = model.vars.iter().map(|d| d.ub).collect();
    let p = LpProblem {
        ncols: model.vars.len(),
        rows: &rows,
        c: &c,
        lb: &lb,
        ub: &ub,
    };
    let cfg = LpConfig {
        feas_tol: 1e-7,
        opt_tol: 1e-9,
        deadline: None,
        warm_pivot_cap: 0,
        sparse: true,
        refactor_interval,
    };
    let mut ws = Workspace::new();
    ws.sp.final_refresh = false;
    let (out, info) = ws.solve(&p, None, &cfg);
    LuProbe {
        objective: match out {
            LpOutcome::Optimal { obj, .. } => Some(obj + c_offset),
            _ => None,
        },
        roundtrip: ws.sp.roundtrip_residual(),
        pivots: info.pivots,
        refactors: info.refactors,
        etas: ws.sp.eta_updates,
        live_etas: ws.sp.live_etas(),
    }
}
