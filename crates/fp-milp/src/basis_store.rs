//! Cross-solve basis snapshots: a keyed store of committed root bases.
//!
//! Warm starts so far lived inside one branch-and-bound tree: each node
//! re-pivots from its parent's [`BasisSnapshot`]. This store carries the
//! *root* basis across whole solves — a caller keys its solves (e.g. by
//! instance fingerprint) and a later solve of the same or a structurally
//! similar model seeds its root LP from the earlier solve's committed
//! basis instead of a cold two-phase primal. The floorplan service uses it
//! for ECO re-solves: the delta job's step LPs load the base job's bases.
//!
//! Safety is inherited from the kernels' snapshot validation: a snapshot
//! with the wrong column count never loads, one with fewer rows loads via
//! the same slack-extension path the root cut loop uses, and any numerical
//! doubt falls back to the cold solve. A wrong-but-well-formed basis can
//! only cost extra pivots, never a wrong answer.

use crate::simplex::BasisSnapshot;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How a solve's root LP was seeded from a [`BasisStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum BasisTier {
    /// No cross-solve basis was used (store miss, disabled, or the root
    /// already had a committed cut-loop basis of its own).
    #[default]
    Cold,
    /// A stored basis over fewer rows seeded the root via slack extension.
    Warm,
    /// A stored basis with exactly matching dimensions seeded the root.
    Hot,
}

impl BasisTier {
    /// Stable lowercase name (`"hot"` / `"warm"` / `"cold"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BasisTier::Cold => "cold",
            BasisTier::Warm => "warm",
            BasisTier::Hot => "hot",
        }
    }
}

/// A bounded, thread-safe map from caller-chosen keys to committed root
/// bases. Keys are mixed with the model's structural column count (see
/// [`slot`]) so a stored basis can only ever be offered to a solve whose
/// variable space it describes.
///
/// Eviction is least-recently-stored via a monotonic clock, matching the
/// service's solution-cache policy.
pub struct BasisStore {
    /// `(map, clock)` under one lock: slot → (stamp, snapshot).
    #[allow(clippy::type_complexity)]
    inner: Mutex<(HashMap<u64, (u64, Arc<BasisSnapshot>)>, u64)>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    published: AtomicU64,
}

/// Two stores are equal when they are the same store (handle identity, like
/// [`StopFlag`](crate::StopFlag)) — configs holding shared stores compare
/// equal without comparing contents.
impl PartialEq for BasisStore {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self, other)
    }
}

impl std::fmt::Debug for BasisStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BasisStore")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

/// Mixes a caller key with the structural column count into a store slot.
/// FNV-1a over both values: solves over different variable spaces can
/// never collide onto each other's bases.
#[must_use]
pub(crate) fn slot(key: u64, ncols: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    for b in (ncols as u64).to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl BasisStore {
    /// An empty store holding at most `capacity` bases (`0` disables it:
    /// every fetch misses and publishes are dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BasisStore {
            inner: Mutex::new((HashMap::new(), 0)),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            published: AtomicU64::new(0),
        }
    }

    /// Number of bases currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("basis store poisoned").0.len()
    }

    /// Whether the store holds no bases.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses, published)` counters since creation.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.published.load(Ordering::Relaxed),
        )
    }

    /// Looks up the basis stored under `slot`, counting a hit or miss.
    pub(crate) fn fetch(&self, slot: u64) -> Option<Arc<BasisSnapshot>> {
        let guard = self.inner.lock().expect("basis store poisoned");
        match guard.0.get(&slot) {
            Some((_, snap)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(snap))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `snap` under `slot`, evicting the oldest entry at capacity.
    pub(crate) fn publish(&self, slot: u64, snap: Arc<BasisSnapshot>) {
        if self.capacity == 0 {
            return;
        }
        let mut guard = self.inner.lock().expect("basis store poisoned");
        let (map, clock) = &mut *guard;
        *clock += 1;
        let stamp = *clock;
        if map.len() >= self.capacity && !map.contains_key(&slot) {
            if let Some(&oldest) = map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k)
            {
                map.remove(&oldest);
            }
        }
        map.insert(slot, (stamp, snap));
        self.published.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::ColStatus;

    fn snap(m: usize) -> Arc<BasisSnapshot> {
        Arc::new(BasisSnapshot {
            m,
            n_struct: 3,
            basis: (0..m).collect(),
            status: vec![ColStatus::AtLower; 3 + m],
        })
    }

    #[test]
    fn fetch_publish_round_trip() {
        let store = BasisStore::new(4);
        assert!(store.is_empty());
        let s = slot(7, 3);
        assert!(store.fetch(s).is_none());
        store.publish(s, snap(2));
        let got = store.fetch(s).expect("published basis");
        assert_eq!(got.m, 2);
        assert_eq!(store.stats(), (1, 1, 1));
    }

    #[test]
    fn slots_separate_column_spaces() {
        assert_ne!(slot(1, 3), slot(1, 4));
        assert_ne!(slot(1, 3), slot(2, 3));
        assert_eq!(slot(9, 5), slot(9, 5));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let store = BasisStore::new(2);
        store.publish(1, snap(1));
        store.publish(2, snap(2));
        store.publish(3, snap(3));
        assert_eq!(store.len(), 2);
        assert!(store.fetch(1).is_none(), "oldest evicted");
        assert!(store.fetch(3).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let store = BasisStore::new(0);
        store.publish(1, snap(1));
        assert!(store.fetch(1).is_none());
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn tier_names() {
        assert_eq!(BasisTier::Hot.as_str(), "hot");
        assert_eq!(BasisTier::Warm.as_str(), "warm");
        assert_eq!(BasisTier::Cold.as_str(), "cold");
        assert_eq!(BasisTier::default(), BasisTier::Cold);
    }
}
