//! Two-phase, bounded-variable primal simplex on a dense tableau, plus a
//! bounded-variable **dual simplex** used to warm-start branch-and-bound
//! nodes from their parent's optimal basis.
//!
//! This is the LP engine underneath branch-and-bound. It handles general
//! variable bounds (including free and fixed variables) without expanding
//! them into rows, which matters because every 0-1 variable of the
//! floorplanning MILP would otherwise add a row.
//!
//! Method: all rows are converted to equalities with one slack column each
//! (`<=` gets a slack in `[0, ∞)`, `>=` in `(-∞, 0]`, `==` in `[0, 0]`).
//! Phase 1 adds one artificial column per row, signed so the artificial
//! starts basic and non-negative, and minimizes the sum of artificials.
//! Phase 2 fixes the artificials to zero and optimizes the true objective.
//! Dantzig pricing with a permanent switch to Bland's rule after a stall
//! threshold guards against cycling.
//!
//! Warm starts: a branch-and-bound child differs from its parent by one
//! tightened 0-1 bound, so the parent's optimal basis is still dual
//! feasible (reduced-cost signs are untouched by bound changes) while at
//! most one basic variable is primal infeasible. [`Workspace`] keeps the
//! tableau allocations alive across node solves and can be re-seeded from
//! a [`BasisSnapshot`]; the dual simplex then restores primal feasibility
//! in a handful of pivots instead of re-running phase 1 from scratch. Any
//! numerical trouble (singular refactorization, dual pivot cap, a
//! feasibility re-check failure against the original rows) falls back to
//! the cold two-phase primal, so warm starts can only ever change speed,
//! never answers.

use crate::model::Cmp;
use crate::sparse::SparseKernel;
use std::sync::{Arc, Weak};
use std::time::Instant;

/// One sparse constraint row: `(terms, comparison, rhs)`.
pub(crate) type SparseRow = (Vec<(usize, f64)>, Cmp, f64);

/// How often (in simplex iterations) the cooperative deadline is polled.
/// `Instant::now()` costs tens of nanoseconds while even a small pivot is
/// microseconds of dense row arithmetic, so polling every 16 iterations is
/// free yet bounds the overshoot past a deadline to 16 pivots.
pub(crate) const DEADLINE_POLL_MASK: usize = 15;

/// A bound-constrained LP in minimization form:
/// `min c·x` subject to `row·x (cmp) rhs` for each row and `lb <= x <= ub`.
///
/// Rows and costs are borrowed so branch-and-bound nodes share them; only
/// the bound vectors differ per node.
#[derive(Debug, Clone)]
pub(crate) struct LpProblem<'a> {
    pub ncols: usize,
    /// Sparse rows: `(terms, cmp, rhs)`.
    pub rows: &'a [SparseRow],
    pub c: &'a [f64],
    pub lb: &'a [f64],
    pub ub: &'a [f64],
}

/// Result of a relaxation solve.
#[derive(Debug, Clone)]
pub(crate) enum LpOutcome {
    /// Optimal basic solution: structural values and objective.
    Optimal {
        x: Vec<f64>,
        obj: f64,
    },
    Infeasible,
    Unbounded,
    /// Safety cap hit; the model is probably badly scaled.
    IterationLimit,
    /// The caller's deadline passed mid-solve (cooperative check inside the
    /// pivot loop, so one long LP cannot overshoot a solve's time limit).
    TimedOut,
}

/// Per-solve tolerances and limits, shared by every node of one B&B run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LpConfig {
    /// Gates phase-1 acceptance and the warm-path feasibility re-check.
    pub feas_tol: f64,
    /// Pricing tolerance for both primal and dual pivots.
    pub opt_tol: f64,
    /// Cooperative deadline polled inside the pivot loops.
    pub deadline: Option<Instant>,
    /// Max dual pivots per warm attempt before falling back cold
    /// (`0` = auto: `2·m + 100`).
    pub warm_pivot_cap: usize,
    /// Solve on the sparse revised kernel (LU basis + eta file) instead of
    /// the dense tableau. Both kernels implement identical pivot rules.
    pub sparse: bool,
    /// Eta updates tolerated between basis refactorizations on the sparse
    /// kernel (`0` = auto).
    pub refactor_interval: usize,
}

/// How a node's LP was solved, for stats and tracing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LpInfo {
    /// `true` if the result came from a warm (basis-seeded) solve; cold
    /// fallbacks report `false` even when a warm attempt was made first.
    pub warm: bool,
    /// Simplex pivots spent on this node, wasted warm pivots included.
    pub pivots: usize,
    /// Basis LU (re)factorizations performed on this node (sparse kernel;
    /// the dense tableau reports `0`).
    pub refactors: usize,
    /// Eta-file updates appended between refactorizations on this node
    /// (sparse kernel; the dense tableau reports `0`).
    pub etas: usize,
}

/// A saved basis: which column is basic in each row plus the resting
/// status of every column, as captured at a node's optimum. Shared to both
/// children through an [`Arc`] so the frontier never clones tableaux.
#[derive(Debug)]
pub(crate) struct BasisSnapshot {
    pub(crate) m: usize,
    pub(crate) n_struct: usize,
    pub(crate) basis: Vec<usize>,
    pub(crate) status: Vec<ColStatus>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColStatus {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Free variable currently parked at zero.
    FreeAtZero,
}

/// The resting status a column would get in a fresh cold start.
pub(crate) fn default_status(lb: f64, ub: f64) -> ColStatus {
    if lb.is_finite() {
        ColStatus::AtLower
    } else if ub.is_finite() {
        ColStatus::AtUpper
    } else {
        ColStatus::FreeAtZero
    }
}

struct Tableau {
    m: usize,
    /// Total columns: structural + slacks + artificials.
    n: usize,
    /// Row-major dense `m x n` tableau, kept equal to `B⁻¹·A`.
    t: Vec<f64>,
    /// Reduced costs for the current phase's cost vector.
    d: Vec<f64>,
    /// Values of the basic variables, one per row.
    xb: Vec<f64>,
    /// Basic column per row.
    basis: Vec<usize>,
    status: Vec<ColStatus>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    opt_tol: f64,
    iterations: usize,
    bland: bool,
}

pub(crate) const PIVOT_TOL: f64 = 1e-9;
/// Minimum acceptable pivot magnitude when re-eliminating a snapshot basis;
/// anything smaller means the saved basis is (numerically) singular for the
/// child and the warm attempt is abandoned.
pub(crate) const REFACTOR_TOL: f64 = 1e-8;

pub(crate) enum StepOutcome {
    Optimal,
    Unbounded,
    Pivoted,
}

/// Why a call to [`Tableau::optimize`] stopped iterating.
pub(crate) enum OptimizeEnd {
    Done(StepOutcome),
    IterationCap,
    TimedOut,
}

/// Why a call to [`Tableau::dual_optimize`] stopped iterating.
pub(crate) enum DualEnd {
    /// All basic variables are back inside their bounds.
    Feasible,
    /// A violated row has no eligible entering column — an infeasibility
    /// claim. The caller either certifies it from the stuck row
    /// ([`Tableau::certify_infeasible`]) or confirms it with a cold solve;
    /// the raw claim is never trusted on its own.
    NoEntering {
        /// The violated row the ratio test got stuck on.
        row: usize,
    },
    /// Dual pivot budget exhausted (stall / cycling guard).
    Cap,
    TimedOut,
}

impl Tableau {
    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.t[i * self.n + j]
    }

    /// Current (non-basic or parked) value of column `j`.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            ColStatus::AtLower => self.lb[j],
            ColStatus::AtUpper => self.ub[j],
            ColStatus::FreeAtZero => 0.0,
            ColStatus::Basic(r) => self.xb[r],
        }
    }

    /// One simplex iteration: price, ratio test, pivot or bound flip.
    fn step(&mut self) -> StepOutcome {
        // --- pricing: pick the entering column -------------------------
        let mut enter: Option<(usize, i8, f64)> = None; // (col, dir, score)
        for j in 0..self.n {
            let (eligible, dir) = match self.status[j] {
                ColStatus::Basic(_) => (false, 0i8),
                ColStatus::AtLower => (self.d[j] < -self.opt_tol, 1),
                ColStatus::AtUpper => (self.d[j] > self.opt_tol, -1),
                ColStatus::FreeAtZero => (
                    self.d[j].abs() > self.opt_tol,
                    if self.d[j] < 0.0 { 1 } else { -1 },
                ),
            };
            if !eligible {
                continue;
            }
            if self.bland {
                enter = Some((j, dir, 0.0));
                break;
            }
            let score = self.d[j].abs();
            if enter.is_none_or(|(_, _, s)| score > s) {
                enter = Some((j, dir, score));
            }
        }
        let Some((q, dir, _)) = enter else {
            return StepOutcome::Optimal;
        };
        let dir = f64::from(dir);

        // --- ratio test ------------------------------------------------
        // The entering variable moves by t >= 0 in direction `dir`; each
        // basic variable changes by -dir * t * T[i][q].
        let own_limit = if self.lb[q].is_finite() && self.ub[q].is_finite() {
            self.ub[q] - self.lb[q]
        } else {
            f64::INFINITY
        };
        let mut t_best = own_limit;
        let mut leave: Option<(usize, bool)> = None; // (row, hits_upper)
        for i in 0..self.m {
            let alpha = dir * self.at(i, q);
            let bi = self.basis[i];
            let (limit, hits_upper) = if alpha > PIVOT_TOL {
                if self.lb[bi].is_finite() {
                    ((self.xb[i] - self.lb[bi]) / alpha, false)
                } else {
                    continue;
                }
            } else if alpha < -PIVOT_TOL {
                if self.ub[bi].is_finite() {
                    ((self.ub[bi] - self.xb[i]) / (-alpha), true)
                } else {
                    continue;
                }
            } else {
                continue;
            };
            let limit = limit.max(0.0); // degenerate steps clamp to zero
            let better = match leave {
                None => limit < t_best - PIVOT_TOL || (t_best.is_infinite() && limit.is_finite()),
                Some((r, _)) => {
                    limit < t_best - PIVOT_TOL
                        // stability tie-break: larger pivot magnitude
                        || (limit < t_best + PIVOT_TOL
                            && self.at(i, q).abs() > self.at(r, q).abs())
                }
            };
            if better {
                t_best = limit;
                leave = Some((i, hits_upper));
            }
        }

        if t_best.is_infinite() {
            return StepOutcome::Unbounded;
        }

        self.iterations += 1;
        let v_q = self.nonbasic_value(q);

        match leave {
            // Bound flip: entering variable runs to its opposite bound.
            None => {
                for i in 0..self.m {
                    self.xb[i] -= dir * t_best * self.at(i, q);
                }
                self.status[q] = if dir > 0.0 {
                    ColStatus::AtUpper
                } else {
                    ColStatus::AtLower
                };
            }
            Some((r, hits_upper)) => {
                for i in 0..self.m {
                    self.xb[i] -= dir * t_best * self.at(i, q);
                }
                let old = self.basis[r];
                // Snap the leaving variable exactly onto the bound it hit.
                self.status[old] = if hits_upper {
                    self.xb[r] = self.ub[old];
                    ColStatus::AtUpper
                } else {
                    self.xb[r] = self.lb[old];
                    ColStatus::AtLower
                };
                let entering_value = v_q + dir * t_best;
                self.pivot(r, q);
                self.basis[r] = q;
                self.status[q] = ColStatus::Basic(r);
                self.xb[r] = entering_value;
            }
        }
        StepOutcome::Pivoted
    }

    /// Gaussian elimination so column `q` becomes the `r`-th unit vector;
    /// also updates the reduced-cost row.
    fn pivot(&mut self, r: usize, q: usize) {
        let n = self.n;
        let piv = self.t[r * n + q];
        debug_assert!(piv.abs() > PIVOT_TOL, "pivot too small: {piv}");
        let inv = 1.0 / piv;
        for j in 0..n {
            self.t[r * n + j] *= inv;
        }
        self.t[r * n + q] = 1.0; // exact
        for i in 0..self.m {
            if i == r {
                continue;
            }
            let factor = self.t[i * n + q];
            if factor == 0.0 {
                continue;
            }
            for j in 0..n {
                self.t[i * n + j] -= factor * self.t[r * n + j];
            }
            self.t[i * n + q] = 0.0; // exact
        }
        let dq = self.d[q];
        if dq != 0.0 {
            for j in 0..n {
                self.d[j] -= dq * self.t[r * n + j];
            }
            self.d[q] = 0.0;
        }
    }

    /// Runs simplex iterations until optimal / unbounded / capped / past
    /// the caller's deadline.
    fn optimize(&mut self, max_iters: usize, deadline: Option<Instant>) -> OptimizeEnd {
        let stall_switch = 3 * (self.m + self.n) + 200;
        let start = self.iterations;
        loop {
            if self.iterations - start > stall_switch {
                self.bland = true;
            }
            if self.iterations > max_iters {
                return OptimizeEnd::IterationCap;
            }
            if self.iterations & DEADLINE_POLL_MASK == 0 {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return OptimizeEnd::TimedOut;
                    }
                }
            }
            match self.step() {
                StepOutcome::Pivoted => continue,
                other => return OptimizeEnd::Done(other),
            }
        }
    }

    /// Bounded-variable dual simplex: starting from a dual-feasible basis
    /// whose `xb` violates some bounds (the warm-start state after a
    /// branching bound change), drives every basic variable back inside
    /// its bounds while keeping the reduced-cost signs valid.
    ///
    /// Leaving row: the largest relative bound violation. Entering column:
    /// minimum dual ratio `d_j / α_j` where `α_j = σ·T[r][j]` and `σ` is
    /// `+1` above the upper bound, `-1` below the lower; ties break on
    /// larger `|α|` for stability. The step moves the entering variable by
    /// exactly enough to land the leaving one on its violated bound; the
    /// entering variable is allowed to overshoot its own opposite bound
    /// (that just becomes the next iteration's violation).
    fn dual_optimize(
        &mut self,
        feas_tol: f64,
        max_pivots: usize,
        deadline: Option<Instant>,
    ) -> DualEnd {
        let start = self.iterations;
        loop {
            if self.iterations - start >= max_pivots {
                return DualEnd::Cap;
            }
            if self.iterations & DEADLINE_POLL_MASK == 0 {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return DualEnd::TimedOut;
                    }
                }
            }

            // --- leaving row: worst bound violation --------------------
            let mut leave: Option<(usize, f64, f64)> = None; // (row, target, viol)
            for i in 0..self.m {
                let bi = self.basis[i];
                let (target, viol) = if self.xb[i] > self.ub[bi] {
                    (
                        self.ub[bi],
                        (self.xb[i] - self.ub[bi]) / (1.0 + self.ub[bi].abs()),
                    )
                } else if self.xb[i] < self.lb[bi] {
                    (
                        self.lb[bi],
                        (self.lb[bi] - self.xb[i]) / (1.0 + self.lb[bi].abs()),
                    )
                } else {
                    continue;
                };
                if viol > feas_tol && leave.is_none_or(|(_, _, v)| viol > v) {
                    leave = Some((i, target, viol));
                }
            }
            let Some((r, target, _)) = leave else {
                return DualEnd::Feasible;
            };
            let sigma = if self.xb[r] > target { 1.0 } else { -1.0 };

            // --- entering column: min dual ratio -----------------------
            let mut enter: Option<(usize, f64, f64)> = None; // (col, ratio, |alpha|)
            for j in 0..self.n {
                let alpha = sigma * self.at(r, j);
                let eligible = match self.status[j] {
                    ColStatus::Basic(_) => false,
                    ColStatus::AtLower => alpha > PIVOT_TOL,
                    ColStatus::AtUpper => alpha < -PIVOT_TOL,
                    ColStatus::FreeAtZero => alpha.abs() > PIVOT_TOL,
                };
                if !eligible {
                    continue;
                }
                // Both eligible cases give d_j/α_j >= 0 in exact arithmetic;
                // clamp so a slightly wrong-signed d cannot produce a
                // negative ratio that derails the min search.
                let ratio = (self.d[j] / alpha).max(0.0);
                let better = match enter {
                    None => true,
                    Some((_, best, besta)) => {
                        ratio < best - PIVOT_TOL
                            || (ratio < best + PIVOT_TOL && alpha.abs() > besta)
                    }
                };
                if better {
                    enter = Some((j, ratio, alpha.abs()));
                }
            }
            let Some((q, _, _)) = enter else {
                return DualEnd::NoEntering { row: r };
            };

            // --- pivot: land xb[r] exactly on its violated bound -------
            self.iterations += 1;
            let step = (self.xb[r] - target) / self.at(r, q);
            let entering_value = self.nonbasic_value(q) + step;
            for i in 0..self.m {
                if i != r {
                    self.xb[i] -= step * self.at(i, q);
                }
            }
            let old = self.basis[r];
            self.status[old] = if sigma > 0.0 {
                ColStatus::AtUpper
            } else {
                ColStatus::AtLower
            };
            self.pivot(r, q);
            self.basis[r] = q;
            self.status[q] = ColStatus::Basic(r);
            self.xb[r] = entering_value;
        }
    }

    /// One-row infeasibility certificate for the state the dual ratio test
    /// got stuck in: row `r`'s basic variable sits outside its bounds and
    /// no eligible entering column exists, so the row equation
    /// `xb[r] = resid_r − Σ T[r][j]·x_j` bounds how far `xb[r]` can move
    /// over the whole nonbasic box. When even the extreme of that range
    /// stays outside the violated bound by more than the margin, the LP is
    /// infeasible regardless of further pivoting — no cold confirmation
    /// needed.
    ///
    /// Columns with an unbounded range are only treated as immovable when
    /// their row coefficient is below [`PIVOT_TOL`]: a sub-tolerance pivot
    /// element is rejected by every pivoting rule in this module, so
    /// "numerically zero" here matches what a cold solve could exploit.
    fn certify_infeasible(&self, r: usize, feas_tol: f64) -> bool {
        let bi = self.basis[r];
        let (sigma, bound) = if self.xb[r] > self.ub[bi] {
            (1.0, self.ub[bi])
        } else if self.xb[r] < self.lb[bi] {
            (-1.0, self.lb[bi])
        } else {
            return false;
        };
        // Total movement of `xb[r]` toward the violated bound achievable
        // by sweeping every nonbasic column across its box.
        let mut slack = 0.0f64;
        for j in 0..self.n {
            // Helpful coefficient: positive means moving `x_j` off its
            // resting value (up from a lower bound, down from an upper)
            // pushes `xb[r]` toward `bound`.
            let helpful = match self.status[j] {
                ColStatus::Basic(_) => continue,
                ColStatus::AtLower => sigma * self.at(r, j),
                ColStatus::AtUpper => -sigma * self.at(r, j),
                ColStatus::FreeAtZero => self.at(r, j).abs(),
            };
            if helpful <= 0.0 {
                continue;
            }
            let width = match self.status[j] {
                ColStatus::FreeAtZero => f64::INFINITY,
                _ => self.ub[j] - self.lb[j],
            };
            if width.is_finite() {
                slack += helpful * width;
            } else if helpful > PIVOT_TOL {
                return false; // genuinely usable unbounded column
            }
        }
        let margin = feas_tol.max(1e-7) * (1.0 + bound.abs());
        (self.xb[r] - bound).abs() > slack + margin
    }

    /// Recomputes reduced costs `d = c - c_B·T` for a new cost vector.
    fn reprice(&mut self, c: &[f64]) {
        self.d.copy_from_slice(c);
        for i in 0..self.m {
            let cb = c[self.basis[i]];
            if cb == 0.0 {
                continue;
            }
            for j in 0..self.n {
                self.d[j] -= cb * self.t[i * self.n + j];
            }
        }
        for i in 0..self.m {
            self.d[self.basis[i]] = 0.0;
        }
    }
}

/// Reusable per-worker LP state: owns the tableau / reduced-cost / basis
/// allocations so branch-and-bound nodes don't churn fresh `Vec`s, and
/// remembers which [`BasisSnapshot`] its tableau currently realizes so a
/// child popped right after its parent (the serial dive and the common
/// parallel case) skips even the refactorization.
pub(crate) struct Workspace {
    tab: Tableau,
    /// The sparse revised kernel, engaged when [`LpConfig::sparse`] is set.
    /// Both kernels stay allocated; a workspace can switch per solve.
    pub(crate) sp: SparseKernel,
    /// Which kernel produced the current state — governs which one
    /// [`Workspace::snapshot`] reads and gates the hot path (a hot re-seed
    /// is only valid on the kernel that actually realizes the snapshot).
    last_sparse: bool,
    /// Whether the sparse kernel's in-place state realizes an optimal basis
    /// for its cached row set. When it does, a sibling or backtracked node
    /// over the same rows can warm-start by applying bound deltas directly
    /// — no snapshot reload, no refactorization — even though the basis is
    /// not the parent's.
    sp_optimal: bool,
    n_struct: usize,
    /// Phase-2 cost buffer (structural costs then zeros), reused per solve.
    cost: Vec<f64>,
    /// Scratch `B⁻¹·b` column carried through refactorization.
    resid: Vec<f64>,
    row_used: Vec<bool>,
    /// Snapshot the current tableau state was captured as, if any.
    loaded: Option<Weak<BasisSnapshot>>,
}

enum WarmAttempt {
    /// Warm solve finished with a trustworthy outcome.
    Done(LpOutcome),
    /// Abandon warm, run the cold path; carries the pivots already spent.
    Fallback(usize),
}

impl Workspace {
    pub(crate) fn new() -> Self {
        Workspace {
            tab: Tableau {
                m: 0,
                n: 0,
                t: Vec::new(),
                d: Vec::new(),
                xb: Vec::new(),
                basis: Vec::new(),
                status: Vec::new(),
                lb: Vec::new(),
                ub: Vec::new(),
                opt_tol: 1e-9,
                iterations: 0,
                bland: false,
            },
            sp: SparseKernel::new(),
            last_sparse: false,
            sp_optimal: false,
            n_struct: 0,
            cost: Vec::new(),
            resid: Vec::new(),
            row_used: Vec::new(),
            loaded: None,
        }
    }

    /// Captures the current basis so children of this node can warm-start.
    /// Only meaningful right after a solve that returned `Optimal`. The
    /// snapshot format is kernel-agnostic (basis columns + resting
    /// statuses), so a basis saved by one kernel warm-starts the other.
    pub(crate) fn snapshot(&mut self) -> Arc<BasisSnapshot> {
        let snap = if self.last_sparse {
            Arc::new(BasisSnapshot {
                m: self.sp.m,
                n_struct: self.sp.n_struct,
                basis: self.sp.basis.clone(),
                status: self.sp.status.clone(),
            })
        } else {
            Arc::new(BasisSnapshot {
                m: self.tab.m,
                n_struct: self.n_struct,
                basis: self.tab.basis.clone(),
                status: self.tab.status.clone(),
            })
        };
        self.loaded = Some(Arc::downgrade(&snap));
        snap
    }

    /// Solves the LP on the kernel selected by [`LpConfig::sparse`],
    /// warm-starting from `basis` when given and falling back to the cold
    /// two-phase primal on any numerical doubt.
    pub(crate) fn solve(
        &mut self,
        p: &LpProblem<'_>,
        basis: Option<&Arc<BasisSnapshot>>,
        cfg: &LpConfig,
    ) -> (LpOutcome, LpInfo) {
        let loaded = self.loaded.take();
        if cfg.sparse {
            return self.solve_sparse(p, basis, cfg, loaded);
        }
        self.tab.opt_tol = cfg.opt_tol;
        let mut wasted = 0;
        if let Some(snap) = basis {
            if snap.m == p.rows.len() && snap.n_struct == p.ncols {
                let hot = !self.last_sparse
                    && loaded
                        .as_ref()
                        .and_then(Weak::upgrade)
                        .is_some_and(|cur| Arc::ptr_eq(&cur, snap));
                match self.attempt_warm(p, snap, cfg, hot) {
                    WarmAttempt::Done(out) => {
                        self.last_sparse = false;
                        let pivots = self.tab.iterations;
                        return (
                            out,
                            LpInfo {
                                warm: true,
                                pivots,
                                refactors: 0,
                                etas: 0,
                            },
                        );
                    }
                    WarmAttempt::Fallback(pivots) => wasted = pivots,
                }
            }
        }
        let out = self.solve_cold(p, cfg);
        self.last_sparse = false;
        let pivots = self.tab.iterations + wasted;
        (
            out,
            LpInfo {
                warm: false,
                pivots,
                refactors: 0,
                etas: 0,
            },
        )
    }

    /// The sparse-kernel twin of the dispatch above: same warm/cold tiers,
    /// with pivots *and* factorization work spent on an abandoned warm
    /// attempt still charged to this node's counters. The hot tier is wider
    /// than the dense kernel's: the revised method can re-seed from *any*
    /// optimal in-place state over the same row set by applying bound
    /// deltas (the dual simplex repairs from whatever basis is current), so
    /// backtracking to a sibling costs no snapshot reload and no
    /// refactorization. The parent-snapshot reload is the middle tier.
    fn solve_sparse(
        &mut self,
        p: &LpProblem<'_>,
        basis: Option<&Arc<BasisSnapshot>>,
        cfg: &LpConfig,
        loaded: Option<Weak<BasisSnapshot>>,
    ) -> (LpOutcome, LpInfo) {
        self.sp.opt_tol = cfg.opt_tol;
        self.sp.refactor_interval = cfg.refactor_interval;
        let mut wasted = (0, 0, 0);
        if let Some(snap) = basis {
            // `snap.m < rows` is the cut-round case: the snapshot predates
            // appended rows, and the warm load extends it with their slacks.
            if snap.m <= p.rows.len() && snap.n_struct == p.ncols {
                let parent_state = loaded
                    .as_ref()
                    .and_then(Weak::upgrade)
                    .is_some_and(|cur| Arc::ptr_eq(&cur, snap));
                for hot in [true, false] {
                    if hot
                        && !(self.last_sparse
                            && self.sp_optimal
                            && parent_state
                            && self.sp.matches_problem(p))
                    {
                        continue;
                    }
                    match self.attempt_warm_sparse(p, snap, cfg, hot) {
                        WarmAttempt::Done(out) => {
                            self.last_sparse = true;
                            self.sp_optimal = matches!(out, LpOutcome::Optimal { .. });
                            return (
                                out,
                                LpInfo {
                                    warm: true,
                                    pivots: self.sp.iterations + wasted.0,
                                    refactors: self.sp.refactors + wasted.1,
                                    etas: self.sp.eta_updates + wasted.2,
                                },
                            );
                        }
                        WarmAttempt::Fallback(pivots) => {
                            wasted.0 += pivots;
                            wasted.1 += self.sp.refactors;
                            wasted.2 += self.sp.eta_updates;
                        }
                    }
                }
            }
        }
        let out = self.sp.solve_cold(p, cfg);
        self.last_sparse = true;
        self.sp_optimal = matches!(out, LpOutcome::Optimal { .. });
        (
            out,
            LpInfo {
                warm: false,
                pivots: self.sp.iterations + wasted.0,
                refactors: self.sp.refactors + wasted.1,
                etas: self.sp.eta_updates + wasted.2,
            },
        )
    }

    /// One warm attempt on the sparse kernel, mirroring [`Self::attempt_warm`]
    /// tier for tier. There is no reprice step: the revised method derives
    /// reduced costs from `Bᵀ·y = c_B` fresh every iteration, so loading
    /// the phase-2 cost vector is the entire re-seed.
    fn attempt_warm_sparse(
        &mut self,
        p: &LpProblem<'_>,
        snap: &BasisSnapshot,
        cfg: &LpConfig,
        hot: bool,
    ) -> WarmAttempt {
        let seeded = if hot {
            self.sp.apply_bound_deltas(p)
        } else {
            self.sp.load_snapshot(p, snap)
        };
        if !seeded {
            return WarmAttempt::Fallback(self.sp.iterations);
        }
        self.sp.set_phase2_cost(p.c);

        let m = self.sp.m;
        let cap = if cfg.warm_pivot_cap > 0 {
            cfg.warm_pivot_cap
        } else {
            2 * m + 100
        };
        let dual_end = self.sp.dual_optimize(cfg.feas_tol, cap, cfg.deadline);
        match dual_end {
            DualEnd::TimedOut => return WarmAttempt::Done(LpOutcome::TimedOut),
            // Same trust policy as the dense kernel: an infeasibility claim
            // is only accepted with a one-row interval certificate; anything
            // weaker is confirmed by the cold fallback.
            DualEnd::NoEntering { row } => {
                if self.sp.certify_infeasible(row, cfg.feas_tol) {
                    return WarmAttempt::Done(LpOutcome::Infeasible);
                }
                return WarmAttempt::Fallback(self.sp.iterations);
            }
            DualEnd::Cap => return WarmAttempt::Fallback(self.sp.iterations),
            DualEnd::Feasible => {}
        }

        let max_iters = 60 * (m + self.sp.n) + 5_000;
        self.sp.bland = false;
        let end = self.sp.optimize(max_iters, cfg.deadline);
        match end {
            OptimizeEnd::TimedOut => WarmAttempt::Done(LpOutcome::TimedOut),
            OptimizeEnd::IterationCap | OptimizeEnd::Done(StepOutcome::Unbounded) => {
                WarmAttempt::Fallback(self.sp.iterations)
            }
            OptimizeEnd::Done(_) => {
                let (x, obj) = self.sp.extract(p.c);
                let ok = verify_primal(p, &x, cfg.feas_tol);
                if ok {
                    WarmAttempt::Done(LpOutcome::Optimal { x, obj })
                } else {
                    WarmAttempt::Fallback(self.sp.iterations)
                }
            }
        }
    }

    /// One warm attempt: seed the tableau (in place if `hot`, else by
    /// refactorizing the snapshot basis against the child's rows), restore
    /// primal feasibility with the dual simplex, polish with the primal,
    /// and re-check the claimed optimum against the original rows.
    fn attempt_warm(
        &mut self,
        p: &LpProblem<'_>,
        snap: &BasisSnapshot,
        cfg: &LpConfig,
        hot: bool,
    ) -> WarmAttempt {
        let seeded = if hot {
            self.apply_bound_deltas(p)
        } else {
            self.refactorize(p, snap)
        };
        if !seeded {
            return WarmAttempt::Fallback(self.tab.iterations);
        }

        // Reprice from scratch every attempt: O(m·n), about one pivot, and
        // it stops reduced-cost drift accumulating across a warm dive chain.
        self.cost.clear();
        self.cost.resize(self.tab.n, 0.0);
        self.cost[..self.n_struct].copy_from_slice(p.c);
        let cost = std::mem::take(&mut self.cost);
        self.tab.reprice(&cost);
        self.cost = cost;

        let m = self.tab.m;
        let cap = if cfg.warm_pivot_cap > 0 {
            cfg.warm_pivot_cap
        } else {
            2 * m + 100
        };
        match self.tab.dual_optimize(cfg.feas_tol, cap, cfg.deadline) {
            DualEnd::TimedOut => return WarmAttempt::Done(LpOutcome::TimedOut),
            // An infeasibility claim from the dual ratio test is only as
            // good as the refactorized tableau. The stuck row itself often
            // carries an interval certificate (branched children with an
            // empty feasible box); anything it cannot certify is confirmed
            // cold so a noisy warm start can never prune a feasible subtree.
            DualEnd::NoEntering { row } => {
                if self.tab.certify_infeasible(row, cfg.feas_tol) {
                    return WarmAttempt::Done(LpOutcome::Infeasible);
                }
                return WarmAttempt::Fallback(self.tab.iterations);
            }
            DualEnd::Cap => return WarmAttempt::Fallback(self.tab.iterations),
            DualEnd::Feasible => {}
        }

        let max_iters = 60 * (m + self.tab.n) + 5_000;
        self.tab.bland = false;
        match self.tab.optimize(max_iters, cfg.deadline) {
            OptimizeEnd::TimedOut => WarmAttempt::Done(LpOutcome::TimedOut),
            // A warm "unbounded" on the child of a bounded parent is far
            // more likely numerical drift than truth; let cold decide.
            OptimizeEnd::IterationCap | OptimizeEnd::Done(StepOutcome::Unbounded) => {
                WarmAttempt::Fallback(self.tab.iterations)
            }
            OptimizeEnd::Done(_) => match self.extract_checked(p, cfg.feas_tol) {
                Some((x, obj)) => WarmAttempt::Done(LpOutcome::Optimal { x, obj }),
                None => WarmAttempt::Fallback(self.tab.iterations),
            },
        }
    }

    /// Hot path: the tableau already realizes `snap` for the parent's
    /// bounds, so only the bound deltas need applying — basic columns just
    /// update their box, nonbasic columns shift `xb` by
    /// `Δ(resting value) · T[·][j]`. No refactorization, no phase 1.
    fn apply_bound_deltas(&mut self, p: &LpProblem<'_>) -> bool {
        self.tab.iterations = 0;
        self.tab.bland = false;
        for j in 0..p.ncols {
            let (nl, nu) = (p.lb[j], p.ub[j]);
            if nl == self.tab.lb[j] && nu == self.tab.ub[j] {
                continue;
            }
            match self.tab.status[j] {
                ColStatus::Basic(_) => {
                    self.tab.lb[j] = nl;
                    self.tab.ub[j] = nu;
                }
                st => {
                    let old_v = match st {
                        ColStatus::AtLower => self.tab.lb[j],
                        ColStatus::AtUpper => self.tab.ub[j],
                        _ => 0.0,
                    };
                    let new_st = match st {
                        ColStatus::AtLower if nl.is_finite() => ColStatus::AtLower,
                        ColStatus::AtUpper if nu.is_finite() => ColStatus::AtUpper,
                        ColStatus::FreeAtZero if nl == f64::NEG_INFINITY && nu == f64::INFINITY => {
                            ColStatus::FreeAtZero
                        }
                        _ => default_status(nl, nu),
                    };
                    let new_v = match new_st {
                        ColStatus::AtLower => nl,
                        ColStatus::AtUpper => nu,
                        _ => 0.0,
                    };
                    let delta = new_v - old_v;
                    if !delta.is_finite() {
                        return false; // resting on an infinite bound: refuse
                    }
                    if delta != 0.0 {
                        let n = self.tab.n;
                        for i in 0..self.tab.m {
                            self.tab.xb[i] -= delta * self.tab.t[i * n + j];
                        }
                    }
                    self.tab.lb[j] = nl;
                    self.tab.ub[j] = nu;
                    self.tab.status[j] = new_st;
                }
            }
        }
        true
    }

    /// Warm path for a snapshot taken on a *different* tableau state:
    /// rebuild the raw rows, then Gauss-Jordan the snapshot's basis
    /// columns to the identity (free row pivoting on the largest available
    /// pivot), carrying the rhs along so `xb = B⁻¹b − B⁻¹N·x_N` drops out.
    /// Returns `false` when the basis is singular for these rows.
    fn refactorize(&mut self, p: &LpProblem<'_>, snap: &BasisSnapshot) -> bool {
        let m = p.rows.len();
        let n_struct = p.ncols;
        let n = n_struct + 2 * m;
        self.n_struct = n_struct;
        let tab = &mut self.tab;
        tab.m = m;
        tab.n = n;
        tab.iterations = 0;
        tab.bland = false;

        tab.t.clear();
        tab.t.resize(m * n, 0.0);
        tab.d.clear();
        tab.d.resize(n, 0.0);
        tab.lb.clear();
        tab.ub.clear();
        tab.lb.extend_from_slice(p.lb);
        tab.ub.extend_from_slice(p.ub);
        for (_, cmp, _) in p.rows {
            match cmp {
                Cmp::Le => {
                    tab.lb.push(0.0);
                    tab.ub.push(f64::INFINITY);
                }
                Cmp::Ge => {
                    tab.lb.push(f64::NEG_INFINITY);
                    tab.ub.push(0.0);
                }
                Cmp::Eq => {
                    tab.lb.push(0.0);
                    tab.ub.push(0.0);
                }
            }
        }
        // Artificials stay fixed at zero; they only exist so a snapshot in
        // which a redundant row kept its artificial basic stays a basis.
        // Phase-1 sign folds are irrelevant here (row scaling by ±1 never
        // changes which column sets are bases), so plain +1 units do.
        tab.lb.resize(n, 0.0);
        tab.ub.resize(n, 0.0);

        self.resid.clear();
        for (i, (terms, _, rhs)) in p.rows.iter().enumerate() {
            for &(j, a) in terms {
                tab.t[i * n + j] = a;
            }
            tab.t[i * n + n_struct + i] = 1.0; // slack
            tab.t[i * n + n_struct + m + i] = 1.0; // artificial
            self.resid.push(*rhs);
        }

        // Resting statuses from the snapshot, sanitized against the
        // child's bounds (a status is only kept if its bound is finite).
        tab.status.clear();
        for (j, st) in snap.status.iter().enumerate() {
            tab.status.push(match st {
                ColStatus::Basic(_) => ColStatus::AtLower, // overwritten below
                ColStatus::AtLower if tab.lb[j].is_finite() => ColStatus::AtLower,
                ColStatus::AtUpper if tab.ub[j].is_finite() => ColStatus::AtUpper,
                ColStatus::FreeAtZero
                    if tab.lb[j] == f64::NEG_INFINITY && tab.ub[j] == f64::INFINITY =>
                {
                    ColStatus::FreeAtZero
                }
                _ => default_status(tab.lb[j], tab.ub[j]),
            });
        }

        // Gauss-Jordan: make each snapshot basis column a unit vector,
        // picking the not-yet-used row with the largest pivot magnitude.
        self.row_used.clear();
        self.row_used.resize(m, false);
        tab.basis.clear();
        tab.basis.resize(m, usize::MAX);
        for &col in &snap.basis {
            let mut best: Option<(usize, f64)> = None;
            for i in 0..m {
                if self.row_used[i] {
                    continue;
                }
                let a = tab.t[i * n + col].abs();
                if best.is_none_or(|(_, b)| a > b) {
                    best = Some((i, a));
                }
            }
            let Some((r, mag)) = best else { return false };
            if mag <= REFACTOR_TOL {
                return false; // singular for the child's rows
            }
            let inv = 1.0 / tab.t[r * n + col];
            for j in 0..n {
                tab.t[r * n + j] *= inv;
            }
            tab.t[r * n + col] = 1.0; // exact
            self.resid[r] *= inv;
            for i in 0..m {
                if i == r {
                    continue;
                }
                let factor = tab.t[i * n + col];
                if factor == 0.0 {
                    continue;
                }
                for j in 0..n {
                    tab.t[i * n + j] -= factor * tab.t[r * n + j];
                }
                tab.t[i * n + col] = 0.0; // exact
                self.resid[i] -= factor * self.resid[r];
            }
            self.row_used[r] = true;
            tab.basis[r] = col;
            tab.status[col] = ColStatus::Basic(r);
        }

        // xb = B⁻¹b − Σ_{nonbasic j with nonzero resting value} T[·][j]·x_j.
        tab.xb.clear();
        tab.xb.extend_from_slice(&self.resid);
        for j in 0..n {
            if matches!(tab.status[j], ColStatus::Basic(_)) {
                continue;
            }
            let v = tab.nonbasic_value(j);
            if v == 0.0 {
                continue;
            }
            for i in 0..m {
                tab.xb[i] -= v * tab.t[i * n + j];
            }
        }
        true
    }

    /// Reads the structural solution off the tableau and re-checks it
    /// against the *original* bounds and rows — the warm path's defense
    /// against accumulated elimination error. `None` means "don't trust
    /// this tableau", which sends the caller to the cold path.
    fn extract_checked(&self, p: &LpProblem<'_>, feas_tol: f64) -> Option<(Vec<f64>, f64)> {
        let mut x = vec![0.0; p.ncols];
        for (j, xv) in x.iter_mut().enumerate() {
            *xv = self.tab.nonbasic_value(j);
        }
        if !verify_primal(p, &x, feas_tol) {
            return None;
        }
        let obj = p.c.iter().zip(&x).map(|(c, v)| c * v).sum();
        Some((x, obj))
    }

    /// The cold two-phase primal, building into this workspace's buffers.
    fn solve_cold(&mut self, p: &LpProblem<'_>, cfg: &LpConfig) -> LpOutcome {
        let m = p.rows.len();
        let n_struct = p.ncols;
        let n_slack = m;
        let n = n_struct + n_slack + m; // + artificials
        self.n_struct = n_struct;

        let tab = &mut self.tab;
        tab.m = m;
        tab.n = n;
        tab.iterations = 0;
        tab.bland = false;

        // Dense tableau of the original system (B = signed identity on
        // artificials initially, folded in below).
        tab.t.clear();
        tab.t.resize(m * n, 0.0);
        tab.lb.clear();
        tab.ub.clear();
        tab.lb.extend_from_slice(p.lb);
        tab.ub.extend_from_slice(p.ub);
        for (_, cmp, _) in p.rows {
            match cmp {
                Cmp::Le => {
                    tab.lb.push(0.0);
                    tab.ub.push(f64::INFINITY);
                }
                Cmp::Ge => {
                    tab.lb.push(f64::NEG_INFINITY);
                    tab.ub.push(0.0);
                }
                Cmp::Eq => {
                    tab.lb.push(0.0);
                    tab.ub.push(0.0);
                }
            }
        }
        tab.lb.resize(n, 0.0);
        tab.ub.resize(n, f64::INFINITY);

        tab.status.clear();
        for j in 0..n_struct + n_slack {
            tab.status.push(default_status(tab.lb[j], tab.ub[j]));
        }
        tab.status.resize(n, ColStatus::AtLower);

        // Row data and initial residuals r_i = b_i - A_i · x_N.
        tab.basis.clear();
        tab.xb.clear();
        for (i, (terms, _, rhs)) in p.rows.iter().enumerate() {
            let mut residual = *rhs;
            for &(j, a) in terms {
                tab.t[i * n + j] = a;
                let xj = match tab.status[j] {
                    ColStatus::AtLower => tab.lb[j],
                    ColStatus::AtUpper => tab.ub[j],
                    _ => 0.0,
                };
                residual -= a * xj;
            }
            // slack column
            let sj = n_struct + i;
            tab.t[i * n + sj] = 1.0;
            let s_val = match tab.status[sj] {
                ColStatus::AtLower => tab.lb[sj],
                ColStatus::AtUpper => tab.ub[sj],
                _ => 0.0,
            };
            residual -= s_val;
            // artificial column, signed so it starts basic and >= 0
            let aj = n_struct + n_slack + i;
            let sign = if residual >= 0.0 { 1.0 } else { -1.0 };
            tab.t[i * n + aj] = sign;
            // Fold B⁻¹ = diag(sign) into the tableau row immediately.
            if sign < 0.0 {
                for j in 0..n {
                    tab.t[i * n + j] = -tab.t[i * n + j];
                }
            }
            tab.basis.push(aj);
            tab.status[aj] = ColStatus::Basic(i);
            tab.xb.push(residual.abs());
        }

        let max_iters = 60 * (m + n) + 5_000;

        // --- Phase 1: minimize the sum of artificials ------------------
        self.cost.clear();
        self.cost.resize(n, 0.0);
        self.cost[n_struct + n_slack..n].fill(1.0);
        let c1 = std::mem::take(&mut self.cost);
        tab.d.clear();
        tab.d.resize(n, 0.0);
        tab.reprice(&c1);
        self.cost = c1;
        match tab.optimize(max_iters, cfg.deadline) {
            OptimizeEnd::IterationCap => return LpOutcome::IterationLimit,
            OptimizeEnd::TimedOut => return LpOutcome::TimedOut,
            OptimizeEnd::Done(StepOutcome::Unbounded) => {
                // Phase-1 objective is bounded below by 0; unboundedness here
                // is numerical nonsense worth flagging loudly in debug builds.
                debug_assert!(false, "phase 1 reported unbounded");
                return LpOutcome::IterationLimit;
            }
            OptimizeEnd::Done(_) => {}
        }
        let phase1_obj: f64 = (0..m)
            .filter(|&i| tab.basis[i] >= n_struct + n_slack)
            .map(|i| tab.xb[i])
            .sum();
        if phase1_obj > cfg.feas_tol.max(1e-7) * (1.0 + phase1_obj.abs()) && phase1_obj > 1e-6 {
            return LpOutcome::Infeasible;
        }

        // Fix artificials at zero so they can never re-enter or grow.
        for j in n_struct + n_slack..n {
            tab.lb[j] = 0.0;
            tab.ub[j] = 0.0;
            if let ColStatus::Basic(r) = tab.status[j] {
                // Snap tiny residuals to exactly zero.
                if tab.xb[r].abs() <= 1e-6 {
                    tab.xb[r] = 0.0;
                }
            } else {
                tab.status[j] = ColStatus::AtLower;
            }
        }

        // --- Phase 2: the real objective -------------------------------
        self.cost.clear();
        self.cost.resize(n, 0.0);
        self.cost[..n_struct].copy_from_slice(p.c);
        let c2 = std::mem::take(&mut self.cost);
        tab.reprice(&c2);
        self.cost = c2;
        tab.bland = false;
        match tab.optimize(max_iters, cfg.deadline) {
            OptimizeEnd::IterationCap => LpOutcome::IterationLimit,
            OptimizeEnd::TimedOut => LpOutcome::TimedOut,
            OptimizeEnd::Done(StepOutcome::Unbounded) => LpOutcome::Unbounded,
            OptimizeEnd::Done(_) => {
                let mut x = vec![0.0; n_struct];
                for (j, xv) in x.iter_mut().enumerate() {
                    *xv = tab.nonbasic_value(j);
                }
                let obj = p.c.iter().zip(&x).map(|(c, v)| c * v).sum();
                LpOutcome::Optimal { x, obj }
            }
        }
    }
}

/// Re-checks a candidate structural solution against the *original* bounds
/// and rows, shared by both kernels' warm-path extraction. A `false` means
/// "don't trust this basis representation" and sends the caller cold.
fn verify_primal(p: &LpProblem<'_>, x: &[f64], feas_tol: f64) -> bool {
    let tol0 = feas_tol.max(1e-7);
    for (j, xv) in x.iter().enumerate() {
        let tol = tol0 * (1.0 + xv.abs());
        if *xv < p.lb[j] - tol || *xv > p.ub[j] + tol {
            return false;
        }
    }
    for (terms, cmp, rhs) in p.rows {
        let lhs: f64 = terms.iter().map(|&(j, a)| a * x[j]).sum();
        let tol = tol0 * (1.0 + rhs.abs());
        let ok = match cmp {
            Cmp::Le => lhs <= rhs + tol,
            Cmp::Ge => lhs >= rhs - tol,
            Cmp::Eq => (lhs - rhs).abs() <= tol,
        };
        if !ok {
            return false;
        }
    }
    true
}

/// Cold one-shot solve on a chosen kernel, kept as a test entry point.
#[cfg(test)]
pub(crate) fn solve_lp_kernel(
    p: &LpProblem<'_>,
    feas_tol: f64,
    opt_tol: f64,
    deadline: Option<Instant>,
    sparse: bool,
) -> LpOutcome {
    let cfg = LpConfig {
        feas_tol,
        opt_tol,
        deadline,
        warm_pivot_cap: 0,
        sparse,
        refactor_interval: 0,
    };
    Workspace::new().solve(p, None, &cfg).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Owned problem data for tests; `LpProblem` itself borrows.
    struct Owned {
        ncols: usize,
        rows: Vec<SparseRow>,
        c: Vec<f64>,
        lb: Vec<f64>,
        ub: Vec<f64>,
    }

    impl Owned {
        fn as_problem(&self) -> LpProblem<'_> {
            LpProblem {
                ncols: self.ncols,
                rows: &self.rows,
                c: &self.c,
                lb: &self.lb,
                ub: &self.ub,
            }
        }
    }

    fn le(terms: Vec<(usize, f64)>, rhs: f64) -> (Vec<(usize, f64)>, Cmp, f64) {
        (terms, Cmp::Le, rhs)
    }
    fn ge(terms: Vec<(usize, f64)>, rhs: f64) -> (Vec<(usize, f64)>, Cmp, f64) {
        (terms, Cmp::Ge, rhs)
    }
    fn eq(terms: Vec<(usize, f64)>, rhs: f64) -> (Vec<(usize, f64)>, Cmp, f64) {
        (terms, Cmp::Eq, rhs)
    }

    fn cfg_kernel(sparse: bool) -> LpConfig {
        LpConfig {
            feas_tol: 1e-7,
            opt_tol: 1e-9,
            deadline: None,
            warm_pivot_cap: 0,
            sparse,
            refactor_interval: 0,
        }
    }

    fn cfg() -> LpConfig {
        cfg_kernel(true)
    }

    /// Differential solve: every in-module case runs on both kernels and
    /// must agree on the outcome variant (and objective, when optimal)
    /// before the sparse result is handed to the assertion.
    fn solve(p: &Owned) -> LpOutcome {
        let dense = solve_lp_kernel(&p.as_problem(), 1e-7, 1e-9, None, false);
        let sparse = solve_lp_kernel(&p.as_problem(), 1e-7, 1e-9, None, true);
        match (&dense, &sparse) {
            (LpOutcome::Optimal { obj: a, .. }, LpOutcome::Optimal { obj: b, .. }) => {
                assert!(
                    (a - b).abs() <= 1e-7 * (1.0 + a.abs()),
                    "dense obj {a} vs sparse obj {b}"
                );
            }
            (d, s) => assert_eq!(
                std::mem::discriminant(d),
                std::mem::discriminant(s),
                "dense {d:?} vs sparse {s:?}"
            ),
        }
        sparse
    }

    fn optimal(p: &Owned) -> (Vec<f64>, f64) {
        match solve(p) {
            LpOutcome::Optimal { x, obj } => (x, obj),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_max_as_min() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 => x=4, y=0, obj 12.
        let p = Owned {
            ncols: 2,
            rows: vec![
                le(vec![(0, 1.0), (1, 1.0)], 4.0),
                le(vec![(0, 1.0), (1, 3.0)], 6.0),
            ],
            c: vec![-3.0, -2.0],
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
        };
        let (x, obj) = optimal(&p);
        assert!((obj + 12.0).abs() < 1e-7);
        assert!((x[0] - 4.0).abs() < 1e-7);
        assert!(x[1].abs() < 1e-7);
    }

    #[test]
    fn equality_and_ge_rows() {
        // min x + y s.t. x + y = 10, x >= 3, y >= 2 -> obj 10.
        let p = Owned {
            ncols: 2,
            rows: vec![
                eq(vec![(0, 1.0), (1, 1.0)], 10.0),
                ge(vec![(0, 1.0)], 3.0),
                ge(vec![(1, 1.0)], 2.0),
            ],
            c: vec![1.0, 1.0],
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
        };
        let (x, obj) = optimal(&p);
        assert!((obj - 10.0).abs() < 1e-7);
        assert!((x[0] + x[1] - 10.0).abs() < 1e-7);
        assert!(x[0] >= 3.0 - 1e-7 && x[1] >= 2.0 - 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let p = Owned {
            ncols: 1,
            rows: vec![ge(vec![(0, 1.0)], 5.0), le(vec![(0, 1.0)], 3.0)],
            c: vec![0.0],
            lb: vec![0.0],
            ub: vec![f64::INFINITY],
        };
        assert!(matches!(solve(&p), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let p = Owned {
            ncols: 1,
            rows: vec![ge(vec![(0, 1.0)], 1.0)],
            c: vec![-1.0],
            lb: vec![0.0],
            ub: vec![f64::INFINITY],
        };
        assert!(matches!(solve(&p), LpOutcome::Unbounded));
    }

    #[test]
    fn bounds_without_rows() {
        // min -x with x in [0, 7]: a pure bound-flip solve, no pivots needed.
        let p = Owned {
            ncols: 1,
            rows: vec![],
            c: vec![-1.0],
            lb: vec![0.0],
            ub: vec![7.0],
        };
        let (x, obj) = optimal(&p);
        assert_eq!(x[0], 7.0);
        assert!((obj + 7.0).abs() < 1e-12);
    }

    #[test]
    fn upper_bounded_vars_via_bound_flips() {
        // max x + y, x <= 2, y <= 3 as bounds, x + y <= 4 as a row.
        let p = Owned {
            ncols: 2,
            rows: vec![le(vec![(0, 1.0), (1, 1.0)], 4.0)],
            c: vec![-1.0, -1.0],
            lb: vec![0.0, 0.0],
            ub: vec![2.0, 3.0],
        };
        let (x, obj) = optimal(&p);
        assert!((obj + 4.0).abs() < 1e-7);
        assert!((x[0] + x[1] - 4.0).abs() < 1e-7);
    }

    #[test]
    fn free_variable() {
        // min x s.t. x >= -5 (x free): optimum -5.
        let p = Owned {
            ncols: 1,
            rows: vec![ge(vec![(0, 1.0)], -5.0)],
            c: vec![1.0],
            lb: vec![f64::NEG_INFINITY],
            ub: vec![f64::INFINITY],
        };
        let (x, obj) = optimal(&p);
        assert!((x[0] + 5.0).abs() < 1e-7);
        assert!((obj + 5.0).abs() < 1e-7);
    }

    #[test]
    fn fixed_variable_via_bounds() {
        // x fixed to 3 by lb=ub, minimize y with y >= x.
        let p = Owned {
            ncols: 2,
            rows: vec![ge(vec![(1, 1.0), (0, -1.0)], 0.0)],
            c: vec![0.0, 1.0],
            lb: vec![3.0, 0.0],
            ub: vec![3.0, f64::INFINITY],
        };
        let (x, obj) = optimal(&p);
        assert!((x[1] - 3.0).abs() < 1e-7);
        assert!((obj - 3.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Klee-Minty-ish degenerate rows; correctness = termination + optimum.
        let p = Owned {
            ncols: 3,
            rows: vec![
                le(vec![(0, 1.0)], 1.0),
                le(vec![(0, 4.0), (1, 1.0)], 8.0),
                le(vec![(0, 8.0), (1, 4.0), (2, 1.0)], 50.0),
                le(vec![(0, 1.0), (1, 1.0), (2, 1.0)], 50.0),
                le(vec![(1, 1.0)], 8.0),
            ],
            c: vec![-4.0, -2.0, -1.0],
            lb: vec![0.0; 3],
            ub: vec![f64::INFINITY; 3],
        };
        let (x, obj) = optimal(&p);
        // Verify feasibility and local optimality versus hand solution:
        // x0=1 (row0), then row1: x1 <= 4, row2: x2 <= 50-8-4x1.
        assert!(x[0] <= 1.0 + 1e-7);
        assert!(obj <= -4.0 * 1.0 - 2.0 * 4.0 - 1.0 * 26.0 + 1e-6);
    }

    #[test]
    fn negative_rhs_rows() {
        // min x s.t. -x <= -4  (i.e. x >= 4)
        let p = Owned {
            ncols: 1,
            rows: vec![le(vec![(0, -1.0)], -4.0)],
            c: vec![1.0],
            lb: vec![0.0],
            ub: vec![f64::INFINITY],
        };
        let (x, _) = optimal(&p);
        assert!((x[0] - 4.0).abs() < 1e-7);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice: redundant artificial stays basic at 0.
        let p = Owned {
            ncols: 2,
            rows: vec![
                eq(vec![(0, 1.0), (1, 1.0)], 2.0),
                eq(vec![(0, 1.0), (1, 1.0)], 2.0),
            ],
            c: vec![1.0, 2.0],
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
        };
        let (x, obj) = optimal(&p);
        assert!((x[0] - 2.0).abs() < 1e-7);
        assert!((obj - 2.0).abs() < 1e-7);
    }

    #[test]
    fn big_m_disjunction_relaxation() {
        // The paper's non-overlap row shape: xi + wi <= xj + W*p with p in
        // [0,1] continuous: LP relaxation should exploit p freely.
        let w = 100.0;
        let p = Owned {
            ncols: 3, // xi, xj, pair
            rows: vec![le(vec![(0, 1.0), (1, -1.0), (2, -w)], -10.0)],
            c: vec![0.0, 1.0, 0.0],
            lb: vec![0.0, 0.0, 0.0],
            ub: vec![50.0, 50.0, 1.0],
        };
        let (x, obj) = optimal(&p);
        // xj can be 0 because the pair var absorbs the offset.
        assert!(obj.abs() < 1e-7);
        assert!(x[2] >= 0.1 - 1e-7);
    }

    // --- warm-start paths ---------------------------------------------

    /// A small MILP-relaxation-shaped problem with a fractional optimum so
    /// tightening a bound actually moves the solution.
    fn branchy() -> Owned {
        Owned {
            ncols: 3,
            rows: vec![
                le(vec![(0, 3.0), (1, 5.0), (2, 4.0)], 10.0),
                le(vec![(0, 2.0), (1, 1.0), (2, 3.0)], 6.0),
                ge(vec![(0, 1.0), (1, 1.0), (2, 1.0)], 1.0),
            ],
            c: vec![-5.0, -4.0, -3.0],
            lb: vec![0.0; 3],
            ub: vec![1.0; 3],
        }
    }

    fn expect_opt(out: &LpOutcome) -> (&[f64], f64) {
        match out {
            LpOutcome::Optimal { x, obj } => (x, *obj),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn hot_warm_start_matches_cold_after_tightening() {
        for c in [cfg_kernel(false), cfg_kernel(true)] {
            let mut p = branchy();
            let mut ws = Workspace::new();
            let (out, info) = ws.solve(&p.as_problem(), None, &c);
            expect_opt(&out);
            assert!(!info.warm);
            let snap = ws.snapshot();

            // Branch x1 down to 0, then up to 1, reusing the same workspace.
            for (lo, hi) in [(0.0, 0.0), (1.0, 1.0)] {
                p.lb[1] = lo;
                p.ub[1] = hi;
                let (warm_out, warm_info) = ws.solve(&p.as_problem(), Some(&snap), &c);
                let (wx, wobj) = expect_opt(&warm_out);
                assert!(warm_info.warm, "expected the warm path for ({lo},{hi})");
                let (cx, cobj) = optimal(&p);
                assert!(
                    (wobj - cobj).abs() <= 1e-9 * (1.0 + cobj.abs()),
                    "warm {wobj} vs cold {cobj}"
                );
                for (a, b) in wx.iter().zip(&cx) {
                    assert!((a - b).abs() < 1e-6, "warm x {wx:?} vs cold {cx:?}");
                }
            }
        }
    }

    #[test]
    fn refactorized_warm_start_from_foreign_workspace() {
        for c in [cfg_kernel(false), cfg_kernel(true)] {
            let mut p = branchy();
            let mut ws1 = Workspace::new();
            let (out, _) = ws1.solve(&p.as_problem(), None, &c);
            expect_opt(&out);
            let snap = ws1.snapshot();

            // A different workspace never saw this basis: must refactorize.
            p.ub[0] = 0.0;
            let mut ws2 = Workspace::new();
            let (warm_out, warm_info) = ws2.solve(&p.as_problem(), Some(&snap), &c);
            let (_, wobj) = expect_opt(&warm_out);
            assert!(warm_info.warm);
            let (_, cobj) = optimal(&p);
            assert!((wobj - cobj).abs() <= 1e-9 * (1.0 + cobj.abs()));
        }
    }

    #[test]
    fn snapshot_crosses_kernels_both_ways() {
        // A basis captured on one kernel must warm-start the other: the
        // snapshot format is kernel-agnostic, and branch-and-bound is free
        // to hand sparse-made snapshots to dense workers (or vice versa).
        for (first, second) in [(false, true), (true, false)] {
            let mut p = branchy();
            let mut ws = Workspace::new();
            let (out, _) = ws.solve(&p.as_problem(), None, &cfg_kernel(first));
            expect_opt(&out);
            let snap = ws.snapshot();

            p.ub[1] = 0.0;
            let (warm_out, info) = ws.solve(&p.as_problem(), Some(&snap), &cfg_kernel(second));
            let (_, wobj) = expect_opt(&warm_out);
            let (_, cobj) = optimal(&p);
            assert!(
                (wobj - cobj).abs() <= 1e-9 * (1.0 + cobj.abs()),
                "cross-kernel warm {wobj} vs cold {cobj}"
            );
            // The hot path must NOT fire across kernels; warm (refactorize)
            // or cold fallback are both acceptable, wrong answers are not.
            let _ = info;
        }
    }

    #[test]
    fn dimension_mismatch_falls_back_cold() {
        let p = branchy();
        let mut ws = Workspace::new();
        ws.solve(&p.as_problem(), None, &cfg());
        let snap = ws.snapshot();

        // A different problem shape must ignore the snapshot entirely.
        let q = Owned {
            ncols: 2,
            rows: vec![le(vec![(0, 1.0), (1, 1.0)], 4.0)],
            c: vec![-3.0, -2.0],
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
        };
        let (out, info) = ws.solve(&q.as_problem(), Some(&snap), &cfg());
        expect_opt(&out);
        assert!(!info.warm);
    }

    #[test]
    fn warm_start_with_redundant_equality_basis() {
        // The snapshot keeps an artificial basic on the redundant row;
        // refactorization must re-admit it as a plain unit column.
        for c in [cfg_kernel(false), cfg_kernel(true)] {
            let mut p = Owned {
                ncols: 2,
                rows: vec![
                    eq(vec![(0, 1.0), (1, 1.0)], 2.0),
                    eq(vec![(0, 1.0), (1, 1.0)], 2.0),
                ],
                c: vec![1.0, 2.0],
                lb: vec![0.0, 0.0],
                ub: vec![2.0, 2.0],
            };
            let mut ws = Workspace::new();
            let (out, _) = ws.solve(&p.as_problem(), None, &c);
            expect_opt(&out);
            let snap = ws.snapshot();

            p.ub[0] = 0.5; // force x1 = 1.5
            let (warm_out, info) = ws.solve(&p.as_problem(), Some(&snap), &c);
            let (x, obj) = expect_opt(&warm_out);
            assert!(info.warm);
            assert!((x[0] - 0.5).abs() < 1e-6);
            assert!((obj - 3.5).abs() < 1e-6);
        }
    }

    #[test]
    fn tiny_pivot_cap_forces_cold_fallback() {
        for mut c in [cfg_kernel(false), cfg_kernel(true)] {
            let mut p = branchy();
            let mut ws = Workspace::new();
            ws.solve(&p.as_problem(), None, &c);
            let snap = ws.snapshot();

            p.ub[1] = 0.0;
            p.lb[2] = 1.0;
            c.warm_pivot_cap = 1; // starve the dual loop so it caps out
            let (out, info) = ws.solve(&p.as_problem(), Some(&snap), &c);
            let (_, wobj) = expect_opt(&out);
            let (_, cobj) = optimal(&p);
            assert!((wobj - cobj).abs() <= 1e-9 * (1.0 + cobj.abs()));
            // Either the dual finished within one pivot (warm) or it fell
            // back cold; both must be correct, a cap must never error out.
            let _ = info;
        }
    }

    #[test]
    fn warm_infeasible_child_is_certified_or_cold_confirmed() {
        // Tighten bounds until the >= 1 row is unsatisfiable. Both valid
        // endings: the stuck dual row certifies infeasibility warm (every
        // helpful column is boxed to zero width), or the claim fails the
        // certificate and a cold solve confirms it. Either way the outcome
        // must be `Infeasible` — never a bogus optimum.
        for c in [cfg_kernel(false), cfg_kernel(true)] {
            let mut p = Owned {
                ncols: 2,
                rows: vec![ge(vec![(0, 1.0), (1, 1.0)], 1.5)],
                c: vec![1.0, 1.0],
                lb: vec![0.0, 0.0],
                ub: vec![1.0, 1.0],
            };
            let mut ws = Workspace::new();
            let (out, _) = ws.solve(&p.as_problem(), None, &c);
            expect_opt(&out);
            let snap = ws.snapshot();

            p.ub[0] = 0.0;
            p.ub[1] = 0.0;
            let (out, _info) = ws.solve(&p.as_problem(), Some(&snap), &c);
            assert!(matches!(out, LpOutcome::Infeasible), "got {out:?}");
        }
    }

    #[test]
    fn infeasibility_certificate_respects_unbounded_columns() {
        // x in [2, 3] must equal the free variable y (y unbounded below
        // via two Ge rows): feasible, but a narrow warm box might tempt a
        // sloppy certificate. The solve must find the optimum, not claim
        // infeasibility.
        for c in [cfg_kernel(false), cfg_kernel(true)] {
            let mut p = Owned {
                ncols: 2,
                rows: vec![
                    ge(vec![(0, 1.0), (1, -1.0)], 0.0),
                    ge(vec![(0, -1.0), (1, 1.0)], 0.0),
                ],
                c: vec![1.0, 0.0],
                lb: vec![0.0, f64::NEG_INFINITY],
                ub: vec![5.0, f64::INFINITY],
            };
            let mut ws = Workspace::new();
            let (out, _) = ws.solve(&p.as_problem(), None, &c);
            expect_opt(&out);
            let snap = ws.snapshot();

            p.lb[0] = 2.0;
            p.ub[0] = 3.0;
            let (out, _) = ws.solve(&p.as_problem(), Some(&snap), &c);
            let LpOutcome::Optimal { obj, .. } = out else {
                panic!("feasible child judged {out:?}");
            };
            assert!((obj - 2.0).abs() < 1e-6, "obj {obj}");
        }
    }

    #[test]
    fn sparse_counters_populated_and_forced_refactor_agrees() {
        // A cold sparse solve factorizes at least once (the initial basis
        // load) and once more for the final accuracy refresh; forcing a
        // refactorization after every pivot must not change the optimum.
        let p = branchy();
        let mut ws = Workspace::new();
        let (out, info) = ws.solve(&p.as_problem(), None, &cfg_kernel(true));
        let (_, obj) = expect_opt(&out);
        assert!(info.refactors >= 1, "refactors {}", info.refactors);

        let mut forced = cfg_kernel(true);
        forced.refactor_interval = 1;
        let mut ws2 = Workspace::new();
        let (out2, info2) = ws2.solve(&p.as_problem(), None, &forced);
        let (_, obj2) = expect_opt(&out2);
        assert!((obj - obj2).abs() <= 1e-9 * (1.0 + obj.abs()));
        assert!(info2.refactors >= info.refactors);
    }
}
