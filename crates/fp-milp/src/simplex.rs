//! Two-phase, bounded-variable primal simplex on a dense tableau.
//!
//! This is the LP engine underneath branch-and-bound. It handles general
//! variable bounds (including free and fixed variables) without expanding
//! them into rows, which matters because every 0-1 variable of the
//! floorplanning MILP would otherwise add a row.
//!
//! Method: all rows are converted to equalities with one slack column each
//! (`<=` gets a slack in `[0, ∞)`, `>=` in `(-∞, 0]`, `==` in `[0, 0]`).
//! Phase 1 adds one artificial column per row, signed so the artificial
//! starts basic and non-negative, and minimizes the sum of artificials.
//! Phase 2 fixes the artificials to zero and optimizes the true objective.
//! Dantzig pricing with a permanent switch to Bland's rule after a stall
//! threshold guards against cycling.

use crate::model::Cmp;
use std::time::Instant;

/// One sparse constraint row: `(terms, comparison, rhs)`.
pub(crate) type SparseRow = (Vec<(usize, f64)>, Cmp, f64);

/// How often (in simplex iterations) the cooperative deadline is polled.
/// `Instant::now()` costs tens of nanoseconds while even a small pivot is
/// microseconds of dense row arithmetic, so polling every 16 iterations is
/// free yet bounds the overshoot past a deadline to 16 pivots.
const DEADLINE_POLL_MASK: usize = 15;

/// A bound-constrained LP in minimization form:
/// `min c·x` subject to `row·x (cmp) rhs` for each row and `lb <= x <= ub`.
///
/// Rows and costs are borrowed so branch-and-bound nodes share them; only
/// the bound vectors differ per node.
#[derive(Debug, Clone)]
pub(crate) struct LpProblem<'a> {
    pub ncols: usize,
    /// Sparse rows: `(terms, cmp, rhs)`.
    pub rows: &'a [SparseRow],
    pub c: &'a [f64],
    pub lb: &'a [f64],
    pub ub: &'a [f64],
}

/// Result of a relaxation solve.
#[derive(Debug, Clone)]
pub(crate) enum LpOutcome {
    /// Optimal basic solution: structural values and objective.
    Optimal {
        x: Vec<f64>,
        obj: f64,
        iterations: usize,
    },
    Infeasible,
    Unbounded,
    /// Safety cap hit; the model is probably badly scaled.
    IterationLimit,
    /// The caller's deadline passed mid-solve (cooperative check inside the
    /// pivot loop, so one long LP cannot overshoot a solve's time limit).
    TimedOut,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColStatus {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Free variable currently parked at zero.
    FreeAtZero,
}

struct Tableau {
    m: usize,
    /// Total columns: structural + slacks + artificials.
    n: usize,
    /// Row-major dense `m x n` tableau, kept equal to `B⁻¹·A`.
    t: Vec<f64>,
    /// Reduced costs for the current phase's cost vector.
    d: Vec<f64>,
    /// Values of the basic variables, one per row.
    xb: Vec<f64>,
    /// Basic column per row.
    basis: Vec<usize>,
    status: Vec<ColStatus>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    opt_tol: f64,
    iterations: usize,
    bland: bool,
}

const PIVOT_TOL: f64 = 1e-9;

enum StepOutcome {
    Optimal,
    Unbounded,
    Pivoted,
}

/// Why a call to [`Tableau::optimize`] stopped iterating.
enum OptimizeEnd {
    Done(StepOutcome),
    IterationCap,
    TimedOut,
}

impl Tableau {
    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.t[i * self.n + j]
    }

    /// Current (non-basic or parked) value of column `j`.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            ColStatus::AtLower => self.lb[j],
            ColStatus::AtUpper => self.ub[j],
            ColStatus::FreeAtZero => 0.0,
            ColStatus::Basic(r) => self.xb[r],
        }
    }

    /// One simplex iteration: price, ratio test, pivot or bound flip.
    fn step(&mut self) -> StepOutcome {
        // --- pricing: pick the entering column -------------------------
        let mut enter: Option<(usize, i8, f64)> = None; // (col, dir, score)
        for j in 0..self.n {
            let (eligible, dir) = match self.status[j] {
                ColStatus::Basic(_) => (false, 0i8),
                ColStatus::AtLower => (self.d[j] < -self.opt_tol, 1),
                ColStatus::AtUpper => (self.d[j] > self.opt_tol, -1),
                ColStatus::FreeAtZero => (
                    self.d[j].abs() > self.opt_tol,
                    if self.d[j] < 0.0 { 1 } else { -1 },
                ),
            };
            if !eligible {
                continue;
            }
            if self.bland {
                enter = Some((j, dir, 0.0));
                break;
            }
            let score = self.d[j].abs();
            if enter.is_none_or(|(_, _, s)| score > s) {
                enter = Some((j, dir, score));
            }
        }
        let Some((q, dir, _)) = enter else {
            return StepOutcome::Optimal;
        };
        let dir = f64::from(dir);

        // --- ratio test ------------------------------------------------
        // The entering variable moves by t >= 0 in direction `dir`; each
        // basic variable changes by -dir * t * T[i][q].
        let own_limit = if self.lb[q].is_finite() && self.ub[q].is_finite() {
            self.ub[q] - self.lb[q]
        } else {
            f64::INFINITY
        };
        let mut t_best = own_limit;
        let mut leave: Option<(usize, bool)> = None; // (row, hits_upper)
        for i in 0..self.m {
            let alpha = dir * self.at(i, q);
            let bi = self.basis[i];
            let (limit, hits_upper) = if alpha > PIVOT_TOL {
                if self.lb[bi].is_finite() {
                    ((self.xb[i] - self.lb[bi]) / alpha, false)
                } else {
                    continue;
                }
            } else if alpha < -PIVOT_TOL {
                if self.ub[bi].is_finite() {
                    ((self.ub[bi] - self.xb[i]) / (-alpha), true)
                } else {
                    continue;
                }
            } else {
                continue;
            };
            let limit = limit.max(0.0); // degenerate steps clamp to zero
            let better = match leave {
                None => limit < t_best - PIVOT_TOL || (t_best.is_infinite() && limit.is_finite()),
                Some((r, _)) => {
                    limit < t_best - PIVOT_TOL
                        // stability tie-break: larger pivot magnitude
                        || (limit < t_best + PIVOT_TOL
                            && self.at(i, q).abs() > self.at(r, q).abs())
                }
            };
            if better {
                t_best = limit;
                leave = Some((i, hits_upper));
            }
        }

        if t_best.is_infinite() {
            return StepOutcome::Unbounded;
        }

        self.iterations += 1;
        let v_q = self.nonbasic_value(q);

        match leave {
            // Bound flip: entering variable runs to its opposite bound.
            None => {
                for i in 0..self.m {
                    self.xb[i] -= dir * t_best * self.at(i, q);
                }
                self.status[q] = if dir > 0.0 {
                    ColStatus::AtUpper
                } else {
                    ColStatus::AtLower
                };
            }
            Some((r, hits_upper)) => {
                for i in 0..self.m {
                    self.xb[i] -= dir * t_best * self.at(i, q);
                }
                let old = self.basis[r];
                // Snap the leaving variable exactly onto the bound it hit.
                self.status[old] = if hits_upper {
                    self.xb[r] = self.ub[old];
                    ColStatus::AtUpper
                } else {
                    self.xb[r] = self.lb[old];
                    ColStatus::AtLower
                };
                let entering_value = v_q + dir * t_best;
                self.pivot(r, q);
                self.basis[r] = q;
                self.status[q] = ColStatus::Basic(r);
                self.xb[r] = entering_value;
            }
        }
        StepOutcome::Pivoted
    }

    /// Gaussian elimination so column `q` becomes the `r`-th unit vector;
    /// also updates the reduced-cost row.
    fn pivot(&mut self, r: usize, q: usize) {
        let n = self.n;
        let piv = self.t[r * n + q];
        debug_assert!(piv.abs() > PIVOT_TOL, "pivot too small: {piv}");
        let inv = 1.0 / piv;
        for j in 0..n {
            self.t[r * n + j] *= inv;
        }
        self.t[r * n + q] = 1.0; // exact
        for i in 0..self.m {
            if i == r {
                continue;
            }
            let factor = self.t[i * n + q];
            if factor == 0.0 {
                continue;
            }
            for j in 0..n {
                self.t[i * n + j] -= factor * self.t[r * n + j];
            }
            self.t[i * n + q] = 0.0; // exact
        }
        let dq = self.d[q];
        if dq != 0.0 {
            for j in 0..n {
                self.d[j] -= dq * self.t[r * n + j];
            }
            self.d[q] = 0.0;
        }
    }

    /// Runs simplex iterations until optimal / unbounded / capped / past
    /// the caller's deadline.
    fn optimize(&mut self, max_iters: usize, deadline: Option<Instant>) -> OptimizeEnd {
        let stall_switch = 3 * (self.m + self.n) + 200;
        let start = self.iterations;
        loop {
            if self.iterations - start > stall_switch {
                self.bland = true;
            }
            if self.iterations > max_iters {
                return OptimizeEnd::IterationCap;
            }
            if self.iterations & DEADLINE_POLL_MASK == 0 {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return OptimizeEnd::TimedOut;
                    }
                }
            }
            match self.step() {
                StepOutcome::Pivoted => continue,
                other => return OptimizeEnd::Done(other),
            }
        }
    }

    /// Recomputes reduced costs `d = c - c_B·T` for a new cost vector.
    fn reprice(&mut self, c: &[f64]) {
        self.d.copy_from_slice(c);
        for i in 0..self.m {
            let cb = c[self.basis[i]];
            if cb == 0.0 {
                continue;
            }
            for j in 0..self.n {
                self.d[j] -= cb * self.t[i * self.n + j];
            }
        }
        for i in 0..self.m {
            self.d[self.basis[i]] = 0.0;
        }
    }
}

/// Solves the LP. `feas_tol` gates phase-1 acceptance, `opt_tol` the pricing.
/// A `deadline`, when given, is polled cooperatively inside the pivot loop so
/// a single long solve cannot overshoot the caller's time budget.
pub(crate) fn solve_lp(
    p: &LpProblem<'_>,
    feas_tol: f64,
    opt_tol: f64,
    deadline: Option<Instant>,
) -> LpOutcome {
    let m = p.rows.len();
    let n_struct = p.ncols;
    let n_slack = m;
    let n = n_struct + n_slack + m; // + artificials

    // Dense tableau of the original system (B = signed identity on
    // artificials initially, folded in below).
    let mut t = vec![0.0; m * n];
    let mut lb = Vec::with_capacity(n);
    let mut ub = Vec::with_capacity(n);
    lb.extend_from_slice(p.lb);
    ub.extend_from_slice(p.ub);
    for (_, cmp, _) in p.rows {
        match cmp {
            Cmp::Le => {
                lb.push(0.0);
                ub.push(f64::INFINITY);
            }
            Cmp::Ge => {
                lb.push(f64::NEG_INFINITY);
                ub.push(0.0);
            }
            Cmp::Eq => {
                lb.push(0.0);
                ub.push(0.0);
            }
        }
    }
    lb.resize(n, 0.0);
    ub.resize(n, f64::INFINITY);

    let mut status = Vec::with_capacity(n);
    for j in 0..n_struct + n_slack {
        status.push(if lb[j].is_finite() {
            ColStatus::AtLower
        } else if ub[j].is_finite() {
            ColStatus::AtUpper
        } else {
            ColStatus::FreeAtZero
        });
    }
    status.resize(n, ColStatus::AtLower);

    // Row data and initial residuals r_i = b_i - A_i · x_N.
    let mut basis = Vec::with_capacity(m);
    let mut xb = Vec::with_capacity(m);
    for (i, (terms, _, rhs)) in p.rows.iter().enumerate() {
        let mut residual = *rhs;
        for &(j, a) in terms {
            t[i * n + j] = a;
            let xj = match status[j] {
                ColStatus::AtLower => lb[j],
                ColStatus::AtUpper => ub[j],
                _ => 0.0,
            };
            residual -= a * xj;
        }
        // slack column
        let sj = n_struct + i;
        t[i * n + sj] = 1.0;
        let s_val = match status[sj] {
            ColStatus::AtLower => lb[sj],
            ColStatus::AtUpper => ub[sj],
            _ => 0.0,
        };
        residual -= s_val;
        // artificial column, signed so it starts basic and >= 0
        let aj = n_struct + n_slack + i;
        let sign = if residual >= 0.0 { 1.0 } else { -1.0 };
        t[i * n + aj] = sign;
        // Fold B⁻¹ = diag(sign) into the tableau row immediately.
        if sign < 0.0 {
            for j in 0..n {
                t[i * n + j] = -t[i * n + j];
            }
        }
        basis.push(aj);
        status[aj] = ColStatus::Basic(i);
        xb.push(residual.abs());
    }

    let mut tab = Tableau {
        m,
        n,
        t,
        d: vec![0.0; n],
        xb,
        basis,
        status,
        lb,
        ub,
        opt_tol,
        iterations: 0,
        bland: false,
    };

    let max_iters = 60 * (m + n) + 5_000;

    // --- Phase 1: minimize the sum of artificials ----------------------
    let mut c1 = vec![0.0; n];
    c1[n_struct + n_slack..n].fill(1.0);
    tab.reprice(&c1);
    match tab.optimize(max_iters, deadline) {
        OptimizeEnd::IterationCap => return LpOutcome::IterationLimit,
        OptimizeEnd::TimedOut => return LpOutcome::TimedOut,
        OptimizeEnd::Done(StepOutcome::Unbounded) => {
            // Phase-1 objective is bounded below by 0; unboundedness here is
            // numerical nonsense worth flagging loudly in debug builds.
            debug_assert!(false, "phase 1 reported unbounded");
            return LpOutcome::IterationLimit;
        }
        OptimizeEnd::Done(_) => {}
    }
    let phase1_obj: f64 = (0..m)
        .filter(|&i| tab.basis[i] >= n_struct + n_slack)
        .map(|i| tab.xb[i])
        .sum();
    if phase1_obj > feas_tol.max(1e-7) * (1.0 + phase1_obj.abs()) && phase1_obj > 1e-6 {
        return LpOutcome::Infeasible;
    }

    // Fix artificials at zero so they can never re-enter or grow.
    for j in n_struct + n_slack..n {
        tab.lb[j] = 0.0;
        tab.ub[j] = 0.0;
        if let ColStatus::Basic(r) = tab.status[j] {
            // Snap tiny residuals to exactly zero.
            if tab.xb[r].abs() <= 1e-6 {
                tab.xb[r] = 0.0;
            }
        } else {
            tab.status[j] = ColStatus::AtLower;
        }
    }

    // --- Phase 2: the real objective -----------------------------------
    let mut c2 = vec![0.0; n];
    c2[..n_struct].copy_from_slice(p.c);
    tab.reprice(&c2);
    tab.bland = false;
    match tab.optimize(max_iters, deadline) {
        OptimizeEnd::IterationCap => LpOutcome::IterationLimit,
        OptimizeEnd::TimedOut => LpOutcome::TimedOut,
        OptimizeEnd::Done(StepOutcome::Unbounded) => LpOutcome::Unbounded,
        OptimizeEnd::Done(_) => {
            let mut x = vec![0.0; n_struct];
            for (j, xv) in x.iter_mut().enumerate() {
                *xv = tab.nonbasic_value(j);
            }
            let obj = p.c.iter().zip(&x).map(|(c, v)| c * v).sum();
            LpOutcome::Optimal {
                x,
                obj,
                iterations: tab.iterations,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Owned problem data for tests; `LpProblem` itself borrows.
    struct Owned {
        ncols: usize,
        rows: Vec<SparseRow>,
        c: Vec<f64>,
        lb: Vec<f64>,
        ub: Vec<f64>,
    }

    impl Owned {
        fn as_problem(&self) -> LpProblem<'_> {
            LpProblem {
                ncols: self.ncols,
                rows: &self.rows,
                c: &self.c,
                lb: &self.lb,
                ub: &self.ub,
            }
        }
    }

    fn le(terms: Vec<(usize, f64)>, rhs: f64) -> (Vec<(usize, f64)>, Cmp, f64) {
        (terms, Cmp::Le, rhs)
    }
    fn ge(terms: Vec<(usize, f64)>, rhs: f64) -> (Vec<(usize, f64)>, Cmp, f64) {
        (terms, Cmp::Ge, rhs)
    }
    fn eq(terms: Vec<(usize, f64)>, rhs: f64) -> (Vec<(usize, f64)>, Cmp, f64) {
        (terms, Cmp::Eq, rhs)
    }

    fn solve(p: &Owned) -> LpOutcome {
        solve_lp(&p.as_problem(), 1e-7, 1e-9, None)
    }

    fn optimal(p: &Owned) -> (Vec<f64>, f64) {
        match solve(p) {
            LpOutcome::Optimal { x, obj, .. } => (x, obj),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_max_as_min() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 => x=4, y=0, obj 12.
        let p = Owned {
            ncols: 2,
            rows: vec![
                le(vec![(0, 1.0), (1, 1.0)], 4.0),
                le(vec![(0, 1.0), (1, 3.0)], 6.0),
            ],
            c: vec![-3.0, -2.0],
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
        };
        let (x, obj) = optimal(&p);
        assert!((obj + 12.0).abs() < 1e-7);
        assert!((x[0] - 4.0).abs() < 1e-7);
        assert!(x[1].abs() < 1e-7);
    }

    #[test]
    fn equality_and_ge_rows() {
        // min x + y s.t. x + y = 10, x >= 3, y >= 2 -> obj 10.
        let p = Owned {
            ncols: 2,
            rows: vec![
                eq(vec![(0, 1.0), (1, 1.0)], 10.0),
                ge(vec![(0, 1.0)], 3.0),
                ge(vec![(1, 1.0)], 2.0),
            ],
            c: vec![1.0, 1.0],
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
        };
        let (x, obj) = optimal(&p);
        assert!((obj - 10.0).abs() < 1e-7);
        assert!((x[0] + x[1] - 10.0).abs() < 1e-7);
        assert!(x[0] >= 3.0 - 1e-7 && x[1] >= 2.0 - 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let p = Owned {
            ncols: 1,
            rows: vec![ge(vec![(0, 1.0)], 5.0), le(vec![(0, 1.0)], 3.0)],
            c: vec![0.0],
            lb: vec![0.0],
            ub: vec![f64::INFINITY],
        };
        assert!(matches!(solve(&p), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let p = Owned {
            ncols: 1,
            rows: vec![ge(vec![(0, 1.0)], 1.0)],
            c: vec![-1.0],
            lb: vec![0.0],
            ub: vec![f64::INFINITY],
        };
        assert!(matches!(solve(&p), LpOutcome::Unbounded));
    }

    #[test]
    fn bounds_without_rows() {
        // min -x with x in [0, 7]: a pure bound-flip solve, no pivots needed.
        let p = Owned {
            ncols: 1,
            rows: vec![],
            c: vec![-1.0],
            lb: vec![0.0],
            ub: vec![7.0],
        };
        let (x, obj) = optimal(&p);
        assert_eq!(x[0], 7.0);
        assert!((obj + 7.0).abs() < 1e-12);
    }

    #[test]
    fn upper_bounded_vars_via_bound_flips() {
        // max x + y, x <= 2, y <= 3 as bounds, x + y <= 4 as a row.
        let p = Owned {
            ncols: 2,
            rows: vec![le(vec![(0, 1.0), (1, 1.0)], 4.0)],
            c: vec![-1.0, -1.0],
            lb: vec![0.0, 0.0],
            ub: vec![2.0, 3.0],
        };
        let (x, obj) = optimal(&p);
        assert!((obj + 4.0).abs() < 1e-7);
        assert!((x[0] + x[1] - 4.0).abs() < 1e-7);
    }

    #[test]
    fn free_variable() {
        // min x s.t. x >= -5 (x free): optimum -5.
        let p = Owned {
            ncols: 1,
            rows: vec![ge(vec![(0, 1.0)], -5.0)],
            c: vec![1.0],
            lb: vec![f64::NEG_INFINITY],
            ub: vec![f64::INFINITY],
        };
        let (x, obj) = optimal(&p);
        assert!((x[0] + 5.0).abs() < 1e-7);
        assert!((obj + 5.0).abs() < 1e-7);
    }

    #[test]
    fn fixed_variable_via_bounds() {
        // x fixed to 3 by lb=ub, minimize y with y >= x.
        let p = Owned {
            ncols: 2,
            rows: vec![ge(vec![(1, 1.0), (0, -1.0)], 0.0)],
            c: vec![0.0, 1.0],
            lb: vec![3.0, 0.0],
            ub: vec![3.0, f64::INFINITY],
        };
        let (x, obj) = optimal(&p);
        assert!((x[1] - 3.0).abs() < 1e-7);
        assert!((obj - 3.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Klee-Minty-ish degenerate rows; correctness = termination + optimum.
        let p = Owned {
            ncols: 3,
            rows: vec![
                le(vec![(0, 1.0)], 1.0),
                le(vec![(0, 4.0), (1, 1.0)], 8.0),
                le(vec![(0, 8.0), (1, 4.0), (2, 1.0)], 50.0),
                le(vec![(0, 1.0), (1, 1.0), (2, 1.0)], 50.0),
                le(vec![(1, 1.0)], 8.0),
            ],
            c: vec![-4.0, -2.0, -1.0],
            lb: vec![0.0; 3],
            ub: vec![f64::INFINITY; 3],
        };
        let (x, obj) = optimal(&p);
        // Verify feasibility and local optimality versus hand solution:
        // x0=1 (row0), then row1: x1 <= 4, row2: x2 <= 50-8-4x1.
        assert!(x[0] <= 1.0 + 1e-7);
        assert!(obj <= -4.0 * 1.0 - 2.0 * 4.0 - 1.0 * 26.0 + 1e-6);
    }

    #[test]
    fn negative_rhs_rows() {
        // min x s.t. -x <= -4  (i.e. x >= 4)
        let p = Owned {
            ncols: 1,
            rows: vec![le(vec![(0, -1.0)], -4.0)],
            c: vec![1.0],
            lb: vec![0.0],
            ub: vec![f64::INFINITY],
        };
        let (x, _) = optimal(&p);
        assert!((x[0] - 4.0).abs() < 1e-7);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice: redundant artificial stays basic at 0.
        let p = Owned {
            ncols: 2,
            rows: vec![
                eq(vec![(0, 1.0), (1, 1.0)], 2.0),
                eq(vec![(0, 1.0), (1, 1.0)], 2.0),
            ],
            c: vec![1.0, 2.0],
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
        };
        let (x, obj) = optimal(&p);
        assert!((x[0] - 2.0).abs() < 1e-7);
        assert!((obj - 2.0).abs() < 1e-7);
    }

    #[test]
    fn big_m_disjunction_relaxation() {
        // The paper's non-overlap row shape: xi + wi <= xj + W*p with p in
        // [0,1] continuous: LP relaxation should exploit p freely.
        let w = 100.0;
        let p = Owned {
            ncols: 3, // xi, xj, pair
            rows: vec![le(vec![(0, 1.0), (1, -1.0), (2, -w)], -10.0)],
            c: vec![0.0, 1.0, 0.0],
            lb: vec![0.0, 0.0, 0.0],
            ub: vec![50.0, 50.0, 1.0],
        };
        let (x, obj) = optimal(&p);
        // xj can be 0 because the pair var absorbs the offset.
        assert!(obj.abs() < 1e-7);
        assert!(x[2] >= 0.1 - 1e-7);
    }
}
