//! Parsing the CPLEX-LP-style text format back into a [`Model`].
//!
//! Together with [`Model::to_lp_string`] this gives a complete round-trip:
//! dump a floorplanning step MILP to a file, edit it by hand, and re-solve
//! it — the same debugging workflow the paper's authors had with LINDO
//! decks.

use crate::error::SolveError;
use crate::expr::LinExpr;
use crate::model::{Cmp, Model, Sense};
use crate::var::{Var, VarKind};
use std::collections::HashMap;

/// Parses a model from LP-format text (the dialect emitted by
/// [`Model::to_lp_string`]: `Minimize`/`Maximize`, `Subject To`, `Bounds`,
/// `Binaries`, `Generals`, `End`).
///
/// Variables are created in order of first appearance; bounds default to
/// `[0, ∞)` as in the LP format convention.
///
/// # Errors
///
/// [`SolveError::InvalidModel`] describing the first malformed token.
///
/// ```
/// use fp_milp::{Model, Sense, parse_lp};
/// # fn main() -> Result<(), fp_milp::SolveError> {
/// let mut m = Model::new(Sense::Maximize);
/// let x = m.add_continuous("x", 0.0, 4.0);
/// let b = m.add_binary("b");
/// m.add_le(x + 10.0 * b, 7.0);
/// m.set_objective(x + 2.0 * b);
/// let reparsed = parse_lp(&m.to_lp_string())?;
/// let (a, b) = (m.solve()?, reparsed.solve()?);
/// assert!((a.objective() - b.objective()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn parse_lp(text: &str) -> Result<Model, SolveError> {
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        Objective,
        Constraints,
        Bounds,
        Binaries,
        Generals,
        Done,
    }

    let bad = |why: String| SolveError::InvalidModel(why);
    let mut sense = None;
    let mut section = Section::Done;
    let mut names: HashMap<String, Var> = HashMap::new();
    let mut objective_text = String::new();
    let mut constraint_texts: Vec<String> = Vec::new();
    let mut bounds: Vec<(String, f64, f64)> = Vec::new();
    let mut binaries: Vec<String> = Vec::new();
    let mut generals: Vec<String> = Vec::new();

    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        match lower.as_str() {
            "minimize" => {
                sense = Some(Sense::Minimize);
                section = Section::Objective;
                continue;
            }
            "maximize" => {
                sense = Some(Sense::Maximize);
                section = Section::Objective;
                continue;
            }
            "subject to" | "st" | "s.t." => {
                section = Section::Constraints;
                continue;
            }
            "bounds" => {
                section = Section::Bounds;
                continue;
            }
            "binaries" | "binary" => {
                section = Section::Binaries;
                continue;
            }
            "generals" | "general" => {
                section = Section::Generals;
                continue;
            }
            "end" => {
                section = Section::Done;
                continue;
            }
            _ => {}
        }
        match section {
            Section::Objective => objective_text.push_str(&strip_label(line)),
            Section::Constraints => constraint_texts.push(strip_label(line)),
            Section::Bounds => {
                // "<lo> <= name <= <hi>" with -inf/+inf allowed.
                let tokens: Vec<&str> = line.split_whitespace().collect();
                if tokens.len() == 5 && tokens[1] == "<=" && tokens[3] == "<=" {
                    let lo =
                        parse_bound(tokens[0]).ok_or_else(|| bad(format!("bad bound {line}")))?;
                    let hi =
                        parse_bound(tokens[4]).ok_or_else(|| bad(format!("bad bound {line}")))?;
                    bounds.push((tokens[2].to_string(), lo, hi));
                } else {
                    return Err(bad(format!("unsupported bounds line '{line}'")));
                }
            }
            Section::Binaries => binaries.push(line.to_string()),
            Section::Generals => generals.push(line.to_string()),
            Section::Done => return Err(bad(format!("unexpected line '{line}' outside sections"))),
        }
    }

    let sense = sense.ok_or_else(|| bad("missing Minimize/Maximize header".into()))?;
    let mut model = Model::new(sense);

    // Create variables in order of first appearance across all sections.
    let mut ensure_var = |model: &mut Model, names: &mut HashMap<String, Var>, n: &str| -> Var {
        if let Some(&v) = names.get(n) {
            v
        } else {
            let v = model.add_continuous(n, 0.0, f64::INFINITY);
            names.insert(n.to_string(), v);
            v
        }
    };

    let objective = parse_expr(&objective_text, &mut model, &mut names, &mut ensure_var)?;
    model.set_objective(objective);

    for text in &constraint_texts {
        let (lhs_text, cmp, rhs_text) = split_relation(text)
            .ok_or_else(|| bad(format!("constraint without relation: '{text}'")))?;
        let lhs = parse_expr(&lhs_text, &mut model, &mut names, &mut ensure_var)?;
        let rhs: f64 = rhs_text
            .trim()
            .parse()
            .map_err(|_| bad(format!("bad rhs '{rhs_text}'")))?;
        model.add_constraint(lhs, cmp, rhs);
    }

    for (name, lo, hi) in bounds {
        let v = ensure_var(&mut model, &mut names, &name);
        model.set_bounds(v, lo, hi);
    }
    for name in binaries {
        let v = ensure_var(&mut model, &mut names, &name);
        model.set_kind(v, VarKind::Binary); // clamps bounds into [0, 1]
    }
    for name in generals {
        let v = ensure_var(&mut model, &mut names, &name);
        model.set_kind(v, VarKind::Integer);
    }
    Ok(model)
}

/// Strips a leading "label:" if present.
fn strip_label(line: &str) -> String {
    match line.split_once(':') {
        Some((label, rest)) if !label.contains(char::is_whitespace) => rest.trim().to_string(),
        _ => line.trim().to_string(),
    }
}

fn parse_bound(token: &str) -> Option<f64> {
    match token {
        "-inf" | "-infinity" => Some(f64::NEG_INFINITY),
        "+inf" | "inf" | "+infinity" => Some(f64::INFINITY),
        other => other.parse().ok(),
    }
}

fn split_relation(text: &str) -> Option<(String, Cmp, String)> {
    for (op, cmp) in [("<=", Cmp::Le), (">=", Cmp::Ge), ("=", Cmp::Eq)] {
        if let Some(pos) = text.find(op) {
            return Some((
                text[..pos].to_string(),
                cmp,
                text[pos + op.len()..].to_string(),
            ));
        }
    }
    None
}

/// Parses `c1 name1 + c2 name2 - c3 name3 ...` (coefficients optional).
fn parse_expr(
    text: &str,
    model: &mut Model,
    names: &mut HashMap<String, Var>,
    ensure_var: &mut impl FnMut(&mut Model, &mut HashMap<String, Var>, &str) -> Var,
) -> Result<LinExpr, SolveError> {
    let bad = |why: String| SolveError::InvalidModel(why);
    let mut expr = LinExpr::new();
    let mut sign = 1.0;
    let mut pending: Option<f64> = None;
    for token in text.split_whitespace() {
        match token {
            "+" => {
                flush(&mut expr, &mut pending, sign);
                sign = 1.0;
            }
            "-" => {
                flush(&mut expr, &mut pending, sign);
                sign = -1.0;
            }
            t => {
                if let Ok(value) = t.parse::<f64>() {
                    if let Some(prev) = pending {
                        return Err(bad(format!("two numbers in a row: {prev} {value}")));
                    }
                    pending = Some(value);
                } else {
                    let coeff = sign * pending.take().unwrap_or(1.0);
                    let v = ensure_var(model, names, t);
                    expr.add_term(v, coeff);
                    sign = 1.0;
                }
            }
        }
    }
    flush(&mut expr, &mut pending, sign);
    Ok(expr)
}

fn flush(expr: &mut LinExpr, pending: &mut Option<f64>, sign: f64) {
    if let Some(c) = pending.take() {
        expr.add_constant(sign * c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sense;

    #[test]
    fn parse_simple_lp() {
        let text = "Minimize\n obj: 2 x + 3 y\nSubject To\n c0: x + y >= 4\nBounds\n 0 <= x <= 10\n 0 <= y <= 10\nEnd\n";
        let m = parse_lp(text).unwrap();
        assert_eq!(m.sense(), Sense::Minimize);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        let sol = m.solve().unwrap();
        assert!((sol.objective() - 8.0).abs() < 1e-7); // x = 4, y = 0
    }

    #[test]
    fn round_trip_preserves_optimum() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let x = m.add_continuous("x", -2.0, 8.0);
        let n = m.add_integer("n", 0.0, 5.0);
        m.add_le(3.0 * a + 2.0 * b + x, 7.0);
        m.add_ge(x + 1.0 * n, 1.0);
        m.add_eq(1.0 * a + 1.0 * b, 1.0);
        m.set_objective(5.0 * a + 4.0 * b + x + 2.0 * n);
        let original = m.solve().unwrap();
        let reparsed = parse_lp(&m.to_lp_string()).unwrap();
        assert_eq!(reparsed.num_vars(), m.num_vars());
        assert_eq!(reparsed.num_integer_vars(), m.num_integer_vars());
        let again = reparsed.solve().unwrap();
        assert!(
            (original.objective() - again.objective()).abs() < 1e-6,
            "{} vs {}",
            original.objective(),
            again.objective()
        );
    }

    #[test]
    fn infinity_bounds_and_negatives() {
        let text = "Minimize\n obj: x\nSubject To\n c0: x >= -5\nBounds\n -inf <= x <= +inf\nEnd\n";
        let m = parse_lp(text).unwrap();
        let sol = m.solve().unwrap();
        assert!((sol.value(crate::Var(0)) + 5.0).abs() < 1e-7);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_lp("nonsense").is_err());
        assert!(parse_lp("Minimize\n obj: x\nSubject To\n c0: x z\nEnd").is_err());
        assert!(parse_lp("Minimize\n x\nBounds\n x >= broken\nEnd").is_err());
    }

    #[test]
    fn coefficientless_terms() {
        let text = "Maximize\n obj: x + y\nSubject To\n c: x + y <= 3\nEnd\n";
        let m = parse_lp(text).unwrap();
        let sol = m.solve().unwrap();
        assert!((sol.objective() - 3.0).abs() < 1e-7);
    }
}
