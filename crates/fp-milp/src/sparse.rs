//! Sparse revised simplex kernel: a CSC constraint matrix, an
//! LU-factorized basis with a product-form **eta file** between pivots,
//! periodic refactorization on a fill / instability trigger, and partial
//! pricing over the nonbasic set.
//!
//! This kernel implements exactly the same bounded-variable two-phase
//! primal and dual simplex semantics as the dense tableau in `simplex.rs`
//! (same slack/artificial column layout, same pivot eligibility rules,
//! tie-breaks, stall-to-Bland switch, and tolerances), so the two engines
//! are interchangeable behind [`Workspace`](crate::simplex::Workspace) and
//! can be differentially tested against each other. The difference is pure
//! arithmetic: instead of maintaining `B⁻¹·A` densely (O(m·n) per pivot),
//! the revised method keeps an LU factorization of the `m×m` basis and
//! answers the two linear systems each pivot needs —
//! `FTRAN: B·α = a_q` and `BTRAN: Bᵀ·y = c_B` — through the factors plus a
//! short eta file, at a cost proportional to the actual nonzeros.
//!
//! **Eta file.** After a pivot that replaces basis position `p` with
//! entering column `q`, the new basis is `B' = B·E` where `E` is the
//! identity except column `p`, which holds `α = B⁻¹·a_q`. Rather than
//! refactorizing, the update is recorded as the sparse vector `(p, α)`;
//! `FTRAN` applies `E⁻¹` after the LU solve and `BTRAN` applies `E⁻ᵀ`
//! before it, in reverse order. The file is capped: after
//! `refactor_interval` updates (or when a transformed pivot element comes
//! out suspiciously small relative to its column) the basis is
//! refactorized from scratch and `x_B` is recomputed from the raw rows,
//! which also repairs accumulated floating-point drift.

use crate::model::Cmp;
use crate::simplex::{
    default_status, BasisSnapshot, ColStatus, DualEnd, LpConfig, LpOutcome, LpProblem, OptimizeEnd,
    SparseRow, StepOutcome, DEADLINE_POLL_MASK, PIVOT_TOL, REFACTOR_TOL,
};
use std::time::Instant;

/// Eta updates tolerated between refactorizations when
/// [`LpConfig::refactor_interval`] is `0` (auto). Large enough that short
/// warm dual repairs never refactorize mid-node, small enough that the eta
/// file stays cheaper to apply than a fresh factorization of the basis.
const DEFAULT_REFACTOR_INTERVAL: usize = 64;

/// A transformed pivot element smaller than this fraction of its column's
/// largest entry signals elimination error building up in the eta file and
/// schedules a refactorization right after the pivot is applied.
const STABILITY_TOL: f64 = 1e-7;

/// Partial pricing scans the nonbasic set in cyclic blocks of this many
/// columns (at least), picking the best reduced cost seen in the first
/// block that contains an eligible column.
const PRICE_BLOCK: usize = 64;

/// CSC storage of the structural columns. Slack and artificial columns are
/// implicit unit vectors and never stored: slack `i` is `+e_i`, artificial
/// `i` is `sign_i·e_i` with a per-row sign chosen at cold start so the
/// artificial enters the basis non-negative (snapshot loads use `+1`,
/// where the sign is irrelevant — row scaling never changes which column
/// sets are bases).
struct Csc {
    m: usize,
    n_struct: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    val: Vec<f64>,
    /// CSR mirror of the structural columns, for row-wise PRICE: computing
    /// `ρᵀ·A` by scattering ρ's nonzero rows costs the touched rows' entries
    /// instead of one sparse dot per nonbasic column.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    rval: Vec<f64>,
    /// Identity of the row set this matrix was built from, so consecutive
    /// node solves over the same rows skip the rebuild.
    key: (usize, usize, usize),
}

impl Csc {
    fn new() -> Self {
        Csc {
            m: 0,
            n_struct: 0,
            col_ptr: vec![0],
            row_idx: Vec::new(),
            val: Vec::new(),
            row_ptr: vec![0],
            col_idx: Vec::new(),
            rval: Vec::new(),
            key: (0, usize::MAX, usize::MAX),
        }
    }

    /// Rebuilds the matrix from `rows`. Duplicate terms within a row keep
    /// the last occurrence, matching the dense builder's overwrite.
    fn build(&mut self, rows: &[SparseRow], ncols: usize) {
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
        let mut tmp: Vec<(usize, f64)> = Vec::new();
        for (i, (terms, _, _)) in rows.iter().enumerate() {
            tmp.clear();
            tmp.extend_from_slice(terms);
            tmp.sort_by_key(|&(j, _)| j); // stable: duplicates keep order
            let mut k = 0;
            while k < tmp.len() {
                let j = tmp[k].0;
                let mut a = tmp[k].1;
                while k + 1 < tmp.len() && tmp[k + 1].0 == j {
                    k += 1;
                    a = tmp[k].1;
                }
                if a != 0.0 {
                    cols[j].push((i, a));
                }
                k += 1;
            }
        }
        self.col_ptr.clear();
        self.row_idx.clear();
        self.val.clear();
        self.col_ptr.push(0);
        for col in &cols {
            for &(i, a) in col {
                self.row_idx.push(i);
                self.val.push(a);
            }
            self.col_ptr.push(self.row_idx.len());
        }
        self.row_ptr.clear();
        self.col_idx.clear();
        self.rval.clear();
        self.row_ptr.resize(rows.len() + 1, 0);
        for &i in &self.row_idx {
            self.row_ptr[i + 1] += 1;
        }
        for i in 0..rows.len() {
            self.row_ptr[i + 1] += self.row_ptr[i];
        }
        self.col_idx.resize(self.row_idx.len(), 0);
        self.rval.resize(self.row_idx.len(), 0.0);
        let mut next = self.row_ptr.clone();
        for (j, col) in cols.iter().enumerate() {
            for &(i, a) in col {
                let slot = next[i];
                self.col_idx[slot] = j;
                self.rval[slot] = a;
                next[i] += 1;
            }
        }
        self.m = rows.len();
        self.n_struct = ncols;
    }

    /// Writes `ρᵀ·A` over all columns (structural, slack, artificial) into
    /// `out`, visiting only ρ's nonzero rows. `out[..n]` is fully rewritten.
    fn price_row(&self, art_sign: &[f64], rho: &[f64], out: &mut [f64]) {
        let n = self.n_struct + 2 * self.m;
        out[..n].fill(0.0);
        for (i, &r) in rho.iter().enumerate().take(self.m) {
            if r == 0.0 {
                continue;
            }
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[self.col_idx[idx]] += r * self.rval[idx];
            }
            out[self.n_struct + i] = r;
            out[self.n_struct + self.m + i] = art_sign[i] * r;
        }
    }

    /// Adds column `j` (structural, slack, or artificial) scaled by `scale`
    /// into the dense row-space vector `out`.
    fn axpy(&self, art_sign: &[f64], j: usize, scale: f64, out: &mut [f64]) {
        if j < self.n_struct {
            for idx in self.col_ptr[j]..self.col_ptr[j + 1] {
                out[self.row_idx[idx]] += scale * self.val[idx];
            }
        } else if j < self.n_struct + self.m {
            out[j - self.n_struct] += scale;
        } else {
            let i = j - self.n_struct - self.m;
            out[i] += scale * art_sign[i];
        }
    }

    /// Dot product of column `j` with the dense row-space vector `y`.
    fn dot(&self, art_sign: &[f64], j: usize, y: &[f64]) -> f64 {
        if j < self.n_struct {
            let mut acc = 0.0;
            for idx in self.col_ptr[j]..self.col_ptr[j + 1] {
                acc += self.val[idx] * y[self.row_idx[idx]];
            }
            acc
        } else if j < self.n_struct + self.m {
            y[j - self.n_struct]
        } else {
            let i = j - self.n_struct - self.m;
            art_sign[i] * y[i]
        }
    }
}

/// LU factors of the basis from a left-looking elimination with partial
/// (largest-magnitude) row pivoting. Elimination step `k` processes basis
/// position `k` and pivots on row `prow[k]`; `L` is stored as one
/// elementary transform per step (`v[row] -= mult · v[prow[k]]`) and `U`
/// column-wise in step space.
struct Lu {
    m: usize,
    prow: Vec<usize>,
    l_start: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    u_start: Vec<usize>,
    u_steps: Vec<usize>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
}

impl Lu {
    fn new() -> Self {
        Lu {
            m: 0,
            prow: Vec::new(),
            l_start: vec![0],
            l_rows: Vec::new(),
            l_vals: Vec::new(),
            u_start: vec![0],
            u_steps: Vec::new(),
            u_vals: Vec::new(),
            u_diag: Vec::new(),
        }
    }

    /// Factorizes the basis given by `basis` against `mat`, using `work`
    /// (dense row-space scratch) and `unpiv` (scratch list of rows not yet
    /// chosen as pivots, so step `k` touches only the `m − k` candidate rows
    /// instead of rescanning all `m`). Returns `false` when some basis
    /// column is numerically dependent on the previous ones (pivot below
    /// [`REFACTOR_TOL`]), leaving `self` unspecified — callers keep a
    /// scratch copy and swap on success.
    fn factorize(
        &mut self,
        mat: &Csc,
        art_sign: &[f64],
        basis: &[usize],
        work: &mut [f64],
        unpiv: &mut Vec<usize>,
    ) -> bool {
        let m = basis.len();
        self.m = m;
        self.prow.clear();
        self.l_start.clear();
        self.l_start.push(0);
        self.l_rows.clear();
        self.l_vals.clear();
        self.u_start.clear();
        self.u_start.push(0);
        self.u_steps.clear();
        self.u_vals.clear();
        self.u_diag.clear();
        unpiv.clear();
        unpiv.extend(0..m);

        for (k, &col) in basis.iter().enumerate() {
            work[..m].fill(0.0);
            mat.axpy(art_sign, col, 1.0, work);
            // Apply the previous elementary transforms in order.
            for kk in 0..k {
                let pv = work[self.prow[kk]];
                if pv != 0.0 {
                    for idx in self.l_start[kk]..self.l_start[kk + 1] {
                        work[self.l_rows[idx]] -= self.l_vals[idx] * pv;
                    }
                }
            }
            // Entries at already-pivoted rows become this U column.
            for j in 0..k {
                let u = work[self.prow[j]];
                if u != 0.0 {
                    self.u_steps.push(j);
                    self.u_vals.push(u);
                }
            }
            self.u_start.push(self.u_steps.len());
            // Partial pivoting among the rows not pivoted yet.
            let mut best: Option<(usize, f64)> = None;
            for (t, &r) in unpiv.iter().enumerate() {
                let a = work[r].abs();
                if best.is_none_or(|(_, b)| a > b) {
                    best = Some((t, a));
                }
            }
            let Some((t, mag)) = best else { return false };
            if mag <= REFACTOR_TOL {
                return false;
            }
            let r = unpiv.swap_remove(t);
            let piv = work[r];
            self.prow.push(r);
            self.u_diag.push(piv);
            // Remaining unpivoted rows hold this step's L multipliers.
            for &rr in unpiv.iter() {
                let w = work[rr];
                if w != 0.0 {
                    self.l_rows.push(rr);
                    self.l_vals.push(w / piv);
                }
            }
            self.l_start.push(self.l_rows.len());
        }
        true
    }
}

/// The product-form eta file: one sparse column per basis update since the
/// last refactorization.
struct EtaFile {
    count: usize,
    pos: Vec<usize>,
    inv_piv: Vec<f64>,
    start: Vec<usize>,
    idx: Vec<usize>,
    val: Vec<f64>,
}

impl EtaFile {
    fn new() -> Self {
        EtaFile {
            count: 0,
            pos: Vec::new(),
            inv_piv: Vec::new(),
            start: vec![0],
            idx: Vec::new(),
            val: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.count = 0;
        self.pos.clear();
        self.inv_piv.clear();
        self.start.clear();
        self.start.push(0);
        self.idx.clear();
        self.val.clear();
    }

    /// Records the update `basis[p] := q` with `alpha = B⁻¹·a_q`.
    fn push(&mut self, p: usize, alpha: &[f64]) {
        self.pos.push(p);
        self.inv_piv.push(1.0 / alpha[p]);
        for (i, &a) in alpha.iter().enumerate() {
            if i != p && a != 0.0 {
                self.idx.push(i);
                self.val.push(a);
            }
        }
        self.start.push(self.idx.len());
        self.count += 1;
    }

    /// Applies `E_1⁻¹ … E_k⁻¹` (in recording order) to the position-space
    /// vector `v` — the FTRAN tail.
    fn apply_ftran(&self, v: &mut [f64]) {
        for e in 0..self.count {
            let p = self.pos[e];
            let xp = v[p] * self.inv_piv[e];
            v[p] = xp;
            if xp != 0.0 {
                for idx in self.start[e]..self.start[e + 1] {
                    v[self.idx[idx]] -= self.val[idx] * xp;
                }
            }
        }
    }

    /// Applies `E_k⁻ᵀ … E_1⁻ᵀ` (reverse order) to the position-space
    /// vector `c` — the BTRAN head.
    fn apply_btran(&self, c: &mut [f64]) {
        for e in (0..self.count).rev() {
            let p = self.pos[e];
            let mut acc = c[p];
            for idx in self.start[e]..self.start[e + 1] {
                acc -= self.val[idx] * c[self.idx[idx]];
            }
            c[p] = acc * self.inv_piv[e];
        }
    }
}

/// FTRAN: solves `B·x = v` with `v` dense in row space, writing the basis
/// coefficients (position space) into `out`. `v` is destroyed.
fn ftran(lu: &Lu, etas: &EtaFile, v: &mut [f64], out: &mut [f64]) {
    let m = lu.m;
    for k in 0..m {
        let pv = v[lu.prow[k]];
        if pv != 0.0 {
            for idx in lu.l_start[k]..lu.l_start[k + 1] {
                v[lu.l_rows[idx]] -= lu.l_vals[idx] * pv;
            }
        }
    }
    for k in (0..m).rev() {
        let z = v[lu.prow[k]] / lu.u_diag[k];
        out[k] = z;
        if z != 0.0 {
            for idx in lu.u_start[k]..lu.u_start[k + 1] {
                v[lu.prow[lu.u_steps[idx]]] -= lu.u_vals[idx] * z;
            }
        }
    }
    etas.apply_ftran(&mut out[..m]);
}

/// BTRAN: solves `Bᵀ·y = c` with `c` dense in position space, writing the
/// row-space duals into `out`. `c` is destroyed.
fn btran(lu: &Lu, etas: &EtaFile, c: &mut [f64], out: &mut [f64]) {
    let m = lu.m;
    etas.apply_btran(&mut c[..m]);
    // Forward solve Uᵀ·w = c in step space, reusing `c` as `w`.
    for k in 0..m {
        let mut acc = c[k];
        for idx in lu.u_start[k]..lu.u_start[k + 1] {
            acc -= lu.u_vals[idx] * c[lu.u_steps[idx]];
        }
        c[k] = acc / lu.u_diag[k];
    }
    // Scatter to row space and apply the transposed transforms in reverse.
    out[..m].fill(0.0);
    for k in 0..m {
        out[lu.prow[k]] = c[k];
    }
    for k in (0..m).rev() {
        let mut s = out[lu.prow[k]];
        for idx in lu.l_start[k]..lu.l_start[k + 1] {
            s -= lu.l_vals[idx] * out[lu.l_rows[idx]];
        }
        out[lu.prow[k]] = s;
    }
}

/// Reusable sparse revised simplex state, the per-worker peer of the dense
/// [`Tableau`](crate::simplex). Column layout, statuses, and pivot rules
/// mirror the dense kernel exactly; see the module docs for what differs.
pub(crate) struct SparseKernel {
    mat: Csc,
    /// Per-row artificial signs (`±1`).
    art_sign: Vec<f64>,
    /// Raw right-hand sides, kept so refactorization can recompute `x_B`
    /// from scratch.
    b: Vec<f64>,
    pub(crate) m: usize,
    pub(crate) n: usize,
    pub(crate) n_struct: usize,
    lb: Vec<f64>,
    ub: Vec<f64>,
    cost: Vec<f64>,
    pub(crate) status: Vec<ColStatus>,
    pub(crate) basis: Vec<usize>,
    xb: Vec<f64>,
    lu: Lu,
    /// Scratch factors; `factorize` builds here and swaps in on success so
    /// a singular refresh never destroys the still-valid current factors.
    lu_scratch: Lu,
    etas: EtaFile,
    want_refactor: bool,
    pub(crate) refactor_interval: usize,
    // Dense scratch vectors (row or position space, all length m).
    work_row: Vec<f64>,
    work_pos: Vec<f64>,
    alpha: Vec<f64>,
    y: Vec<f64>,
    rho: Vec<f64>,
    unpiv: Vec<usize>,
    // Column-space scratch (length n): nonbasic reduced costs maintained
    // incrementally across dual pivots, and the pivot row of the last scan.
    dred: Vec<f64>,
    arow: Vec<f64>,
    /// Dual ratio-test candidates `(ratio, |α|, column)`, kept sorted by
    /// ratio for the bound-flipping pass.
    cand: Vec<(f64, f64, usize)>,
    pub(crate) opt_tol: f64,
    pub(crate) bland: bool,
    /// When `false` (test probes only), [`Self::solve_cold`] skips its final
    /// accuracy refactorization so the post-solve state still carries the
    /// eta file the pivots produced — what the LU round-trip property test
    /// wants to measure.
    pub(crate) final_refresh: bool,
    pricing_start: usize,
    pub(crate) iterations: usize,
    pub(crate) refactors: usize,
    pub(crate) eta_updates: usize,
}

impl SparseKernel {
    pub(crate) fn new() -> Self {
        SparseKernel {
            mat: Csc::new(),
            art_sign: Vec::new(),
            b: Vec::new(),
            m: 0,
            n: 0,
            n_struct: 0,
            lb: Vec::new(),
            ub: Vec::new(),
            cost: Vec::new(),
            status: Vec::new(),
            basis: Vec::new(),
            xb: Vec::new(),
            lu: Lu::new(),
            lu_scratch: Lu::new(),
            etas: EtaFile::new(),
            want_refactor: false,
            refactor_interval: 0,
            work_row: Vec::new(),
            work_pos: Vec::new(),
            alpha: Vec::new(),
            y: Vec::new(),
            rho: Vec::new(),
            unpiv: Vec::new(),
            dred: Vec::new(),
            arow: Vec::new(),
            cand: Vec::new(),
            opt_tol: 1e-9,
            bland: false,
            final_refresh: true,
            pricing_start: 0,
            iterations: 0,
            refactors: 0,
            eta_updates: 0,
        }
    }

    /// Rebuilds the CSC matrix iff `p`'s row set differs from the cached one.
    fn ensure_matrix(&mut self, p: &LpProblem<'_>) {
        let key = (p.rows.as_ptr() as usize, p.rows.len(), p.ncols);
        if self.mat.key != key {
            self.mat.build(p.rows, p.ncols);
            self.mat.key = key;
        }
    }

    /// Whether the kernel's cached matrix and buffer sizes already describe
    /// `p`'s row set — the precondition for applying bound deltas in place
    /// without reloading anything.
    pub(crate) fn matches_problem(&self, p: &LpProblem<'_>) -> bool {
        self.mat.key == (p.rows.as_ptr() as usize, p.rows.len(), p.ncols)
            && self.m == p.rows.len()
            && self.n_struct == p.ncols
    }

    /// Current (non-basic or parked) value of column `j`.
    fn value_of(&self, j: usize) -> f64 {
        match self.status[j] {
            ColStatus::AtLower => self.lb[j],
            ColStatus::AtUpper => self.ub[j],
            ColStatus::FreeAtZero => 0.0,
            ColStatus::Basic(p) => self.xb[p],
        }
    }

    /// Reads the structural solution and its objective off the basis.
    pub(crate) fn extract(&self, c: &[f64]) -> (Vec<f64>, f64) {
        let mut x = vec![0.0; self.n_struct];
        for (j, xv) in x.iter_mut().enumerate() {
            *xv = self.value_of(j);
        }
        let obj = c.iter().zip(&x).map(|(cj, v)| cj * v).sum();
        (x, obj)
    }

    /// Sizes every per-solve buffer and resets the per-node counters.
    fn reset(&mut self, m: usize, n_struct: usize) {
        self.m = m;
        self.n = n_struct + 2 * m;
        self.n_struct = n_struct;
        self.iterations = 0;
        self.refactors = 0;
        self.eta_updates = 0;
        self.bland = false;
        self.want_refactor = false;
        self.pricing_start = 0;
        self.art_sign.clear();
        self.art_sign.resize(m, 1.0);
        self.b.clear();
        self.work_row.clear();
        self.work_row.resize(m, 0.0);
        self.work_pos.clear();
        self.work_pos.resize(m, 0.0);
        self.alpha.clear();
        self.alpha.resize(m, 0.0);
        self.y.clear();
        self.y.resize(m, 0.0);
        self.rho.clear();
        self.rho.resize(m, 0.0);
        self.xb.clear();
        self.xb.resize(m, 0.0);
        self.cost.clear();
        self.cost.resize(self.n, 0.0);
        self.dred.clear();
        self.dred.resize(self.n, 0.0);
        self.arow.clear();
        self.arow.resize(self.n, 0.0);
    }

    /// Pushes the slack and artificial bounds for `p`'s rows; artificials
    /// get `[0, art_ub]` (`∞` during a cold phase 1, `0` on warm loads).
    fn push_row_bounds(&mut self, p: &LpProblem<'_>, art_ub: f64) {
        self.lb.clear();
        self.ub.clear();
        self.lb.extend_from_slice(p.lb);
        self.ub.extend_from_slice(p.ub);
        for (_, cmp, _) in p.rows {
            match cmp {
                Cmp::Le => {
                    self.lb.push(0.0);
                    self.ub.push(f64::INFINITY);
                }
                Cmp::Ge => {
                    self.lb.push(f64::NEG_INFINITY);
                    self.ub.push(0.0);
                }
                Cmp::Eq => {
                    self.lb.push(0.0);
                    self.ub.push(0.0);
                }
            }
        }
        self.lb.resize(self.n, 0.0);
        self.ub.resize(self.n, art_ub);
    }

    /// Factorizes the current basis into the scratch factors and swaps them
    /// in on success; on failure the current factors stay valid.
    fn factorize(&mut self) -> bool {
        let ok = self.lu_scratch.factorize(
            &self.mat,
            &self.art_sign,
            &self.basis,
            &mut self.work_row,
            &mut self.unpiv,
        );
        if ok {
            std::mem::swap(&mut self.lu, &mut self.lu_scratch);
            self.refactors += 1;
        }
        ok
    }

    /// Recomputes `x_B = B⁻¹·(b − N·x_N)` from the raw rows and the current
    /// resting statuses.
    fn recompute_xb(&mut self) {
        self.work_row.copy_from_slice(&self.b);
        for j in 0..self.n {
            if matches!(self.status[j], ColStatus::Basic(_)) {
                continue;
            }
            let v = self.value_of(j);
            if v != 0.0 {
                self.mat.axpy(&self.art_sign, j, -v, &mut self.work_row);
            }
        }
        ftran(&self.lu, &self.etas, &mut self.work_row, &mut self.xb);
    }

    /// Refactorizes and recomputes `x_B`, dropping the eta file. A singular
    /// factorization (possible only through accumulated drift) keeps the
    /// current eta representation, which is still valid.
    fn refresh(&mut self) {
        self.want_refactor = false;
        if self.factorize() {
            self.etas.clear();
            self.recompute_xb();
        }
    }

    /// Applies the refactorization policy after a pivot. An explicit
    /// interval is honored as given; auto mode additionally refreshes once
    /// the eta file holds more nonzeros than the LU factors themselves —
    /// dense etas (big-M disjunction rows transform into nearly full
    /// columns) make every FTRAN/BTRAN pay the whole file long before the
    /// update-count cap is reached.
    fn maybe_refresh(&mut self) {
        let due = if self.refactor_interval == 0 {
            self.etas.count >= DEFAULT_REFACTOR_INTERVAL
                || self.etas.idx.len() > self.lu.l_vals.len() + self.lu.u_vals.len() + self.m
        } else {
            self.etas.count >= self.refactor_interval
        };
        if self.want_refactor || due {
            self.refresh();
        }
    }

    /// Installs `q` as the basic column of position `p`, recording the eta
    /// from `alpha = B⁻¹·a_q` (already in `self.alpha`) and flagging a
    /// refactorization when the transformed pivot looks unstable.
    fn replace_basis(&mut self, p: usize, q: usize) {
        let piv = self.alpha[p];
        let maxa = self.alpha.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        if piv.abs() < STABILITY_TOL * (1.0 + maxa) {
            self.want_refactor = true;
        }
        self.etas.push(p, &self.alpha);
        self.eta_updates += 1;
        self.basis[p] = q;
        self.status[q] = ColStatus::Basic(p);
    }

    /// Computes `alpha = B⁻¹·a_q` into `self.alpha`.
    fn ftran_col(&mut self, q: usize) {
        self.work_row.fill(0.0);
        self.mat.axpy(&self.art_sign, q, 1.0, &mut self.work_row);
        ftran(&self.lu, &self.etas, &mut self.work_row, &mut self.alpha);
    }

    /// Computes the row-space duals `y = B⁻ᵀ·c_B` into `self.y`.
    fn btran_duals(&mut self) {
        for (k, &col) in self.basis.iter().enumerate() {
            self.work_pos[k] = self.cost[col];
        }
        btran(&self.lu, &self.etas, &mut self.work_pos, &mut self.y);
    }

    /// Computes row `r` of `B⁻¹` (row space) into `self.rho`.
    fn btran_unit(&mut self, r: usize) {
        self.work_pos.fill(0.0);
        self.work_pos[r] = 1.0;
        btran(&self.lu, &self.etas, &mut self.work_pos, &mut self.rho);
    }

    /// Reduced cost of column `j` against the duals in `self.y`.
    fn reduced_cost(&self, j: usize) -> f64 {
        self.cost[j] - self.mat.dot(&self.art_sign, j, &self.y)
    }

    /// Entering direction for column `j` with reduced cost `d`, or `None`.
    fn eligible(&self, j: usize, d: f64) -> Option<f64> {
        match self.status[j] {
            ColStatus::Basic(_) => None,
            ColStatus::AtLower => (d < -self.opt_tol).then_some(1.0),
            ColStatus::AtUpper => (d > self.opt_tol).then_some(-1.0),
            ColStatus::FreeAtZero => {
                (d.abs() > self.opt_tol).then(|| if d < 0.0 { 1.0 } else { -1.0 })
            }
        }
    }

    /// Pricing: Bland's rule when stalled (first eligible index), otherwise
    /// cyclic partial pricing — scan blocks of the nonbasic set starting at
    /// a persistent cursor and take the best reduced cost from the first
    /// block containing any eligible column. A full wrap with no candidate
    /// proves optimality (for the current phase's cost vector).
    fn price(&mut self) -> Option<(usize, f64)> {
        if self.n == 0 {
            return None;
        }
        self.btran_duals();
        if self.bland {
            for j in 0..self.n {
                let d = self.reduced_cost(j);
                if let Some(dir) = self.eligible(j, d) {
                    return Some((j, dir));
                }
            }
            return None;
        }
        let n = self.n;
        let block = PRICE_BLOCK.max(n / 4);
        let mut cursor = self.pricing_start % n;
        let mut scanned = 0;
        while scanned < n {
            let len = block.min(n - scanned);
            let mut best: Option<(usize, f64, f64)> = None;
            for t in 0..len {
                let j = (cursor + t) % n;
                let d = self.reduced_cost(j);
                if let Some(dir) = self.eligible(j, d) {
                    let score = d.abs();
                    if best.is_none_or(|(_, _, s)| score > s) {
                        best = Some((j, dir, score));
                    }
                }
            }
            cursor = (cursor + len) % n;
            scanned += len;
            if let Some((j, dir, _)) = best {
                self.pricing_start = cursor;
                return Some((j, dir));
            }
        }
        None
    }

    /// One primal iteration: price, FTRAN, ratio test, pivot or bound flip.
    /// The ratio test and update rules mirror the dense kernel exactly,
    /// with `alpha[i]` standing in for the tableau entry `T[i][q]`.
    fn step(&mut self) -> StepOutcome {
        let Some((q, dir)) = self.price() else {
            return StepOutcome::Optimal;
        };
        self.ftran_col(q);

        let own_limit = if self.lb[q].is_finite() && self.ub[q].is_finite() {
            self.ub[q] - self.lb[q]
        } else {
            f64::INFINITY
        };
        let mut t_best = own_limit;
        let mut leave: Option<(usize, bool)> = None; // (position, hits_upper)
        for i in 0..self.m {
            let a = dir * self.alpha[i];
            let bi = self.basis[i];
            let (limit, hits_upper) = if a > PIVOT_TOL {
                if self.lb[bi].is_finite() {
                    ((self.xb[i] - self.lb[bi]) / a, false)
                } else {
                    continue;
                }
            } else if a < -PIVOT_TOL {
                if self.ub[bi].is_finite() {
                    ((self.ub[bi] - self.xb[i]) / (-a), true)
                } else {
                    continue;
                }
            } else {
                continue;
            };
            let limit = limit.max(0.0); // degenerate steps clamp to zero
            let better = match leave {
                None => limit < t_best - PIVOT_TOL || (t_best.is_infinite() && limit.is_finite()),
                Some((r, _)) => {
                    limit < t_best - PIVOT_TOL
                        // stability tie-break: larger pivot magnitude
                        || (limit < t_best + PIVOT_TOL
                            && self.alpha[i].abs() > self.alpha[r].abs())
                }
            };
            if better {
                t_best = limit;
                leave = Some((i, hits_upper));
            }
        }

        if t_best.is_infinite() {
            return StepOutcome::Unbounded;
        }

        self.iterations += 1;
        let v_q = self.value_of(q);

        match leave {
            // Bound flip: entering variable runs to its opposite bound.
            None => {
                for i in 0..self.m {
                    self.xb[i] -= dir * t_best * self.alpha[i];
                }
                self.status[q] = if dir > 0.0 {
                    ColStatus::AtUpper
                } else {
                    ColStatus::AtLower
                };
            }
            Some((r, hits_upper)) => {
                for i in 0..self.m {
                    self.xb[i] -= dir * t_best * self.alpha[i];
                }
                let old = self.basis[r];
                self.status[old] = if hits_upper {
                    ColStatus::AtUpper
                } else {
                    ColStatus::AtLower
                };
                let entering_value = v_q + dir * t_best;
                self.replace_basis(r, q);
                self.xb[r] = entering_value;
            }
        }
        StepOutcome::Pivoted
    }

    /// Runs primal iterations until optimal / unbounded / capped / past the
    /// caller's deadline, refactorizing on the eta/instability policy.
    pub(crate) fn optimize(&mut self, max_iters: usize, deadline: Option<Instant>) -> OptimizeEnd {
        let stall_switch = 3 * (self.m + self.n) + 200;
        let start = self.iterations;
        loop {
            if self.iterations - start > stall_switch {
                self.bland = true;
            }
            if self.iterations > max_iters {
                return OptimizeEnd::IterationCap;
            }
            if self.iterations & DEADLINE_POLL_MASK == 0 {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return OptimizeEnd::TimedOut;
                    }
                }
            }
            match self.step() {
                StepOutcome::Pivoted => {
                    self.maybe_refresh();
                    continue;
                }
                other => return OptimizeEnd::Done(other),
            }
        }
    }

    /// Bounded-variable dual simplex on the revised kernel: same leaving /
    /// entering rules as the dense version, with the stuck row's tableau
    /// coefficients answered by one BTRAN (`ρ = B⁻ᵀ·e_r`, then
    /// `α_j = ρ·a_j` per nonbasic column). Reduced costs are priced once on
    /// the first pivot and then maintained incrementally across pivots
    /// (`d_j ← d_j − θ·α_rj`, the dense kernel's cost-row update); any drift
    /// is corrected by the primal cleanup phase, which prices fresh duals.
    pub(crate) fn dual_optimize(
        &mut self,
        feas_tol: f64,
        max_pivots: usize,
        deadline: Option<Instant>,
    ) -> DualEnd {
        let start = self.iterations;
        let mut have_d = false;
        loop {
            if self.iterations - start >= max_pivots {
                return DualEnd::Cap;
            }
            if self.iterations & DEADLINE_POLL_MASK == 0 {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return DualEnd::TimedOut;
                    }
                }
            }

            // --- leaving position: worst bound violation ----------------
            let mut leave: Option<(usize, f64, f64)> = None; // (pos, target, viol)
            for i in 0..self.m {
                let bi = self.basis[i];
                let (target, viol) = if self.xb[i] > self.ub[bi] {
                    (
                        self.ub[bi],
                        (self.xb[i] - self.ub[bi]) / (1.0 + self.ub[bi].abs()),
                    )
                } else if self.xb[i] < self.lb[bi] {
                    (
                        self.lb[bi],
                        (self.lb[bi] - self.xb[i]) / (1.0 + self.lb[bi].abs()),
                    )
                } else {
                    continue;
                };
                if viol > feas_tol && leave.is_none_or(|(_, _, v)| viol > v) {
                    leave = Some((i, target, viol));
                }
            }
            let Some((r, target, _)) = leave else {
                return DualEnd::Feasible;
            };
            let sigma = if self.xb[r] > target { 1.0 } else { -1.0 };

            // --- entering column: min dual ratio ------------------------
            if !have_d {
                self.btran_duals();
                for j in 0..self.n {
                    let d = match self.status[j] {
                        ColStatus::Basic(_) => 0.0,
                        _ => self.reduced_cost(j),
                    };
                    self.dred[j] = d;
                }
                have_d = true;
            }
            self.btran_unit(r);
            self.mat
                .price_row(&self.art_sign, &self.rho, &mut self.arow);
            self.cand.clear();
            for j in 0..self.n {
                let aj = self.arow[j];
                let alpha = sigma * aj;
                let eligible = match self.status[j] {
                    ColStatus::Basic(_) => false,
                    ColStatus::AtLower => alpha > PIVOT_TOL,
                    ColStatus::AtUpper => alpha < -PIVOT_TOL,
                    ColStatus::FreeAtZero => alpha.abs() > PIVOT_TOL,
                };
                if !eligible {
                    continue;
                }
                // Both eligible cases give d_j/α_j >= 0 in exact
                // arithmetic; clamp so a slightly wrong-signed d cannot
                // produce a negative ratio that derails the min search.
                let ratio = (self.dred[j] / alpha).max(0.0);
                self.cand.push((ratio, alpha.abs(), j));
            }
            if self.cand.is_empty() {
                return DualEnd::NoEntering { row: r };
            }

            // --- bound-flipping ratio test (long step) ------------------
            // Walk candidates by ascending dual ratio (stability tie-break:
            // larger |α|). While the cheapest candidate is a bounded column
            // whose full-interval flip cannot absorb the remaining
            // violation, flip it — a flip keeps the basis (and so every
            // reduced cost) intact and costs one combined FTRAN for the
            // whole batch — and pivot on the first candidate that can.
            self.cand
                .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));
            let mut delta = (self.xb[r] - target).abs();
            let mut nflips = 0usize;
            let mut chosen = None;
            for &(_, absa, j) in self.cand.iter() {
                let width = self.ub[j] - self.lb[j];
                if width.is_finite() && delta > width * absa {
                    delta -= width * absa;
                    nflips += 1;
                } else {
                    chosen = Some(j);
                    break;
                }
            }
            let Some(q) = chosen else {
                // Even flipping every candidate over its whole interval
                // leaves the row violated: same stuck-row outcome as an
                // empty candidate set, with no flips applied.
                return DualEnd::NoEntering { row: r };
            };
            if nflips > 0 {
                self.work_row.fill(0.0);
                for k in 0..nflips {
                    let j = self.cand[k].2;
                    let w = self.ub[j] - self.lb[j];
                    let (dx, flipped) = match self.status[j] {
                        ColStatus::AtLower => (w, ColStatus::AtUpper),
                        ColStatus::AtUpper => (-w, ColStatus::AtLower),
                        _ => unreachable!("only bounded resting columns flip"),
                    };
                    self.status[j] = flipped;
                    self.mat.axpy(&self.art_sign, j, dx, &mut self.work_row);
                }
                ftran(&self.lu, &self.etas, &mut self.work_row, &mut self.alpha);
                for i in 0..self.m {
                    self.xb[i] -= self.alpha[i];
                }
            }

            // --- pivot: land xb[r] exactly on its violated bound --------
            self.ftran_col(q);
            let piv = self.alpha[r];
            if piv.abs() <= PIVOT_TOL {
                // The FTRAN'd column disagrees with the ρ-scan estimate:
                // numerical trouble, let the caller fall back cold.
                return DualEnd::Cap;
            }
            self.iterations += 1;
            // Cost-row update with the scan's α_rj values; the leaving
            // column has α_r = 1 (it is basic at position r), so its new
            // reduced cost is exactly −θ.
            let theta = self.dred[q] / piv;
            if theta != 0.0 {
                for j in 0..self.n {
                    if !matches!(self.status[j], ColStatus::Basic(_)) {
                        self.dred[j] -= theta * self.arow[j];
                    }
                }
            }
            self.dred[q] = 0.0;
            let step = (self.xb[r] - target) / piv;
            let entering_value = self.value_of(q) + step;
            for i in 0..self.m {
                if i != r {
                    self.xb[i] -= step * self.alpha[i];
                }
            }
            let old = self.basis[r];
            self.status[old] = if sigma > 0.0 {
                ColStatus::AtUpper
            } else {
                ColStatus::AtLower
            };
            self.replace_basis(r, q);
            self.dred[old] = -theta;
            self.xb[r] = entering_value;
            self.maybe_refresh();
        }
    }

    /// One-row infeasibility certificate for a stuck dual row, identical in
    /// logic to the dense kernel's: the row equation bounds how far `xb[r]`
    /// can move over the whole nonbasic box. The row coefficients come from
    /// one BTRAN instead of the tableau.
    pub(crate) fn certify_infeasible(&mut self, r: usize, feas_tol: f64) -> bool {
        let bi = self.basis[r];
        let (sigma, bound) = if self.xb[r] > self.ub[bi] {
            (1.0, self.ub[bi])
        } else if self.xb[r] < self.lb[bi] {
            (-1.0, self.lb[bi])
        } else {
            return false;
        };
        self.btran_unit(r);
        let mut slack = 0.0f64;
        for j in 0..self.n {
            let at_rj = match self.status[j] {
                ColStatus::Basic(_) => continue,
                _ => self.mat.dot(&self.art_sign, j, &self.rho),
            };
            let helpful = match self.status[j] {
                ColStatus::Basic(_) => unreachable!(),
                ColStatus::AtLower => sigma * at_rj,
                ColStatus::AtUpper => -sigma * at_rj,
                ColStatus::FreeAtZero => at_rj.abs(),
            };
            if helpful <= 0.0 {
                continue;
            }
            let width = match self.status[j] {
                ColStatus::FreeAtZero => f64::INFINITY,
                _ => self.ub[j] - self.lb[j],
            };
            if width.is_finite() {
                slack += helpful * width;
            } else if helpful > PIVOT_TOL {
                return false; // genuinely usable unbounded column
            }
        }
        let margin = feas_tol.max(1e-7) * (1.0 + bound.abs());
        (self.xb[r] - bound).abs() > slack + margin
    }

    /// Loads the phase-2 cost vector (structural costs, zeros elsewhere).
    pub(crate) fn set_phase2_cost(&mut self, c: &[f64]) {
        self.cost.fill(0.0);
        self.cost[..self.n_struct].copy_from_slice(c);
    }

    /// Cold two-phase primal solve, mirroring the dense `solve_cold`.
    pub(crate) fn solve_cold(&mut self, p: &LpProblem<'_>, cfg: &LpConfig) -> LpOutcome {
        self.ensure_matrix(p);
        let m = p.rows.len();
        self.reset(m, p.ncols);
        self.push_row_bounds(p, f64::INFINITY);

        self.status.clear();
        for j in 0..self.n_struct + m {
            self.status.push(default_status(self.lb[j], self.ub[j]));
        }
        self.status.resize(self.n, ColStatus::AtLower);

        // Initial residuals r = b − A·x_N decide the artificial signs so
        // every artificial starts basic and non-negative.
        self.b.extend(p.rows.iter().map(|(_, _, rhs)| *rhs));
        self.work_row.copy_from_slice(&self.b);
        for j in 0..self.n_struct + m {
            let v = self.value_of(j);
            if v != 0.0 {
                self.mat.axpy(&self.art_sign, j, -v, &mut self.work_row);
            }
        }
        self.basis.clear();
        for i in 0..m {
            self.art_sign[i] = if self.work_row[i] >= 0.0 { 1.0 } else { -1.0 };
            let aj = self.n_struct + m + i;
            self.basis.push(aj);
            self.status[aj] = ColStatus::Basic(i);
        }
        self.etas.clear();
        if !self.factorize() {
            // A signed identity cannot be singular; defensive only.
            return LpOutcome::IterationLimit;
        }
        self.recompute_xb();

        let max_iters = 60 * (m + self.n) + 5_000;

        // --- Phase 1: minimize the sum of artificials ------------------
        self.cost.fill(0.0);
        self.cost[self.n_struct + m..].fill(1.0);
        match self.optimize(max_iters, cfg.deadline) {
            OptimizeEnd::IterationCap => return LpOutcome::IterationLimit,
            OptimizeEnd::TimedOut => return LpOutcome::TimedOut,
            OptimizeEnd::Done(StepOutcome::Unbounded) => {
                debug_assert!(false, "phase 1 reported unbounded");
                return LpOutcome::IterationLimit;
            }
            OptimizeEnd::Done(_) => {}
        }
        let phase1_obj: f64 = (0..m)
            .filter(|&i| self.basis[i] >= self.n_struct + m)
            .map(|i| self.xb[i])
            .sum();
        if phase1_obj > cfg.feas_tol.max(1e-7) * (1.0 + phase1_obj.abs()) && phase1_obj > 1e-6 {
            return LpOutcome::Infeasible;
        }

        // Fix artificials at zero so they can never re-enter or grow.
        for j in self.n_struct + m..self.n {
            self.lb[j] = 0.0;
            self.ub[j] = 0.0;
            if let ColStatus::Basic(r) = self.status[j] {
                if self.xb[r].abs() <= 1e-6 {
                    self.xb[r] = 0.0;
                }
            } else {
                self.status[j] = ColStatus::AtLower;
            }
        }

        // --- Phase 2: the real objective -------------------------------
        self.set_phase2_cost(p.c);
        self.bland = false;
        match self.optimize(max_iters, cfg.deadline) {
            OptimizeEnd::IterationCap => LpOutcome::IterationLimit,
            OptimizeEnd::TimedOut => LpOutcome::TimedOut,
            OptimizeEnd::Done(StepOutcome::Unbounded) => LpOutcome::Unbounded,
            OptimizeEnd::Done(_) => {
                // Final accuracy refresh: one LU + FTRAN repairs any drift
                // the eta file accumulated before values are read off. An
                // empty eta file means `x_B` was recomputed from fresh
                // factors already, so the refresh would be a no-op.
                if self.final_refresh && (self.etas.count > 0 || self.want_refactor) {
                    self.refresh();
                }
                let (x, obj) = self.extract(p.c);
                LpOutcome::Optimal { x, obj }
            }
        }
    }

    /// Warm load from a snapshot taken on a different kernel state:
    /// factorize the saved basis against the child's rows and recompute
    /// `x_B`. Returns `false` when the basis is singular for these rows.
    ///
    /// The snapshot may describe FEWER rows than `p` (`snap.m <= m`): rows
    /// appended since the snapshot — cut rounds growing the root relaxation
    /// — get their slack basic, which extends any basis block-triangularly
    /// (the new slacks are unit columns on the new rows), so the extended
    /// basis is nonsingular whenever the saved one was. The dual simplex
    /// then repairs exactly the appended rows' violations.
    pub(crate) fn load_snapshot(&mut self, p: &LpProblem<'_>, snap: &BasisSnapshot) -> bool {
        self.ensure_matrix(p);
        let m = p.rows.len();
        self.reset(m, p.ncols);
        // Artificials stay fixed at zero; they only exist so a snapshot in
        // which a redundant row kept its artificial basic stays a basis.
        // Signs are irrelevant here (row scaling by ±1 never changes which
        // column sets are bases), so plain +1 units do.
        self.push_row_bounds(p, 0.0);
        self.b.extend(p.rows.iter().map(|(_, _, rhs)| *rhs));

        // Resting statuses from the snapshot, remapped into the child's
        // column space (slack/artificial indices shift when rows were
        // appended) and sanitized against the child's bounds (a status is
        // only kept if its bound is finite).
        self.status.clear();
        for j in 0..self.n {
            let src = if j < self.n_struct {
                Some(snap.status[j])
            } else if j < self.n_struct + m {
                let i = j - self.n_struct;
                (i < snap.m).then(|| snap.status[snap.n_struct + i])
            } else {
                let i = j - self.n_struct - m;
                (i < snap.m).then(|| snap.status[snap.n_struct + snap.m + i])
            };
            self.status.push(match src {
                // Basic: overwritten below. None: a column of an appended
                // row — its slack goes basic below, its artificial rests.
                Some(ColStatus::Basic(_)) | None => ColStatus::AtLower,
                Some(ColStatus::AtLower) if self.lb[j].is_finite() => ColStatus::AtLower,
                Some(ColStatus::AtUpper) if self.ub[j].is_finite() => ColStatus::AtUpper,
                Some(ColStatus::FreeAtZero)
                    if self.lb[j] == f64::NEG_INFINITY && self.ub[j] == f64::INFINITY =>
                {
                    ColStatus::FreeAtZero
                }
                _ => default_status(self.lb[j], self.ub[j]),
            });
        }

        self.basis.clear();
        for &col in &snap.basis {
            self.basis.push(if col < snap.n_struct + snap.m {
                col // structural and slack indices are position-stable
            } else {
                self.n_struct + m + (col - snap.n_struct - snap.m) // artificial
            });
        }
        for i in snap.m..m {
            self.basis.push(self.n_struct + i); // appended rows: slack basic
        }
        self.etas.clear();
        if !self.factorize() {
            return false; // singular for the child's rows
        }
        for (pos, &col) in self.basis.iter().enumerate() {
            self.status[col] = ColStatus::Basic(pos);
        }
        self.recompute_xb();
        true
    }

    /// Hot path: the kernel state already realizes the parent's optimum for
    /// the parent's bounds, so only the bound deltas need applying — basic
    /// columns just update their box, nonbasic columns shift `x_B` by
    /// `Δ(resting value) · B⁻¹·a_j` (one FTRAN per changed column; a
    /// branching child changes exactly one). No factorization, no phase 1.
    pub(crate) fn apply_bound_deltas(&mut self, p: &LpProblem<'_>) -> bool {
        self.iterations = 0;
        self.refactors = 0;
        self.eta_updates = 0;
        self.bland = false;
        for j in 0..p.ncols {
            let (nl, nu) = (p.lb[j], p.ub[j]);
            if nl == self.lb[j] && nu == self.ub[j] {
                continue;
            }
            match self.status[j] {
                ColStatus::Basic(_) => {
                    self.lb[j] = nl;
                    self.ub[j] = nu;
                }
                st => {
                    let old_v = match st {
                        ColStatus::AtLower => self.lb[j],
                        ColStatus::AtUpper => self.ub[j],
                        _ => 0.0,
                    };
                    let new_st = match st {
                        ColStatus::AtLower if nl.is_finite() => ColStatus::AtLower,
                        ColStatus::AtUpper if nu.is_finite() => ColStatus::AtUpper,
                        ColStatus::FreeAtZero if nl == f64::NEG_INFINITY && nu == f64::INFINITY => {
                            ColStatus::FreeAtZero
                        }
                        _ => default_status(nl, nu),
                    };
                    let new_v = match new_st {
                        ColStatus::AtLower => nl,
                        ColStatus::AtUpper => nu,
                        _ => 0.0,
                    };
                    let delta = new_v - old_v;
                    if !delta.is_finite() {
                        return false; // resting on an infinite bound: refuse
                    }
                    if delta != 0.0 {
                        self.ftran_col(j);
                        for i in 0..self.m {
                            self.xb[i] -= delta * self.alpha[i];
                        }
                    }
                    self.lb[j] = nl;
                    self.ub[j] = nu;
                    self.status[j] = new_st;
                }
            }
        }
        true
    }

    /// Eta columns currently live in the product-form file (dropped to zero
    /// by every successful refactorization, unlike the monotone
    /// [`eta_updates`](Self::eta_updates) counter).
    pub(crate) fn live_etas(&self) -> usize {
        self.etas.count
    }

    /// Test support: max over every unit vector `e_i` of
    /// `‖B·(B⁻¹·e_i) − e_i‖_∞`, where `B⁻¹` is applied through the current
    /// factors-plus-eta-file representation and `B` through the raw CSC
    /// columns of the current basis. Drives the LU/eta round-trip property
    /// test in `tests/prop_solver.rs`.
    pub(crate) fn roundtrip_residual(&mut self) -> f64 {
        let m = self.m;
        let mut worst = 0.0f64;
        let mut e = vec![0.0; m];
        let mut bx = vec![0.0; m];
        for i in 0..m {
            e.fill(0.0);
            e[i] = 1.0;
            ftran(&self.lu, &self.etas, &mut e, &mut self.alpha);
            bx.fill(0.0);
            for (k, &col) in self.basis.iter().enumerate() {
                let z = self.alpha[k];
                if z != 0.0 {
                    self.mat.axpy(&self.art_sign, col, z, &mut bx);
                }
            }
            for (r, &v) in bx.iter().enumerate() {
                let want = if r == i { 1.0 } else { 0.0 };
                worst = worst.max((v - want).abs());
            }
        }
        worst
    }
}
