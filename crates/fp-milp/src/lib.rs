//! A self-contained linear and 0-1 mixed-integer linear programming solver.
//!
//! The DAC 1990 paper *"An Analytical Approach to Floorplan Design and
//! Optimization"* (Sutanthavibul, Shragowitz, Rosen) solves each successive
//! augmentation step of its floorplanner by calling the commercial **LINDO**
//! package as a procedure. This crate is the open substitute for LINDO: an
//! exact solver for small-to-medium mixed 0-1 linear programs built on
//!
//! * a **two-phase, bounded-variable primal simplex** — by default a sparse
//!   revised implementation with an LU-factorized basis and eta-file updates
//!   (the `sparse` module), with the original dense-tableau engine kept as a
//!   differential reference behind [`SolveOptions::sparse`] — and
//! * a **branch-and-bound** search on the integer variables with
//!   most-fractional / user-priority branching, depth-first diving for early
//!   incumbents, and node / time limits that return the best incumbent found
//!   (the `branch` module). Child nodes **warm-start a dual simplex** from
//!   the parent's optimal basis instead of re-solving from scratch — a pure
//!   performance lever (every warm answer is re-verified or re-solved cold),
//!   toggled by [`SolveOptions::warm_start`].
//!
//! # Example
//!
//! Maximize `3x + 2y` subject to `x + y <= 4`, `x + 3y <= 6`, `x, y >= 0`:
//!
//! ```
//! use fp_milp::{Model, Sense};
//!
//! # fn main() -> Result<(), fp_milp::SolveError> {
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_continuous("x", 0.0, f64::INFINITY);
//! let y = m.add_continuous("y", 0.0, f64::INFINITY);
//! m.add_le(x + y, 4.0);
//! m.add_le(x + 3.0 * y, 6.0);
//! m.set_objective(3.0 * x + 2.0 * y);
//! let sol = m.solve()?;
//! assert!((sol.objective() - 12.0).abs() < 1e-6); // x = 4, y = 0
//! # Ok(())
//! # }
//! ```
//!
//! Integer variables turn the model into a MILP transparently:
//!
//! ```
//! use fp_milp::{Model, Sense};
//!
//! # fn main() -> Result<(), fp_milp::SolveError> {
//! let mut m = Model::new(Sense::Maximize);
//! let items = [(3.0, 4.0), (4.0, 5.0), (5.0, 6.0)]; // (weight, value)
//! let take: Vec<_> = (0..3).map(|i| m.add_binary(format!("t{i}"))).collect();
//! let weight = take.iter().zip(&items).map(|(&t, &(w, _))| w * t).sum::<fp_milp::LinExpr>();
//! m.add_le(weight, 8.0);
//! let value = take.iter().zip(&items).map(|(&t, &(_, v))| v * t).sum::<fp_milp::LinExpr>();
//! m.set_objective(value);
//! let sol = m.solve()?;
//! assert!((sol.objective() - 10.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basis_store;
mod branch;
mod error;
mod expr;
mod lp_format;
mod lp_parse;
mod model;
mod options;
mod presolve;
mod simplex;
mod solution;
mod sparse;
#[doc(hidden)]
pub mod test_support;
mod var;

pub use basis_store::{BasisStore, BasisTier};
pub use error::SolveError;
pub use expr::LinExpr;
pub use lp_parse::parse_lp;
pub use model::{Cmp, Constraint, Model, Sense};
pub use options::{SolveOptions, SparseMode, StopFlag};
pub use solution::{Optimality, Solution, SolveStats, ThreadStats};
pub use var::{Var, VarKind};
