//! CPLEX-LP-style text export for debugging models.
//!
//! The paper's authors inspected their LINDO input decks directly; this
//! module provides the equivalent escape hatch: dump any [`Model`] to a
//! human-readable LP file and eyeball the constraint system.

use crate::model::{Cmp, Model, Sense};
use std::fmt::Write as _;

impl Model {
    /// Renders the model in CPLEX-LP-like text format.
    ///
    /// Variable names are the names given at creation, sanitized (whitespace
    /// replaced by `_`); anonymous collisions are acceptable since the output
    /// is diagnostic.
    ///
    /// ```
    /// use fp_milp::{Model, Sense};
    /// let mut m = Model::new(Sense::Minimize);
    /// let x = m.add_continuous("x", 0.0, 4.0);
    /// let b = m.add_binary("sel");
    /// m.add_le(x + 10.0 * b, 7.0);
    /// m.set_objective(x + 0.0);
    /// let text = m.to_lp_string();
    /// assert!(text.contains("Minimize"));
    /// assert!(text.contains("sel"));
    /// assert!(text.contains("Binaries"));
    /// ```
    #[must_use]
    pub fn to_lp_string(&self) -> String {
        let mut out = String::new();
        let name = |i: usize| -> String {
            let raw = &self.vars[i].name;
            if raw.is_empty() {
                format!("v{i}")
            } else {
                raw.replace(char::is_whitespace, "_")
            }
        };
        let write_terms = |out: &mut String, terms: Vec<(usize, f64)>| {
            if terms.is_empty() {
                out.push('0');
                return;
            }
            for (k, (i, c)) in terms.iter().enumerate() {
                if k == 0 {
                    let _ = write!(out, "{} {}", c, name(*i));
                } else if *c < 0.0 {
                    let _ = write!(out, " - {} {}", -c, name(*i));
                } else {
                    let _ = write!(out, " + {} {}", c, name(*i));
                }
            }
        };

        out.push_str(match self.sense() {
            Sense::Minimize => "Minimize\n obj: ",
            Sense::Maximize => "Maximize\n obj: ",
        });
        write_terms(
            &mut out,
            self.objective.iter().map(|(v, c)| (v.index(), c)).collect(),
        );
        out.push_str("\nSubject To\n");
        for (r, con) in self.cons.iter().enumerate() {
            let _ = write!(out, " c{r}: ");
            write_terms(
                &mut out,
                con.expr.iter().map(|(v, c)| (v.index(), c)).collect(),
            );
            let op = match con.cmp {
                Cmp::Le => "<=",
                Cmp::Ge => ">=",
                Cmp::Eq => "=",
            };
            let _ = writeln!(out, " {op} {}", con.rhs);
        }
        out.push_str("Bounds\n");
        for (i, d) in self.vars.iter().enumerate() {
            let lo = if d.lb.is_finite() {
                format!("{}", d.lb)
            } else {
                "-inf".to_string()
            };
            let hi = if d.ub.is_finite() {
                format!("{}", d.ub)
            } else {
                "+inf".to_string()
            };
            let _ = writeln!(out, " {lo} <= {} <= {hi}", name(i));
        }
        let binaries: Vec<usize> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == crate::VarKind::Binary)
            .map(|(i, _)| i)
            .collect();
        if !binaries.is_empty() {
            out.push_str("Binaries\n");
            for i in binaries {
                let _ = writeln!(out, " {}", name(i));
            }
        }
        let generals: Vec<usize> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == crate::VarKind::Integer)
            .map(|(i, _)| i)
            .collect();
        if !generals.is_empty() {
            out.push_str("Generals\n");
            for i in generals {
                let _ = writeln!(out, " {}", name(i));
            }
        }
        out.push_str("End\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Model, Sense};

    #[test]
    fn full_sections_emitted() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("width x", 0.0, f64::INFINITY);
        let b = m.add_binary("b");
        let n = m.add_integer("count", 0.0, 9.0);
        m.add_ge(x - 2.0 * b + n, 1.0);
        m.add_eq(x + n, 5.0);
        m.set_objective(x - n);
        let s = m.to_lp_string();
        assert!(s.starts_with("Maximize"));
        assert!(s.contains("width_x"), "whitespace sanitized: {s}");
        assert!(s.contains(">= 1"));
        assert!(s.contains("= 5"));
        assert!(s.contains("Binaries\n b"));
        assert!(s.contains("Generals\n count"));
        assert!(s.contains("+inf"));
        assert!(s.ends_with("End\n"));
    }

    #[test]
    fn empty_objective_renders_zero() {
        let m = Model::new(Sense::Minimize);
        assert!(m.to_lp_string().contains("obj: 0"));
    }
}
