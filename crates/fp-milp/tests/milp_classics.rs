//! Classic optimization instances with known optima — deeper coverage of
//! the solver than the unit tests, exercising structures the floorplanner
//! does not (equalities in volume, assignment polytopes, covering).

use fp_milp::{LinExpr, Model, Optimality, Sense, SolveError, Var};

fn assert_obj(m: &Model, expected: f64) {
    let sol = m.solve().expect("feasible");
    assert_eq!(sol.optimality(), Optimality::Proven);
    assert!(
        (sol.objective() - expected).abs() < 1e-6,
        "objective {} != {expected}",
        sol.objective()
    );
    assert!(m.is_feasible(sol.values(), 1e-6));
}

#[test]
fn assignment_problem_3x3() {
    // Costs; optimal assignment 0->1, 1->0, 2->2 with cost 1+2+3 = 6.
    let costs = [[9.0, 1.0, 8.0], [2.0, 9.0, 7.0], [8.0, 7.0, 3.0]];
    let mut m = Model::new(Sense::Minimize);
    let mut x = [[Var::default_placeholder(); 3]; 3];
    for (i, xrow) in x.iter_mut().enumerate() {
        for (j, cell) in xrow.iter_mut().enumerate() {
            *cell = m.add_binary(format!("x{i}{j}"));
        }
    }
    for (i, xrow) in x.iter().enumerate() {
        let row: LinExpr = xrow.iter().map(|&v| 1.0 * v).sum();
        m.add_eq(row, 1.0);
        let col: LinExpr = (0..3).map(|j| 1.0 * x[j][i]).sum();
        m.add_eq(col, 1.0);
    }
    let obj: LinExpr = (0..3)
        .flat_map(|i| (0..3).map(move |j| (i, j)))
        .map(|(i, j)| costs[i][j] * x[i][j])
        .sum();
    m.set_objective(obj);
    assert_obj(&m, 6.0);
}

// Var has no public constructor; tests build placeholders via a tiny trait.
trait Placeholder {
    fn default_placeholder() -> Self;
}
impl Placeholder for Var {
    fn default_placeholder() -> Self {
        // Any valid handle works; it is overwritten before use.
        let mut m = Model::new(Sense::Minimize);
        m.add_binary("tmp")
    }
}

#[test]
fn set_cover() {
    // Universe {1..5}; sets A={1,2,3}, B={2,4}, C={3,4}, D={4,5}, E={1,5}.
    // Optimal cover: A + D (cost 2).
    let sets: [&[usize]; 5] = [&[1, 2, 3], &[2, 4], &[3, 4], &[4, 5], &[1, 5]];
    let mut m = Model::new(Sense::Minimize);
    let picks: Vec<Var> = (0..5).map(|i| m.add_binary(format!("s{i}"))).collect();
    for element in 1..=5usize {
        let mut cover = LinExpr::new();
        for (k, set) in sets.iter().enumerate() {
            if set.contains(&element) {
                cover.add_term(picks[k], 1.0);
            }
        }
        m.add_ge(cover, 1.0);
    }
    let obj: LinExpr = picks.iter().map(|&p| 1.0 * p).sum();
    m.set_objective(obj);
    assert_obj(&m, 2.0);
}

#[test]
fn facility_location() {
    // 2 facilities (open cost 10, 12), 3 clients; service costs:
    //          c0   c1   c2
    //   f0      2    9    6
    //   f1      8    3    4
    // Optimum: open both (10+12) + 2+3+4 = 31, vs single-facility
    // 10+2+9+6=27 or 12+8+3+4=27 -> single facility wins: 27.
    let open_cost = [10.0, 12.0];
    let serve = [[2.0, 9.0, 6.0], [8.0, 3.0, 4.0]];
    let mut m = Model::new(Sense::Minimize);
    let open: Vec<Var> = (0..2).map(|f| m.add_binary(format!("open{f}"))).collect();
    let mut assign = Vec::new();
    for f in 0..2 {
        let row: Vec<Var> = (0..3).map(|c| m.add_binary(format!("a{f}{c}"))).collect();
        assign.push(row);
    }
    #[allow(clippy::needless_range_loop)] // c indexes two parallel tables
    for c in 0..3 {
        m.add_eq(1.0 * assign[0][c] + 1.0 * assign[1][c], 1.0);
        for (f, &open_f) in open.iter().enumerate() {
            // Can only assign to open facilities.
            m.add_le(1.0 * assign[f][c] - 1.0 * open_f, 0.0);
        }
    }
    let mut obj = LinExpr::new();
    for f in 0..2 {
        obj.add_term(open[f], open_cost[f]);
        for c in 0..3 {
            obj.add_term(assign[f][c], serve[f][c]);
        }
    }
    m.set_objective(obj);
    assert_obj(&m, 27.0);
}

#[test]
fn integer_program_with_negative_bounds() {
    // min x + y with x in [-5, 5] integer, y continuous >= 2x, y >= -x.
    // Optimal: x = 0 is not it — try x = -5: y >= max(-10, 5) = 5 -> 0?
    // x=-5: y >= 5 (from y >= -x) -> obj 0. x=-2: y>=2 -> 0. x=0:y>=0 -> 0.
    // Hmm: obj = x + y >= x + max(2x, -x). For x<=0: = x - x = 0; x>0: 3x.
    // So optimum 0, attained at any x <= 0 with y = -x.
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_integer("x", -5.0, 5.0);
    let y = m.add_continuous("y", f64::NEG_INFINITY, f64::INFINITY);
    m.add_ge(y - 2.0 * x, 0.0);
    m.add_ge(y + 1.0 * x, 0.0);
    m.set_objective(x + y);
    let sol = m.solve().unwrap();
    assert!(
        sol.objective().abs() < 1e-6,
        "objective {}",
        sol.objective()
    );
    let xv = sol.value(x);
    assert!((xv - xv.round()).abs() < 1e-6);
}

#[test]
fn fractional_lp_vs_integer_gap() {
    // max 7a + 5b subject to 3a + 2b <= 4 (binaries).
    // LP relaxation: b = 1 (best value/weight), a = 2/3 -> 29/3 ≈ 9.667;
    // MILP: a=1,b=0 -> 7 (beats a=0,b=1 -> 5).
    let mut m = Model::new(Sense::Maximize);
    let a = m.add_binary("a");
    let b = m.add_binary("b");
    m.add_le(3.0 * a + 2.0 * b, 4.0);
    m.set_objective(7.0 * a + 5.0 * b);
    let milp = m.solve().unwrap();
    let lp = m.solve_relaxation().unwrap();
    assert!((milp.objective() - 7.0).abs() < 1e-6);
    assert!((lp.objective() - 29.0 / 3.0).abs() < 1e-6);
    assert!(lp.objective() >= milp.objective());
}

#[test]
fn equality_heavy_flow_conservation() {
    // Min-cost flow on a 4-node diamond: s -> {a, b} -> t, supply 10.
    // Costs: s-a 1, s-b 3, a-t 2, b-t 1; caps: s-a 6, others 10.
    // Optimum: 6 via a (cost 18), 4 via b (cost 16) -> 34.
    let mut m = Model::new(Sense::Minimize);
    let sa = m.add_continuous("sa", 0.0, 6.0);
    let sb = m.add_continuous("sb", 0.0, 10.0);
    let at = m.add_continuous("at", 0.0, 10.0);
    let bt = m.add_continuous("bt", 0.0, 10.0);
    m.add_eq(sa + sb, 10.0); // supply
    m.add_eq(sa - at, 0.0); // conservation at a
    m.add_eq(sb - bt, 0.0); // conservation at b
    m.set_objective(1.0 * sa + 3.0 * sb + 2.0 * at + 1.0 * bt);
    assert_obj(&m, 34.0);
}

#[test]
fn infeasible_cover_reports_infeasible() {
    let mut m = Model::new(Sense::Minimize);
    let a = m.add_binary("a");
    m.add_ge(1.0 * a, 2.0);
    assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
}

#[test]
fn large_knapsack_terminates_quickly() {
    // 40 items: stress DFS + pruning; optimum known by construction:
    // weights all 2, values all 3, capacity 40 -> take 20 items -> 60.
    let mut m = Model::new(Sense::Maximize);
    let mut weight = LinExpr::new();
    let mut value = LinExpr::new();
    for i in 0..40 {
        let b = m.add_binary(format!("b{i}"));
        weight.add_term(b, 2.0);
        value.add_term(b, 3.0);
    }
    m.add_le(weight, 40.0);
    m.set_objective(value);
    assert_obj(&m, 60.0);
}

#[test]
fn mixed_rotation_disjunction_chain() {
    // Three 1-D segments with selectable lengths (rotation-like binary
    // swapping 2 <-> 5) packed on a line of length L minimized.
    // Optimal: all pick length 2 -> L = 6.
    let mut m = Model::new(Sense::Minimize);
    let l = m.add_continuous("L", 0.0, 100.0);
    let big = 100.0;
    let mut starts = Vec::new();
    let mut lens: Vec<LinExpr> = Vec::new();
    for i in 0..3 {
        let x = m.add_continuous(format!("x{i}"), 0.0, 100.0);
        let z = m.add_binary(format!("z{i}"));
        starts.push(x);
        lens.push(2.0 * z + 5.0 * (1.0 - z)); // z=1 -> 2, z=0 -> 5
    }
    for i in 0..3 {
        m.add_le(starts[i] + lens[i].clone() - l, 0.0);
        for j in i + 1..3 {
            let p = m.add_binary(format!("p{i}{j}"));
            // i before j or j before i.
            m.add_le(starts[i] + lens[i].clone() - starts[j] - big * p, 0.0);
            m.add_le(
                starts[j] + lens[j].clone() - starts[i] - big * (1.0 - p),
                0.0,
            );
        }
    }
    m.set_objective(l + 0.0);
    assert_obj(&m, 6.0);
}
