//! Strengthening equivalence: probing presolve, coefficient tightening and
//! root cuts are a performance lever, never a semantics lever. Every suite
//! solves the same model with strengthening off (`with_strengthen(false)`,
//! the pre-strengthening behavior) and on, serial and parallel, and
//! requires identical proven objectives plus feasibility of the returned
//! point in the *original* model.

mod common;

use common::{classic_cases, parallel, random_milp, serial};
use fp_milp::{Model, Optimality, SolveOptions};

const TOL: f64 = 1e-9;
const FEAS_TOL: f64 = 1e-6;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * (1.0 + a.abs().max(b.abs()))
}

/// Solves `model` under `opts` expecting proven optimality; returns the
/// objective after asserting the point satisfies the original model.
fn proven(model: &Model, opts: &SolveOptions, what: &str) -> f64 {
    let sol = model
        .solve_with(opts)
        .unwrap_or_else(|e| panic!("{what}: {e:?}"));
    assert_eq!(
        sol.optimality(),
        Optimality::Proven,
        "{what} hit a limit instead of proving optimality"
    );
    assert!(
        model.is_feasible(sol.values(), FEAS_TOL),
        "{what}: returned point violates the original (unstrengthened) model"
    );
    let stats = sol.stats();
    if !opts.strengthen {
        assert_eq!(
            (
                stats.rows_tightened,
                stats.binaries_fixed,
                stats.implications,
                stats.cuts_added
            ),
            (0, 0, 0, 0),
            "{what}: strengthening counters moved while disabled"
        );
    }
    sol.objective()
}

#[test]
fn classics_agree_strengthen_on_vs_off() {
    for (name, build) in classic_cases() {
        let (model, expected) = build();
        let off = proven(&model, &serial().with_strengthen(false), name);
        let on = proven(&model, &serial(), name);
        let par_on = proven(&model, &parallel(), name);
        assert!(close(off, expected), "{name}: off {off} != {expected}");
        assert!(close(on, expected), "{name}: on {on} != {expected}");
        assert!(
            close(par_on, expected),
            "{name}: parallel on {par_on} != {expected}"
        );
    }
}

#[test]
fn seeded_models_agree_strengthen_on_vs_off() {
    let mut engaged = 0usize;
    for seed in 0..20u64 {
        let model = random_milp(seed);
        let what = format!("seed {seed}");
        let off = proven(&model, &serial().with_strengthen(false), &what);
        let on_sol = model.solve_with(&serial()).expect("feasible");
        assert_eq!(on_sol.optimality(), Optimality::Proven, "{what}");
        assert!(
            model.is_feasible(on_sol.values(), FEAS_TOL),
            "{what}: strengthened point infeasible in the original model"
        );
        let par = proven(&model, &parallel(), &what);
        assert!(
            close(off, on_sol.objective()),
            "{what}: on {} != off {off}",
            on_sol.objective()
        );
        assert!(close(off, par), "{what}: parallel {par} != off {off}");
        let stats = on_sol.stats();
        engaged +=
            stats.rows_tightened + stats.binaries_fixed + stats.implications + stats.cuts_added;
    }
    // Individually a model may offer nothing to tighten; across 20 seeds
    // the strengthening layer must have engaged somewhere, or it is dead
    // code behind a default-on flag.
    assert!(
        engaged > 0,
        "no tightened rows, fixings, implications or cuts across the seeded set"
    );
}

/// Starved knobs must degrade to exactly the off behavior, never to a
/// half-strengthened model with different semantics.
#[test]
fn zero_budgets_match_off_objectives() {
    for seed in [1u64, 5, 13] {
        let model = random_milp(seed);
        let what = format!("starved seed {seed}");
        let off = proven(&model, &serial().with_strengthen(false), &what);
        let starved = serial().with_probe_budget(0).with_max_cuts(0);
        let starved_obj = proven(&model, &starved, &what);
        assert!(
            close(off, starved_obj),
            "{what}: starved {starved_obj} != off {off}"
        );
    }
}

/// Strengthening composes with warm starts disabled: the cuts land in the
/// root rows before the tree starts, so the cold path must see them too.
#[test]
fn strengthening_composes_with_cold_solves() {
    for (name, build) in classic_cases() {
        let (model, expected) = build();
        let cold_on = proven(&model, &serial().with_warm_start(false), name);
        assert!(
            close(cold_on, expected),
            "{name}: cold+strengthen {cold_on} != {expected}"
        );
    }
}
