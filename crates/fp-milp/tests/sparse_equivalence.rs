//! Dense vs sparse kernel equivalence: the sparse revised simplex is a
//! performance lever, never a semantics lever. Every suite here solves the
//! same model on the dense reference tableau (`with_sparse(false)`) and on
//! the sparse LU + eta-file kernel (the default), serial and parallel, and
//! requires identical proven objectives and identical feasibility verdicts.
//! Degenerate structure — duplicated equalities, rank-deficient row sets,
//! zero-cost ties — gets its own cases, and a highly degenerate instance
//! runs under a hard pivot-count watchdog so a cycling regression fails
//! fast instead of hanging the suite.

mod common;

use common::{classic_cases, parallel, random_milp, serial};
use fp_milp::{
    LinExpr, Model, Optimality, Sense, Solution, SolveError, SolveOptions, SparseMode, Var,
};
use std::sync::mpsc;
use std::time::Duration;

const TOL: f64 = 1e-9;

/// Generous wall-clock bound for the watchdog solves; a cycling kernel
/// shows up as a test failure, not a hung suite.
const WATCHDOG: Duration = Duration::from_secs(60);

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * (1.0 + a.abs().max(b.abs()))
}

fn dense_serial() -> SolveOptions {
    serial().with_sparse(false)
}

fn sparse_serial() -> SolveOptions {
    serial().with_sparse(true)
}

fn sparse_parallel() -> SolveOptions {
    parallel().with_sparse(true)
}

/// Solves `model` under `opts` expecting proven optimality and a feasible
/// incumbent; returns the solution for stats inspection.
fn proven(model: &Model, opts: &SolveOptions, what: &str) -> Solution {
    let sol = model
        .solve_with(opts)
        .unwrap_or_else(|e| panic!("{what}: {e:?}"));
    assert_eq!(
        sol.optimality(),
        Optimality::Proven,
        "{what} hit a limit instead of proving optimality"
    );
    assert!(
        model.is_feasible(sol.values(), 1e-6),
        "{what}: proven incumbent violates the model"
    );
    if opts.sparse == SparseMode::Dense {
        let stats = sol.stats();
        assert_eq!(
            (stats.refactorizations, stats.eta_updates),
            (0, 0),
            "{what}: dense kernel must not report factorization work"
        );
    }
    sol
}

/// Solves dense-serial, sparse-serial and sparse-parallel and requires the
/// three proven objectives to coincide; returns the agreed objective.
fn assert_three_way(model: &Model, what: &str) -> f64 {
    let dense = proven(model, &dense_serial(), &format!("{what} [dense]")).objective();
    let sparse = proven(model, &sparse_serial(), &format!("{what} [sparse]")).objective();
    let par = proven(model, &sparse_parallel(), &format!("{what} [sparse-par]")).objective();
    assert!(
        close(dense, sparse),
        "{what}: dense {dense} != sparse {sparse}"
    );
    assert!(
        close(dense, par),
        "{what}: dense {dense} != sparse-parallel {par}"
    );
    dense
}

#[test]
fn classics_agree_dense_vs_sparse() {
    for (name, build) in classic_cases() {
        let (model, expected) = build();
        let obj = assert_three_way(&model, name);
        assert!(
            close(obj, expected),
            "{name}: {obj} != known optimum {expected}"
        );
    }
}

/// `SparseMode::Auto` is a dispatch policy, never a semantics lever: on
/// every classic case it must prove the same objective as both forced
/// kernels, whichever side of the size threshold the instance lands on.
#[test]
fn auto_mode_matches_forced_kernels() {
    for (name, build) in classic_cases() {
        let (model, expected) = build();
        let opts = serial().with_sparse_mode(SparseMode::Auto);
        let obj = proven(&model, &opts, &format!("{name} [auto]")).objective();
        assert!(
            close(obj, expected),
            "{name} [auto]: {obj} != known optimum {expected}"
        );
    }
}

#[test]
fn seeded_models_agree_dense_vs_sparse() {
    let mut refactors = 0usize;
    for seed in 0..32u64 {
        let model = random_milp(seed);
        let what = format!("seed {seed}");
        let dense = proven(&model, &dense_serial(), &format!("{what} [dense]"));
        let sparse = proven(&model, &sparse_serial(), &format!("{what} [sparse]"));
        let par = proven(&model, &sparse_parallel(), &format!("{what} [sparse-par]"));
        let (d, s, p) = (dense.objective(), sparse.objective(), par.objective());
        assert!(close(d, s), "{what}: dense {d} != sparse {s}");
        assert!(close(d, p), "{what}: dense {d} != sparse-parallel {p}");
        refactors += sparse.stats().refactorizations;
    }
    // Every sparse node LP factorizes at least once on load, so a sweep
    // that never refactorized means the counters (or the dispatch to the
    // sparse kernel) are broken.
    assert!(refactors > 0, "sparse sweep reported no factorizations");
}

/// Duplicated equality rows: the slack of every copy is pinned to `[0, 0]`
/// and only one copy can sit in a nonsingular basis, so cold starts must
/// lean on the artificial handling and warm starts on the singularity
/// fallback.
#[test]
fn duplicated_equalities_agree() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_continuous("x", 0.0, 10.0);
    let y = m.add_continuous("y", 0.0, 10.0);
    let b = m.add_binary("b");
    for _ in 0..4 {
        m.add_eq(x + y, 6.0);
    }
    m.add_le(x - 4.0 * b, 0.0);
    m.set_objective(2.0 * x + y + 3.0 * b);
    let obj = assert_three_way(&m, "duplicated_equalities");
    assert!(close(obj, 13.0), "{obj} != 13");
}

/// Contradictory duplicated equalities: both kernels must prove
/// infeasibility, not disagree or stall on the rank-deficient row set.
#[test]
fn contradictory_duplicates_are_infeasible_on_both_kernels() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_continuous("x", 0.0, 10.0);
    let y = m.add_continuous("y", 0.0, 10.0);
    m.add_eq(x + y, 1.0);
    m.add_eq(x + y, 1.0);
    m.add_eq(x + y, 2.0);
    m.set_objective(x + y);
    for (opts, what) in [
        (dense_serial(), "dense"),
        (sparse_serial(), "sparse"),
        (sparse_parallel(), "sparse-parallel"),
    ] {
        assert_eq!(
            m.solve_with(&opts).map(|s| s.objective()),
            Err(SolveError::Infeasible),
            "{what} kernel missed the contradiction"
        );
    }
}

/// Rank-deficient row set: scaled copies and a summed row add nothing to
/// the span, leaving several basis candidates singular.
#[test]
fn rank_deficient_rows_agree() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_continuous("x", 0.0, 20.0);
    let y = m.add_continuous("y", 0.0, 20.0);
    let z = m.add_integer("z", 0.0, 5.0);
    m.add_ge(x + y, 4.0);
    m.add_ge(2.0 * x + 2.0 * y, 8.0); // 2 × the first row
    m.add_ge(x + y + 0.0 * z, 4.0); // same face again
    m.add_ge(3.0 * x + 3.0 * y, 12.0); // and again, rescaled
    m.add_ge(1.0 * z - 0.5 * x, 0.0);
    m.set_objective(x + 2.0 * y + 3.0 * z);
    let obj = assert_three_way(&m, "rank_deficient_rows");
    assert!(close(obj, 8.0), "{obj} != 8");
}

/// Zero-cost ties: every vertex of the assignment polytope is optimal, so
/// pricing breaks ties constantly. Objectives must still agree exactly.
#[test]
fn zero_cost_ties_agree() {
    let n = 4usize;
    let mut m = Model::new(Sense::Minimize);
    let x: Vec<Vec<Var>> = (0..n)
        .map(|i| (0..n).map(|j| m.add_binary(format!("x{i}{j}"))).collect())
        .collect();
    for i in 0..n {
        let row: LinExpr = x[i].iter().map(|&v| 1.0 * v).sum();
        m.add_eq(row, 1.0);
        let col: LinExpr = x.iter().map(|r| 1.0 * r[i]).sum();
        m.add_eq(col, 1.0);
    }
    // Uniform costs: the objective is 5 at every feasible point.
    let obj: LinExpr = x.iter().flatten().map(|&v| 1.25 * v).sum();
    m.set_objective(obj);
    let got = assert_three_way(&m, "zero_cost_ties");
    assert!(close(got, 5.0), "{got} != 5");
}

/// A transportation-style instance with massive primal degeneracy (every
/// supply equals every demand, uniform costs) solved under both a
/// wall-clock watchdog and a hard pivot budget: anti-cycling (the Bland
/// fallback) must terminate the sparse kernel in bounded work.
#[test]
fn degenerate_instance_respects_pivot_watchdog() {
    let n = 6usize;
    let mut m = Model::new(Sense::Minimize);
    let x: Vec<Vec<Var>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| m.add_continuous(format!("t{i}{j}"), 0.0, 1.0))
                .collect()
        })
        .collect();
    for i in 0..n {
        let row: LinExpr = x[i].iter().map(|&v| 1.0 * v).sum();
        m.add_eq(row, 1.0);
        let col: LinExpr = x.iter().map(|r| 1.0 * r[i]).sum();
        m.add_eq(col, 1.0);
    }
    // One binary so the solve still exercises the branch-and-bound path.
    let pick = m.add_binary("pick");
    m.add_ge(x[0][0] + 1.0 * pick, 1.0);
    let cost: LinExpr = x.iter().flatten().map(|&v| 2.0 * v).sum();
    m.set_objective(cost + 0.5 * pick);

    for (opts, what) in [(dense_serial(), "dense"), (sparse_serial(), "sparse")] {
        let (tx, rx) = mpsc::channel();
        let model = m.clone();
        std::thread::spawn(move || {
            let _ = tx.send(model.solve_with(&opts));
        });
        let sol = rx
            .recv_timeout(WATCHDOG)
            .unwrap_or_else(|_| panic!("{what}: solver cycled past the watchdog"))
            .unwrap_or_else(|e| panic!("{what}: {e:?}"));
        assert_eq!(sol.optimality(), Optimality::Proven, "{what}");
        assert!(close(sol.objective(), 12.0), "{what}: {}", sol.objective());
        // Hard pivot budget: a healthy solve of this instance takes tens of
        // pivots; anything in the thousands means the anti-cycling switch
        // failed and the iteration cap bailed us out instead.
        assert!(
            sol.stats().simplex_iterations < 2_000,
            "{what}: {} pivots on a 6x6 degenerate transportation instance",
            sol.stats().simplex_iterations
        );
    }
}

/// The refactorization interval is a drift-control knob, not a semantics
/// knob: factorizing after every pivot and (nearly) never must both land
/// on the reference objective.
#[test]
fn refactor_interval_extremes_agree() {
    for seed in [2u64, 7, 11] {
        let model = random_milp(seed);
        let what = format!("seed {seed}");
        let reference = proven(&model, &dense_serial(), &format!("{what} [dense]")).objective();
        for interval in [1usize, 1_000_000] {
            let opts = sparse_serial().with_refactor_interval(interval);
            let got = proven(&model, &opts, &format!("{what} [interval {interval}]")).objective();
            assert!(
                close(reference, got),
                "{what}: interval {interval} drifted: {got} != {reference}"
            );
        }
    }
}
