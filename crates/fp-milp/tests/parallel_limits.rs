//! Termination under node and time limits with a parallel frontier: the
//! solver must return promptly (no deadlock between idle workers and the
//! condvar), must not claim a proof, and any incumbent it does return must
//! be feasible. Every solve runs on a watchdog thread with a generous
//! outer timeout so a termination bug fails the test instead of hanging
//! the suite.

use fp_milp::{LinExpr, Model, Optimality, Sense, Solution, SolveError, SolveOptions};
use std::sync::mpsc;
use std::time::Duration;

/// Generous bound on how long a "returns almost immediately" solve may
/// really take before we call it a hang.
const WATCHDOG: Duration = Duration::from_secs(30);

/// A 1-D segment-packing MILP whose tree is far too large for a few
/// milliseconds: `n` segments with selectable lengths and pairwise big-M
/// ordering disjunctions.
fn hard_packing(n: usize) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let l = m.add_continuous("L", 0.0, 1000.0);
    let big = 1000.0;
    let mut starts = Vec::new();
    let mut lens: Vec<LinExpr> = Vec::new();
    for i in 0..n {
        let x = m.add_continuous(format!("x{i}"), 0.0, 1000.0);
        let z = m.add_binary(format!("z{i}"));
        starts.push(x);
        let short = 2.0 + (i % 3) as f64;
        let long = 5.0 + (i % 4) as f64;
        lens.push(short * z + long * (1.0 - z));
    }
    for i in 0..n {
        m.add_le(starts[i] + lens[i].clone() - l, 0.0);
        for j in i + 1..n {
            let p = m.add_binary(format!("p{i}_{j}"));
            m.add_le(starts[i] + lens[i].clone() - starts[j] - big * p, 0.0);
            m.add_le(
                starts[j] + lens[j].clone() - starts[i] - big * (1.0 - p),
                0.0,
            );
        }
    }
    m.set_objective(l + 0.0);
    m
}

/// Runs the solve on its own thread and panics if it exceeds the watchdog —
/// a deadlocked frontier shows up as a test failure, not a hung suite.
fn solve_with_watchdog(m: Model, opts: SolveOptions) -> Result<Solution, SolveError> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(m.solve_with(&opts));
    });
    rx.recv_timeout(WATCHDOG)
        .expect("solver did not return before the watchdog: deadlocked termination")
}

/// Whatever the limited solve returns must be an honest "limit bound"
/// answer: a feasible incumbent marked `Limit`, or `LimitWithoutIncumbent`.
fn assert_limit_outcome(m: &Model, result: Result<Solution, SolveError>, label: &str) {
    match result {
        Ok(s) => {
            assert_eq!(
                s.optimality(),
                Optimality::Limit,
                "{label}: a truncated search must not claim a proof"
            );
            assert!(
                m.is_feasible(s.values(), 1e-6),
                "{label}: limit incumbent is infeasible"
            );
        }
        Err(e) => assert_eq!(e, SolveError::LimitWithoutIncumbent, "{label}"),
    }
}

#[test]
fn tiny_node_limit_terminates_all_thread_counts() {
    for threads in [1usize, 2, 4, 8] {
        let m = hard_packing(10);
        let check = m.clone();
        let opts = SolveOptions::default()
            .with_threads(threads)
            .with_node_limit(5);
        let result = solve_with_watchdog(m, opts);
        if let Ok(s) = &result {
            assert!(
                s.stats().nodes <= 5,
                "threads {threads}: node limit overshot to {}",
                s.stats().nodes
            );
        }
        assert_limit_outcome(&check, result, &format!("node_limit threads={threads}"));
    }
}

#[test]
fn short_time_limit_terminates_all_thread_counts() {
    for threads in [1usize, 2, 4, 8] {
        let m = hard_packing(12);
        let check = m.clone();
        let opts = SolveOptions::default()
            .with_threads(threads)
            .with_time_limit(Duration::from_millis(50));
        let result = solve_with_watchdog(m, opts);
        assert_limit_outcome(&check, result, &format!("time_limit threads={threads}"));
    }
}

#[test]
fn both_limits_zero_return_immediately() {
    for threads in [1usize, 4] {
        let m = hard_packing(6);
        let opts = SolveOptions::default()
            .with_threads(threads)
            .with_node_limit(0)
            .with_time_limit(Duration::ZERO);
        let result = solve_with_watchdog(m, opts);
        assert_eq!(
            result.unwrap_err(),
            SolveError::LimitWithoutIncumbent,
            "threads {threads}"
        );
    }
}

/// More workers than frontier nodes: most workers go idle immediately and
/// must still shut down cleanly once the one busy worker drains the tree.
#[test]
fn more_threads_than_work_terminates() {
    let mut m = Model::new(Sense::Maximize);
    let a = m.add_binary("a");
    let b = m.add_binary("b");
    m.add_le(3.0 * a + 4.0 * b, 5.0);
    m.set_objective(2.0 * a + 3.0 * b);
    let opts = SolveOptions::default().with_threads(16);
    let s = solve_with_watchdog(m, opts).expect("feasible");
    assert_eq!(s.optimality(), Optimality::Proven);
    assert!((s.objective() - 3.0).abs() < 1e-6);
    assert_eq!(s.stats().per_thread.len(), 16);
}
