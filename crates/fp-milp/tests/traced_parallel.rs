//! Parallel-safety of the observability layer (satellite of the fp-obs PR):
//! solving with a [`fp_obs::Collector`] attached must tell the same story as
//! [`SolveStats`](fp_milp::SolveStats) at every thread count.
//!
//! Order of events is NOT part of the contract under parallelism (workers
//! race), so assertions are over the event *multiset*: counts, totals, and
//! the incumbent subsequence — which IS ordered, because incumbent events
//! are emitted while the incumbent lock is held.

mod common;

use common::{classic_cases, random_milp};
use fp_milp::{Model, Optimality, SolveOptions};
use fp_obs::{Collector, Event, EventKind, Tracer};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Solves `m` with a collector attached and cross-checks the trace against
/// the solver's own statistics. Returns the proven objective.
fn solve_and_check(m: &Model, threads: usize, label: &str) -> f64 {
    let collector = Collector::new();
    let tracer = Tracer::new(collector.clone());
    let opts = SolveOptions::default().with_threads(threads);
    let sol = m.solve_traced(&opts, &tracer).expect("solve");
    assert_eq!(
        sol.optimality(),
        Optimality::Proven,
        "{label} t{threads}: not proven"
    );

    // Exactly one SolveStart / SolveEnd pair per solve.
    assert_eq!(
        collector.count_of(EventKind::SolveStart),
        1,
        "{label} t{threads}: SolveStart count"
    );
    assert_eq!(
        collector.count_of(EventKind::SolveEnd),
        1,
        "{label} t{threads}: SolveEnd count"
    );

    // The trace's node multiset matches the solver's own accounting.
    assert_eq!(
        collector.count_of(EventKind::BnbNode),
        sol.stats().nodes,
        "{label} t{threads}: BnbNode count vs stats.nodes"
    );

    // Per-node pivots are counted on every outcome path (wasted warm
    // pivots included), so they must sum to the stats total, and the
    // per-node warm flags must sum to the stats warm count.
    let (mut pivot_sum, mut warm_sum) = (0u64, 0usize);
    for r in collector.of_kind(EventKind::BnbNode) {
        let Event::BnbNode { warm, pivots, .. } = r.event else {
            unreachable!("of_kind returned a non-BnbNode record");
        };
        pivot_sum += pivots;
        warm_sum += usize::from(warm);
    }
    assert_eq!(
        pivot_sum,
        sol.stats().simplex_iterations as u64,
        "{label} t{threads}: BnbNode pivot sum vs stats.simplex_iterations"
    );
    assert_eq!(
        warm_sum,
        sol.stats().warm_nodes,
        "{label} t{threads}: BnbNode warm flags vs stats.warm_nodes"
    );

    // SolveEnd carries the same totals the stats report.
    let ends = collector.of_kind(EventKind::SolveEnd);
    let Event::SolveEnd {
        nodes,
        simplex_iterations,
        proven,
    } = ends[0].event
    else {
        unreachable!("of_kind returned a non-SolveEnd record");
    };
    assert_eq!(nodes, sol.stats().nodes, "{label} t{threads}: end nodes");
    assert_eq!(
        simplex_iterations,
        sol.stats().simplex_iterations,
        "{label} t{threads}: end simplex iterations"
    );
    assert!(proven, "{label} t{threads}: end proven flag");

    // Incumbents are emitted under the incumbent lock, so the collected
    // sequence is strictly improving and ends at the reported objective.
    let incumbents: Vec<f64> = collector
        .of_kind(EventKind::Incumbent)
        .iter()
        .map(|r| match r.event {
            Event::Incumbent { objective } => objective,
            _ => unreachable!(),
        })
        .collect();
    assert!(
        !incumbents.is_empty(),
        "{label} t{threads}: no incumbent events on a feasible solve"
    );
    for pair in incumbents.windows(2) {
        let improved = match m.sense() {
            fp_milp::Sense::Minimize => pair[1] < pair[0],
            fp_milp::Sense::Maximize => pair[1] > pair[0],
        };
        assert!(
            improved,
            "{label} t{threads}: incumbent sequence not monotone: {incumbents:?}"
        );
    }
    let last = *incumbents.last().unwrap();
    assert!(
        (last - sol.objective()).abs() < 1e-9,
        "{label} t{threads}: last incumbent {last} != objective {}",
        sol.objective()
    );

    sol.objective()
}

#[test]
fn classics_trace_consistently_across_thread_counts() {
    for (label, build) in classic_cases() {
        let (m, expected) = build();
        let mut objectives = Vec::new();
        for threads in THREAD_COUNTS {
            objectives.push(solve_and_check(&m, threads, label));
        }
        for &obj in &objectives {
            assert!(
                (obj - expected).abs() < 1e-6,
                "{label}: objective {obj} != known optimum {expected}"
            );
        }
    }
}

#[test]
fn random_models_trace_consistently_across_thread_counts() {
    for seed in 0..8u64 {
        let m = random_milp(seed);
        let label = format!("random_milp(seed {seed})");
        let serial_obj = solve_and_check(&m, 1, &label);
        for threads in [2, 4] {
            let obj = solve_and_check(&m, threads, &label);
            assert!(
                (obj - serial_obj).abs() < 1e-6,
                "{label}: t{threads} objective {obj} != serial {serial_obj}"
            );
        }
    }
}

/// With no tracer attached the solver must behave identically — this pins
/// the "cheap when disabled" contract at the solver layer.
#[test]
fn disabled_tracer_changes_nothing() {
    let (m, _) = common::facility_location();
    let opts = SolveOptions::default().with_threads(1);
    let plain = m.solve_with(&opts).unwrap();
    let traced = m.solve_traced(&opts, &Tracer::disabled()).unwrap();
    assert_eq!(plain.values(), traced.values());
    assert_eq!(plain.objective(), traced.objective());
    assert_eq!(plain.stats().nodes, traced.stats().nodes);
}
