//! Warm-start equivalence: warm-started dual simplex is a performance
//! lever, never a semantics lever. Every suite here solves the same model
//! cold (`with_warm_start(false)`, the pre-warm-start behavior) and warm,
//! serial and parallel, and requires identical proven objectives.

mod common;

use common::{classic_cases, parallel, random_milp, serial};
use fp_milp::{Model, Optimality, Sense, SolveOptions};

const TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * (1.0 + a.abs().max(b.abs()))
}

/// Solves `model` under `opts` expecting proven optimality.
fn proven(model: &Model, opts: &SolveOptions, what: &str) -> f64 {
    let sol = model
        .solve_with(opts)
        .unwrap_or_else(|e| panic!("{what}: {e:?}"));
    assert_eq!(
        sol.optimality(),
        Optimality::Proven,
        "{what} hit a limit instead of proving optimality"
    );
    let stats = sol.stats();
    assert_eq!(
        stats.warm_nodes + stats.cold_nodes,
        stats.nodes,
        "{what}: warm/cold counts must partition the node count"
    );
    if !opts.warm_start {
        assert_eq!(stats.warm_nodes, 0, "{what}: warm solves while disabled");
    }
    sol.objective()
}

#[test]
fn classics_agree_cold_vs_warm() {
    for (name, build) in classic_cases() {
        let (model, expected) = build();
        let cold = proven(&model, &serial().with_warm_start(false), name);
        let warm = proven(&model, &serial(), name);
        let par_warm = proven(&model, &parallel(), name);
        assert!(close(cold, expected), "{name}: cold {cold} != {expected}");
        assert!(close(warm, expected), "{name}: warm {warm} != {expected}");
        assert!(
            close(par_warm, expected),
            "{name}: parallel warm {par_warm} != {expected}"
        );
    }
}

#[test]
fn seeded_models_agree_cold_vs_warm() {
    let mut warm_total = 0usize;
    for seed in 0..20u64 {
        let model = random_milp(seed);
        let what = format!("seed {seed}");
        let cold = proven(&model, &serial().with_warm_start(false), &what);
        let warm_sol = model.solve_with(&serial()).expect("feasible");
        assert_eq!(warm_sol.optimality(), Optimality::Proven, "{what}");
        let par = proven(&model, &parallel(), &what);
        assert!(
            close(cold, warm_sol.objective()),
            "{what}: warm {} != cold {cold}",
            warm_sol.objective()
        );
        assert!(close(cold, par), "{what}: parallel {par} != cold {cold}");
        warm_total += warm_sol.stats().warm_nodes;
    }
    // Individually a tiny tree may solve all-cold; across 20 seeds the
    // warm path must have engaged somewhere, or warm starts are dead code.
    assert!(
        warm_total > 0,
        "no warm node solves across the entire seeded set"
    );
}

/// A degenerate LP relaxation: duplicated equality rows make the basis
/// singular to refactorize for one child after branching, exercising the
/// cold-restart fallback without changing the optimum.
#[test]
fn degenerate_duplicated_rows_fall_back_and_stay_correct() {
    let build = || {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_continuous("z", 0.0, 2.0);
        // The same equality three times over: any basis carrying two of
        // the duplicate slacks is singular on the structural columns.
        for _ in 0..3 {
            m.add_eq(1.0 * x + 1.0 * y + 1.0 * z, 2.0);
        }
        m.add_le(1.0 * x + 1.0 * y, 1.0);
        m.set_objective(3.0 * x + 2.0 * y + 1.0 * z);
        m
    };
    let cold = proven(
        &build(),
        &serial().with_warm_start(false),
        "degenerate cold",
    );
    let warm = proven(&build(), &serial(), "degenerate warm");
    assert!(close(cold, warm), "degenerate: warm {warm} != cold {cold}");
}

/// A pivot cap of 1 starves almost every dual re-optimization, forcing
/// the fallback path; results must not change.
#[test]
fn tiny_pivot_cap_only_costs_time() {
    for seed in [2u64, 7, 11] {
        let model = random_milp(seed);
        let what = format!("capped seed {seed}");
        let cold = proven(&model, &serial().with_warm_start(false), &what);
        let capped_opts = serial().with_warm_pivot_cap(1);
        let capped_sol = model.solve_with(&capped_opts).expect("feasible");
        assert_eq!(capped_sol.optimality(), Optimality::Proven, "{what}");
        assert!(
            close(cold, capped_sol.objective()),
            "{what}: capped {} != cold {cold}",
            capped_sol.objective()
        );
        let stats = capped_sol.stats();
        assert_eq!(stats.warm_nodes + stats.cold_nodes, stats.nodes, "{what}");
        if stats.nodes > 1 {
            assert!(
                stats.cold_nodes > 1,
                "{what}: a 1-pivot cap should force cold fallbacks \
                 (got {} cold of {} nodes)",
                stats.cold_nodes,
                stats.nodes
            );
        }
    }
}
