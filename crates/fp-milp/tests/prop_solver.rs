//! Property-based tests: the solver is checked against brute force on tiny
//! random MILPs and against feasibility/optimality invariants on random LPs.

use fp_milp::{Cmp, LinExpr, Model, Optimality, Sense, SolveError};
use proptest::prelude::*;

/// A randomly generated pure-binary program plus its data for brute force.
#[derive(Debug, Clone)]
struct BinaryProgram {
    nvars: usize,
    /// rows: coefficients, cmp (0 = Le, 1 = Ge), rhs
    rows: Vec<(Vec<i32>, u8, i32)>,
    obj: Vec<i32>,
    maximize: bool,
}

fn binary_program() -> impl Strategy<Value = BinaryProgram> {
    (2usize..=7).prop_flat_map(|nvars| {
        let row = (
            proptest::collection::vec(-4i32..=4, nvars),
            0u8..=1,
            -6i32..=10,
        );
        (
            proptest::collection::vec(row, 1..=4),
            proptest::collection::vec(-5i32..=5, nvars),
            any::<bool>(),
        )
            .prop_map(move |(rows, obj, maximize)| BinaryProgram {
                nvars,
                rows,
                obj,
                maximize,
            })
    })
}

fn build_model(p: &BinaryProgram) -> (Model, Vec<fp_milp::Var>) {
    let mut m = Model::new(if p.maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    });
    let vars: Vec<_> = (0..p.nvars)
        .map(|i| m.add_binary(format!("b{i}")))
        .collect();
    for (coeffs, cmp, rhs) in &p.rows {
        let mut e = LinExpr::new();
        for (v, &c) in vars.iter().zip(coeffs) {
            e.add_term(*v, f64::from(c));
        }
        let cmp = if *cmp == 0 { Cmp::Le } else { Cmp::Ge };
        m.add_constraint(e, cmp, f64::from(*rhs));
    }
    let mut obj = LinExpr::new();
    for (v, &c) in vars.iter().zip(&p.obj) {
        obj.add_term(*v, f64::from(c));
    }
    m.set_objective(obj);
    (m, vars)
}

/// Exhaustive optimum over all 2^n binary assignments, or None if infeasible.
fn brute_force(p: &BinaryProgram) -> Option<i64> {
    let mut best: Option<i64> = None;
    for mask in 0u32..(1 << p.nvars) {
        let x: Vec<i64> = (0..p.nvars).map(|i| i64::from(mask >> i & 1)).collect();
        let feasible = p.rows.iter().all(|(coeffs, cmp, rhs)| {
            let lhs: i64 = coeffs.iter().zip(&x).map(|(&c, &v)| i64::from(c) * v).sum();
            if *cmp == 0 {
                lhs <= i64::from(*rhs)
            } else {
                lhs >= i64::from(*rhs)
            }
        });
        if !feasible {
            continue;
        }
        let obj: i64 = p.obj.iter().zip(&x).map(|(&c, &v)| i64::from(c) * v).sum();
        best = Some(match best {
            None => obj,
            Some(b) => {
                if p.maximize {
                    b.max(obj)
                } else {
                    b.min(obj)
                }
            }
        });
    }
    best
}

/// Builds the witness-feasible random LP shared by the LP properties: each
/// row is `a·x <= a·witness + slack`, so `witness` is always feasible.
/// Returns the model and the witness's objective value.
fn witness_lp(
    witness: &[f64],
    coeff_rows: &[Vec<i32>],
    obj: &[i32],
    slacks: &[f64],
) -> (Model, f64) {
    let n = witness.len();
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_continuous(format!("x{i}"), 0.0, 20.0))
        .collect();
    for (coeffs, slack) in coeff_rows.iter().zip(slacks) {
        let mut e = LinExpr::new();
        let mut rhs = *slack;
        for (v, (&c, w)) in vars.iter().zip(coeffs.iter().zip(witness)) {
            e.add_term(*v, f64::from(c));
            rhs += f64::from(c) * w;
        }
        m.add_le(e, rhs);
    }
    let mut objective = LinExpr::new();
    let mut witness_obj = 0.0;
    for (v, (&c, w)) in vars.iter().zip(obj.iter().zip(witness)) {
        objective.add_term(*v, f64::from(c));
        witness_obj += f64::from(c) * w;
    }
    m.set_objective(objective);
    (m, witness_obj)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Branch-and-bound matches exhaustive enumeration on tiny binary MILPs.
    #[test]
    fn milp_matches_brute_force(p in binary_program()) {
        let (model, _) = build_model(&p);
        let expected = brute_force(&p);
        match (model.solve(), expected) {
            (Ok(sol), Some(best)) => {
                prop_assert_eq!(sol.optimality(), Optimality::Proven);
                prop_assert!((sol.objective() - best as f64).abs() < 1e-6,
                    "solver {} vs brute force {}", sol.objective(), best);
                // The reported point itself must be feasible.
                prop_assert!(model.is_feasible(sol.values(), 1e-6));
            }
            (Err(SolveError::Infeasible), None) => {}
            (got, want) => prop_assert!(false, "solver {:?} vs brute force {:?}", got, want),
        }
    }

    /// Random LPs built around a known feasible point: the solver must return
    /// a feasible solution at least as good as that point.
    #[test]
    fn lp_solution_feasible_and_no_worse_than_witness(
        witness in proptest::collection::vec(0.0f64..10.0, 2..6),
        coeff_rows in proptest::collection::vec(
            proptest::collection::vec(-3i32..=3, 6), 1..5),
        obj in proptest::collection::vec(-3i32..=3, 6),
        slacks in proptest::collection::vec(0.0f64..5.0, 1..5),
    ) {
        let (m, witness_obj) = witness_lp(&witness, &coeff_rows, &obj, &slacks);
        let sol = m.solve().expect("witness point guarantees feasibility");
        prop_assert!(m.is_feasible(sol.values(), 1e-5),
            "returned point infeasible: {:?}", sol.values());
        prop_assert!(sol.objective() <= witness_obj + 1e-6,
            "solver {} worse than witness {}", sol.objective(), witness_obj);
    }

    /// With no constraints, each variable lands on the bound favored by its
    /// objective coefficient.
    #[test]
    fn unconstrained_boxes_hit_bounds(
        bounds in proptest::collection::vec((0.0f64..5.0, 5.0f64..10.0), 1..6),
        signs in proptest::collection::vec(any::<bool>(), 6),
    ) {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = bounds
            .iter()
            .enumerate()
            .map(|(i, &(lo, hi))| m.add_continuous(format!("x{i}"), lo, hi))
            .collect();
        let mut e = LinExpr::new();
        for (v, &s) in vars.iter().zip(&signs) {
            e.add_term(*v, if s { 1.0 } else { -1.0 });
        }
        m.set_objective(e);
        let sol = m.solve().unwrap();
        for ((v, &(lo, hi)), &s) in vars.iter().zip(&bounds).zip(&signs) {
            let expect = if s { lo } else { hi };
            prop_assert!((sol.value(*v) - expect).abs() < 1e-7);
        }
    }

    /// Mixed binary + continuous: solution respects integrality and coupling
    /// rows `x_i <= 10 b_i` (a fixed-charge structure).
    #[test]
    fn fixed_charge_structure(
        gains in proptest::collection::vec(1i32..=9, 2..5),
        budget in 1i32..=15,
    ) {
        let n = gains.len();
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..n).map(|i| m.add_continuous(format!("x{i}"), 0.0, 10.0)).collect();
        let bs: Vec<_> = (0..n).map(|i| m.add_binary(format!("b{i}"))).collect();
        for (x, b) in xs.iter().zip(&bs) {
            m.add_le(*x - 10.0 * *b, 0.0);
        }
        let opened: LinExpr = bs.iter().map(|&b| 3.0 * b).sum();
        m.add_le(opened, f64::from(budget));
        let mut obj = LinExpr::new();
        for (x, &g) in xs.iter().zip(&gains) {
            obj.add_term(*x, f64::from(g));
        }
        m.set_objective(obj);
        let sol = m.solve().unwrap();
        prop_assert!(m.is_feasible(sol.values(), 1e-6));
        // Optimal structure: open the floor(budget/3) highest-gain plants
        // fully.
        let mut sorted = gains.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let open = ((budget / 3) as usize).min(n);
        let expect: f64 = sorted[..open].iter().map(|&g| 10.0 * f64::from(g)).sum();
        prop_assert!((sol.objective() - expect).abs() < 1e-5,
            "got {} expected {}", sol.objective(), expect);
    }

    /// Sparse revised basis invariant: with the refactorization interval
    /// pushed out of reach, the eta file holds every pivot since the last
    /// factorization, and `B·(B⁻¹·e_i)` must still round-trip within 1e-7
    /// for every basis column.
    #[test]
    fn sparse_basis_roundtrips_after_random_pivots(
        witness in proptest::collection::vec(0.0f64..10.0, 2..6),
        coeff_rows in proptest::collection::vec(
            proptest::collection::vec(-3i32..=3, 6), 1..5),
        obj in proptest::collection::vec(-3i32..=3, 6),
        slacks in proptest::collection::vec(0.0f64..5.0, 1..5),
    ) {
        let (m, _) = witness_lp(&witness, &coeff_rows, &obj, &slacks);
        let probe = fp_milp::test_support::sparse_root_lp_probe(&m, 1_000_000);
        prop_assert!(probe.objective.is_some(), "witness LP must solve to optimality");
        prop_assert!(probe.roundtrip <= 1e-7,
            "basis round-trip residual {} after {} pivots ({} etas live, {} refactors)",
            probe.roundtrip, probe.pivots, probe.live_etas, probe.refactors);
    }

    /// Refactorizing after every pivot must land on the same objective as
    /// the accumulated eta-file path: the interval trades factorization
    /// time against drift, never the answer.
    #[test]
    fn forced_refactorization_reaches_same_objective(
        witness in proptest::collection::vec(0.0f64..10.0, 2..6),
        coeff_rows in proptest::collection::vec(
            proptest::collection::vec(-3i32..=3, 6), 1..5),
        obj in proptest::collection::vec(-3i32..=3, 6),
        slacks in proptest::collection::vec(0.0f64..5.0, 1..5),
    ) {
        let (m, _) = witness_lp(&witness, &coeff_rows, &obj, &slacks);
        let lazy = fp_milp::test_support::sparse_root_lp_probe(&m, 1_000_000);
        let eager = fp_milp::test_support::sparse_root_lp_probe(&m, 1);
        match (lazy.objective, eager.objective) {
            (Some(a), Some(b)) => prop_assert!(
                (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
                "interval drift: lazy {a} vs forced {b}"
            ),
            (None, None) => {}
            other => prop_assert!(false, "outcome diverged: {other:?}"),
        }
        // Interval 1 really does refactorize the eta file away after every
        // pivot (one survivor tolerated in case a refresh hit a singular
        // scratch factorization and fell back to the eta representation).
        prop_assert!(eager.live_etas <= 1,
            "{} live etas after {} pivots at interval 1", eager.live_etas, eager.pivots);
    }
}
