//! Serial-vs-parallel equivalence: the shared-frontier parallel search must
//! prove the same optimum as the deterministic serial solver on every
//! instance — the classics with known optima plus a battery of seeded
//! random MILPs.
//!
//! The contract under test: for any `threads`, a solve that reports
//! [`Optimality::Proven`] has the true optimal objective. Only the serial
//! solver additionally promises a deterministic node order (and therefore a
//! deterministic optimal vertex); the parallel solver may report any
//! optimal solution.

use fp_milp::{LinExpr, Model, Optimality, Sense, SolveOptions, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PARALLEL_THREADS: usize = 4;

/// A named instance builder returning the model and its known optimum.
type CaseFn = fn() -> (Model, f64);

fn serial() -> SolveOptions {
    SolveOptions::default().with_threads(1)
}

fn parallel() -> SolveOptions {
    SolveOptions::default().with_threads(PARALLEL_THREADS)
}

/// Solves `m` serially and on four threads; asserts both prove the same
/// optimum and that every reported point is feasible.
fn assert_equivalent(m: &Model, label: &str) {
    let a = m.solve_with(&serial()).expect("serial solve");
    let b = m.solve_with(&parallel()).expect("parallel solve");
    assert_eq!(
        a.optimality(),
        Optimality::Proven,
        "{label}: serial not proven"
    );
    assert_eq!(
        b.optimality(),
        Optimality::Proven,
        "{label}: parallel not proven"
    );
    assert!(
        (a.objective() - b.objective()).abs() < 1e-6,
        "{label}: serial {} != parallel {}",
        a.objective(),
        b.objective()
    );
    assert!(
        m.is_feasible(a.values(), 1e-6),
        "{label}: serial point infeasible"
    );
    assert!(
        m.is_feasible(b.values(), 1e-6),
        "{label}: parallel point infeasible"
    );
    assert_eq!(b.stats().threads, PARALLEL_THREADS, "{label}");
    assert_eq!(b.stats().per_thread.len(), PARALLEL_THREADS, "{label}");
}

// ---- the classic instances of milp_classics.rs, with known optima ----

fn assignment_3x3() -> (Model, f64) {
    let costs = [[9.0, 1.0, 8.0], [2.0, 9.0, 7.0], [8.0, 7.0, 3.0]];
    let mut m = Model::new(Sense::Minimize);
    let x: Vec<Vec<Var>> = (0..3)
        .map(|i| (0..3).map(|j| m.add_binary(format!("x{i}{j}"))).collect())
        .collect();
    for (i, row_vars) in x.iter().enumerate() {
        let row: LinExpr = row_vars.iter().map(|&v| 1.0 * v).sum();
        m.add_eq(row, 1.0);
        let col: LinExpr = x.iter().map(|r| 1.0 * r[i]).sum();
        m.add_eq(col, 1.0);
    }
    let obj: LinExpr = (0..3)
        .flat_map(|i| (0..3).map(move |j| (i, j)))
        .map(|(i, j)| costs[i][j] * x[i][j])
        .sum();
    m.set_objective(obj);
    (m, 6.0)
}

fn set_cover() -> (Model, f64) {
    let sets: [&[usize]; 5] = [&[1, 2, 3], &[2, 4], &[3, 4], &[4, 5], &[1, 5]];
    let mut m = Model::new(Sense::Minimize);
    let picks: Vec<Var> = (0..5).map(|i| m.add_binary(format!("s{i}"))).collect();
    for element in 1..=5usize {
        let mut cover = LinExpr::new();
        for (k, set) in sets.iter().enumerate() {
            if set.contains(&element) {
                cover.add_term(picks[k], 1.0);
            }
        }
        m.add_ge(cover, 1.0);
    }
    let obj: LinExpr = picks.iter().map(|&p| 1.0 * p).sum();
    m.set_objective(obj);
    (m, 2.0)
}

fn facility_location() -> (Model, f64) {
    let open_cost = [10.0, 12.0];
    let serve = [[2.0, 9.0, 6.0], [8.0, 3.0, 4.0]];
    let mut m = Model::new(Sense::Minimize);
    let open: Vec<Var> = (0..2).map(|f| m.add_binary(format!("open{f}"))).collect();
    let assign: Vec<Vec<Var>> = (0..2)
        .map(|f| (0..3).map(|c| m.add_binary(format!("a{f}{c}"))).collect())
        .collect();
    for (&a0, &a1) in assign[0].iter().zip(&assign[1]) {
        m.add_eq(1.0 * a0 + 1.0 * a1, 1.0);
        m.add_le(1.0 * a0 - 1.0 * open[0], 0.0);
        m.add_le(1.0 * a1 - 1.0 * open[1], 0.0);
    }
    let mut obj = LinExpr::new();
    for f in 0..2 {
        obj.add_term(open[f], open_cost[f]);
        for c in 0..3 {
            obj.add_term(assign[f][c], serve[f][c]);
        }
    }
    m.set_objective(obj);
    (m, 27.0)
}

fn small_knapsack() -> (Model, f64) {
    let mut m = Model::new(Sense::Maximize);
    let a = m.add_binary("a");
    let b = m.add_binary("b");
    let c = m.add_binary("c");
    m.add_le(3.0 * a + 4.0 * b + 2.0 * c, 6.0);
    m.set_objective(10.0 * a + 13.0 * b + 7.0 * c);
    (m, 20.0)
}

fn flow_conservation() -> (Model, f64) {
    let mut m = Model::new(Sense::Minimize);
    let sa = m.add_continuous("sa", 0.0, 6.0);
    let sb = m.add_continuous("sb", 0.0, 10.0);
    let at = m.add_continuous("at", 0.0, 10.0);
    let bt = m.add_continuous("bt", 0.0, 10.0);
    m.add_eq(sa + sb, 10.0);
    m.add_eq(sa - at, 0.0);
    m.add_eq(sb - bt, 0.0);
    m.set_objective(1.0 * sa + 3.0 * sb + 2.0 * at + 1.0 * bt);
    (m, 34.0)
}

fn large_uniform_knapsack() -> (Model, f64) {
    let mut m = Model::new(Sense::Maximize);
    let mut weight = LinExpr::new();
    let mut value = LinExpr::new();
    for i in 0..40 {
        let b = m.add_binary(format!("b{i}"));
        weight.add_term(b, 2.0);
        value.add_term(b, 3.0);
    }
    m.add_le(weight, 40.0);
    m.set_objective(value);
    (m, 60.0)
}

fn rotation_disjunction_chain() -> (Model, f64) {
    let mut m = Model::new(Sense::Minimize);
    let l = m.add_continuous("L", 0.0, 100.0);
    let big = 100.0;
    let mut starts = Vec::new();
    let mut lens: Vec<LinExpr> = Vec::new();
    for i in 0..3 {
        let x = m.add_continuous(format!("x{i}"), 0.0, 100.0);
        let z = m.add_binary(format!("z{i}"));
        starts.push(x);
        lens.push(2.0 * z + 5.0 * (1.0 - z));
    }
    for i in 0..3 {
        m.add_le(starts[i] + lens[i].clone() - l, 0.0);
        for j in i + 1..3 {
            let p = m.add_binary(format!("p{i}{j}"));
            m.add_le(starts[i] + lens[i].clone() - starts[j] - big * p, 0.0);
            m.add_le(
                starts[j] + lens[j].clone() - starts[i] - big * (1.0 - p),
                0.0,
            );
        }
    }
    m.set_objective(l + 0.0);
    (m, 6.0)
}

fn negative_bounds_ip() -> (Model, f64) {
    // min x + y, x integer in [-5, 5], y >= 2x, y >= -x: optimum 0.
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_integer("x", -5.0, 5.0);
    let y = m.add_continuous("y", f64::NEG_INFINITY, f64::INFINITY);
    m.add_ge(y - 2.0 * x, 0.0);
    m.add_ge(y + 1.0 * x, 0.0);
    m.set_objective(x + y);
    (m, 0.0)
}

#[test]
fn classics_agree_across_thread_counts() {
    let cases: Vec<(&str, CaseFn)> = vec![
        ("assignment_3x3", assignment_3x3),
        ("set_cover", set_cover),
        ("facility_location", facility_location),
        ("small_knapsack", small_knapsack),
        ("flow_conservation", flow_conservation),
        ("large_uniform_knapsack", large_uniform_knapsack),
        ("rotation_disjunction_chain", rotation_disjunction_chain),
        ("negative_bounds_ip", negative_bounds_ip),
    ];
    for (label, build) in cases {
        let (m, expected) = build();
        let s = m.solve_with(&serial()).expect("serial solve");
        assert!(
            (s.objective() - expected).abs() < 1e-6,
            "{label}: serial objective {} != known optimum {expected}",
            s.objective()
        );
        assert_equivalent(&m, label);
    }
}

/// The serial solver is deterministic run to run: identical incumbent,
/// objective, and node count. (This is the baseline the `threads = 1`
/// contract pins the parallel refactor against.)
#[test]
fn serial_resolve_is_bit_identical_on_classics() {
    let cases: Vec<CaseFn> = vec![
        assignment_3x3,
        facility_location,
        rotation_disjunction_chain,
    ];
    for build in cases {
        let (m, _) = build();
        let a = m.solve_with(&serial()).unwrap();
        let b = m.solve_with(&serial()).unwrap();
        assert_eq!(a.values(), b.values());
        assert_eq!(a.objective(), b.objective());
        assert_eq!(a.stats().nodes, b.stats().nodes);
        assert_eq!(a.stats().simplex_iterations, b.stats().simplex_iterations);
    }
}

/// A feasible-by-construction random MILP: a knapsack core, pairwise
/// conflict cuts, and a continuous coupling variable. The all-zeros point
/// is always feasible, so every instance has a proven optimum.
fn random_milp(seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(6..13usize);
    let mut m = Model::new(Sense::Maximize);
    let bins: Vec<Var> = (0..n).map(|i| m.add_binary(format!("b{i}"))).collect();
    let mut weight = LinExpr::new();
    let mut value = LinExpr::new();
    let mut total_weight = 0.0;
    for &b in &bins {
        let w: f64 = rng.gen_range(1.0..20.0);
        weight.add_term(b, w);
        value.add_term(b, rng.gen_range(1.0..30.0));
        total_weight += w;
    }
    m.add_le(weight, total_weight * rng.gen_range(0.3..0.7));
    // A few pairwise conflicts to roughen the polytope.
    for _ in 0..n / 3 {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            m.add_le(1.0 * bins[i] + 1.0 * bins[j], 1.0);
        }
    }
    // Continuous coupling: y <= picked count, objective earns a little y.
    let y = m.add_continuous("y", 0.0, n as f64);
    let count: LinExpr = bins.iter().map(|&b| 1.0 * b).sum();
    m.add_le(y + -1.0 * count, 0.0);
    value.add_term(y, 0.5);
    m.set_objective(value);
    m
}

#[test]
fn random_models_agree_across_thread_counts() {
    for seed in 0..20u64 {
        let m = random_milp(seed);
        assert_equivalent(&m, &format!("random_milp(seed {seed})"));
    }
}
