//! Serial-vs-parallel equivalence: the shared-frontier parallel search must
//! prove the same optimum as the deterministic serial solver on every
//! instance — the classics with known optima plus a battery of seeded
//! random MILPs.
//!
//! The contract under test: for any `threads`, a solve that reports
//! [`Optimality::Proven`] has the true optimal objective. Only the serial
//! solver additionally promises a deterministic node order (and therefore a
//! deterministic optimal vertex); the parallel solver may report any
//! optimal solution.
//!
//! Instance builders live in [`common`] and are shared with the
//! `traced_parallel` suite.

mod common;

use common::{
    assignment_3x3, classic_cases, facility_location, parallel, random_milp,
    rotation_disjunction_chain, serial, CaseFn, PARALLEL_THREADS,
};
use fp_milp::{Model, Optimality};

/// Solves `m` serially and on four threads; asserts both prove the same
/// optimum and that every reported point is feasible.
fn assert_equivalent(m: &Model, label: &str) {
    let a = m.solve_with(&serial()).expect("serial solve");
    let b = m.solve_with(&parallel()).expect("parallel solve");
    assert_eq!(
        a.optimality(),
        Optimality::Proven,
        "{label}: serial not proven"
    );
    assert_eq!(
        b.optimality(),
        Optimality::Proven,
        "{label}: parallel not proven"
    );
    assert!(
        (a.objective() - b.objective()).abs() < 1e-6,
        "{label}: serial {} != parallel {}",
        a.objective(),
        b.objective()
    );
    assert!(
        m.is_feasible(a.values(), 1e-6),
        "{label}: serial point infeasible"
    );
    assert!(
        m.is_feasible(b.values(), 1e-6),
        "{label}: parallel point infeasible"
    );
    assert_eq!(b.stats().threads, PARALLEL_THREADS, "{label}");
    assert_eq!(b.stats().per_thread.len(), PARALLEL_THREADS, "{label}");
}

#[test]
fn classics_agree_across_thread_counts() {
    for (label, build) in classic_cases() {
        let (m, expected) = build();
        let s = m.solve_with(&serial()).expect("serial solve");
        assert!(
            (s.objective() - expected).abs() < 1e-6,
            "{label}: serial objective {} != known optimum {expected}",
            s.objective()
        );
        assert_equivalent(&m, label);
    }
}

/// The serial solver is deterministic run to run: identical incumbent,
/// objective, and node count. (This is the baseline the `threads = 1`
/// contract pins the parallel refactor against.)
#[test]
fn serial_resolve_is_bit_identical_on_classics() {
    let cases: Vec<CaseFn> = vec![
        assignment_3x3,
        facility_location,
        rotation_disjunction_chain,
    ];
    for build in cases {
        let (m, _) = build();
        let a = m.solve_with(&serial()).unwrap();
        let b = m.solve_with(&serial()).unwrap();
        assert_eq!(a.values(), b.values());
        assert_eq!(a.objective(), b.objective());
        assert_eq!(a.stats().nodes, b.stats().nodes);
        assert_eq!(a.stats().simplex_iterations, b.stats().simplex_iterations);
    }
}

#[test]
fn random_models_agree_across_thread_counts() {
    for seed in 0..20u64 {
        let m = random_milp(seed);
        assert_equivalent(&m, &format!("random_milp(seed {seed})"));
    }
}
