//! The time limit must bind *inside* a single LP solve, not only at
//! branch-and-bound node boundaries. A pure LP whose relaxation alone takes
//! far longer than the limit is the pathological case: the node-boundary
//! check passes at elapsed ~ 0 and the old solver would then run the whole
//! relaxation to optimality, overshooting a millisecond budget by seconds.

use fp_milp::{LinExpr, Model, Sense, Solution, SolveError, SolveOptions};
use std::sync::mpsc;
use std::time::Duration;

/// Generous outer bound; a deadline bug shows up as a failed assertion, a
/// termination bug as a watchdog panic instead of a hung suite.
const WATCHDOG: Duration = Duration::from_secs(30);

/// A dense feasible pure LP (no integers, so exactly one B&B node) sized so
/// the two-phase simplex needs well over the test's time limit to finish:
/// `n` variables, `n` dense `>=` rows forcing a long phase 1.
fn slow_dense_lp(n: usize) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let xs: Vec<_> = (0..n)
        .map(|j| m.add_continuous(format!("x{j}"), 0.0, 10.0))
        .collect();
    for i in 0..n {
        let row: LinExpr = xs
            .iter()
            .enumerate()
            .map(|(j, &x)| (1.0 + ((i * j + i + j) % 7) as f64) * x)
            .sum();
        m.add_ge(row, (n + i) as f64);
    }
    let obj: LinExpr = xs.iter().map(|&x| 1.0 * x).sum();
    m.set_objective(obj);
    m
}

fn solve_with_watchdog(m: Model, opts: SolveOptions) -> Result<Solution, SolveError> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(m.solve_with(&opts));
    });
    rx.recv_timeout(WATCHDOG)
        .expect("solver did not return before the watchdog")
}

#[test]
fn pathological_lp_respects_tiny_time_limit() {
    for threads in [1usize, 2] {
        let opts = SolveOptions::default()
            .with_threads(threads)
            .with_time_limit(Duration::from_millis(5));
        let result = solve_with_watchdog(slow_dense_lp(400), opts);
        // The relaxation cannot finish in 5 ms, so the only honest answer
        // is "limit bound with no incumbent". The pre-fix solver instead
        // ran the LP to completion and returned a proven optimum.
        assert_eq!(
            result.unwrap_err(),
            SolveError::LimitWithoutIncumbent,
            "threads {threads}: a 5 ms budget must interrupt a multi-second LP"
        );
    }
}

#[test]
fn generous_time_limit_still_solves_the_same_lp() {
    // Sanity check that the cooperative deadline does not break a solve
    // that has enough budget: the same construction, small enough to
    // finish comfortably, must still reach a proven optimum.
    let opts = SolveOptions::default()
        .with_threads(1)
        .with_time_limit(Duration::from_secs(60));
    let s = solve_with_watchdog(slow_dense_lp(40), opts).expect("optimal");
    assert_eq!(s.optimality(), fp_milp::Optimality::Proven);
    assert!(s.objective() > 0.0);
}
