//! Larger-scale robustness tests for the solver: these sizes exceed
//! anything the floorplanner generates per step, guarding headroom.

use fp_milp::{LinExpr, Model, Optimality, Sense, SolveOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A dense 120-variable LP with 120 rows solves to proven optimality well
/// inside the iteration caps.
#[test]
fn dense_lp_120() {
    let n = 120;
    let mut rng = StdRng::seed_from_u64(9);
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_continuous(format!("x{i}"), 0.0, 10.0))
        .collect();
    for _ in 0..n {
        let mut e = LinExpr::new();
        let mut rhs = 1.0;
        for &v in &vars {
            let c: f64 = rng.gen_range(-1.0..2.0);
            e.add_term(v, c);
            rhs += c.max(0.0); // x = 1 feasible
        }
        m.add_le(e, rhs);
    }
    let obj: LinExpr = vars.iter().map(|&v| 1.0 * v).sum();
    m.set_objective(obj);
    let sol = m.solve().expect("feasible by construction");
    assert_eq!(sol.optimality(), Optimality::Proven);
    assert!(m.is_feasible(sol.values(), 1e-5));
    // Objective of all-zeros is 0; nothing forces positives, so optimum 0.
    assert!(sol.objective().abs() < 1e-6);
}

/// Badly scaled coefficients (1e-4 .. 1e4 spread) still solve correctly.
#[test]
fn poorly_scaled_lp() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_continuous("x", 0.0, 1e6);
    let y = m.add_continuous("y", 0.0, 1e6);
    m.add_ge(1e4 * x + 1e-4 * y, 2.0);
    m.add_ge(1e-4 * x + 1e4 * y, 2.0);
    m.set_objective(x + y);
    let sol = m.solve().unwrap();
    assert!(m.is_feasible(sol.values(), 1e-4));
    // Near-optimal point: x = y ≈ 2 / (1e4 + 1e-4).
    let expect = 2.0 / (1e4 + 1e-4) * 2.0;
    assert!(
        (sol.objective() - expect).abs() < 1e-6,
        "{}",
        sol.objective()
    );
}

/// A 60-binary MILP with block structure: optimal solution is forced by
/// construction, branch-and-bound must find it within the node budget.
#[test]
fn structured_milp_60_binaries() {
    // 20 groups of 3 binaries; exactly one per group; the middle one has
    // the best payoff in every group.
    let mut m = Model::new(Sense::Maximize);
    let mut obj = LinExpr::new();
    for g in 0..20 {
        let a = m.add_binary(format!("a{g}"));
        let b = m.add_binary(format!("b{g}"));
        let c = m.add_binary(format!("c{g}"));
        m.add_eq(a + b + c, 1.0);
        obj.add_term(a, 1.0);
        obj.add_term(b, 3.0);
        obj.add_term(c, 2.0);
    }
    m.set_objective(obj);
    let opts = SolveOptions::default().with_time_limit(Duration::from_secs(30));
    let sol = m.solve_with(&opts).unwrap();
    assert!((sol.objective() - 60.0).abs() < 1e-6);
    assert_eq!(sol.optimality(), Optimality::Proven);
}

/// Equality-constrained transportation problem (LP-integral): optimal cost
/// must match the known value and the basic solution must be integral even
/// without integer variables.
#[test]
fn transportation_problem() {
    // 2 supplies (30, 20), 3 demands (10, 25, 15); costs:
    //        d0  d1  d2
    //  s0     2   4   5
    //  s1     3   1   7
    // Optimal: s1 ships 20 to d1 (cost 20); s0 ships 10 to d0 (20),
    // 5 to d1 (20) and 15 to d2 (75): total 135.
    let mut m = Model::new(Sense::Minimize);
    let costs = [[2.0, 4.0, 5.0], [3.0, 1.0, 7.0]];
    let supply = [30.0, 20.0];
    let demand = [10.0, 25.0, 15.0];
    let mut x = Vec::new();
    for (s, row) in costs.iter().enumerate() {
        let mut r = Vec::new();
        for (d, _) in row.iter().enumerate() {
            r.push(m.add_continuous(format!("x{s}{d}"), 0.0, f64::INFINITY));
        }
        x.push(r);
    }
    for (s, &cap) in supply.iter().enumerate() {
        let e: LinExpr = x[s].iter().map(|&v| 1.0 * v).sum();
        m.add_eq(e, cap);
    }
    for (d, &need) in demand.iter().enumerate() {
        let e: LinExpr = x.iter().map(|row| 1.0 * row[d]).sum();
        m.add_eq(e, need);
    }
    let mut obj = LinExpr::new();
    for (s, row) in costs.iter().enumerate() {
        for (d, &c) in row.iter().enumerate() {
            obj.add_term(x[s][d], c);
        }
    }
    m.set_objective(obj);
    let sol = m.solve().unwrap();
    assert!(
        (sol.objective() - 135.0).abs() < 1e-6,
        "{}",
        sol.objective()
    );
}

/// Repeated solves of the same model are deterministic.
#[test]
fn deterministic_resolve() {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..15).map(|i| m.add_binary(format!("b{i}"))).collect();
    let w: LinExpr = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| ((i % 5) as f64 + 1.0) * v)
        .sum();
    m.add_le(w, 17.0);
    let val: LinExpr = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| ((i % 7) as f64 + 1.0) * v)
        .sum();
    m.set_objective(val);
    // threads = 1 is the solver's determinism contract: parallel searches
    // reach the same optimum but may report a different optimal vertex.
    let opts = SolveOptions::default().with_threads(1);
    let a = m.solve_with(&opts).unwrap();
    let b = m.solve_with(&opts).unwrap();
    assert_eq!(a.values(), b.values());
    assert_eq!(a.objective(), b.objective());
}
