//! LP-format golden round-trip: fixture decks in `tests/fixtures/` parse,
//! solve to their known optima, survive `to_lp_string` → `parse_lp` →
//! re-solve, and do so identically on the serial and parallel solvers.
//!
//! This pins the export/import dialect: if either side of the round-trip
//! drifts (signs, sections, bounds, integrality markers), a fixture's
//! re-solved optimum changes and the test fails.

use fp_milp::{parse_lp, Model, Optimality, SolveOptions};
use std::path::PathBuf;

/// `(fixture file, known optimal objective)`.
const CASES: &[(&str, f64)] = &[
    ("knapsack.lp", 20.0),
    ("assignment.lp", 6.0),
    ("flow.lp", 34.0),
    ("negative_integer.lp", 0.0),
];

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

fn solve_proven(m: &Model, label: &str) -> f64 {
    let s = m
        .solve_with(&SolveOptions::default().with_threads(1))
        .unwrap_or_else(|e| panic!("{label}: solve failed: {e:?}"));
    assert_eq!(s.optimality(), Optimality::Proven, "{label}");
    assert!(m.is_feasible(s.values(), 1e-6), "{label}: point infeasible");
    s.objective()
}

#[test]
fn fixtures_solve_to_known_optima() {
    for &(file, expected) in CASES {
        let m = parse_lp(&fixture(file)).unwrap_or_else(|e| panic!("{file}: parse: {e:?}"));
        let obj = solve_proven(&m, file);
        assert!(
            (obj - expected).abs() < 1e-6,
            "{file}: objective {obj} != known optimum {expected}"
        );
    }
}

#[test]
fn write_parse_resolve_reproduces_optimum() {
    for &(file, expected) in CASES {
        let original = parse_lp(&fixture(file)).unwrap();
        let text = original.to_lp_string();
        let reparsed =
            parse_lp(&text).unwrap_or_else(|e| panic!("{file}: re-parse of export: {e:?}\n{text}"));
        let obj = solve_proven(&reparsed, file);
        assert!(
            (obj - expected).abs() < 1e-6,
            "{file}: round-tripped objective {obj} != {expected}"
        );
        // A second round-trip must be a fixed point objective-wise too.
        let twice = parse_lp(&reparsed.to_lp_string()).unwrap();
        let obj2 = solve_proven(&twice, file);
        assert!((obj2 - expected).abs() < 1e-6, "{file}: second round-trip");
    }
}

#[test]
fn fixtures_agree_across_thread_counts() {
    for &(file, expected) in CASES {
        let m = parse_lp(&fixture(file)).unwrap();
        let s = m
            .solve_with(&SolveOptions::default().with_threads(4))
            .unwrap_or_else(|e| panic!("{file}: parallel solve failed: {e:?}"));
        assert_eq!(s.optimality(), Optimality::Proven, "{file}");
        assert!(
            (s.objective() - expected).abs() < 1e-6,
            "{file}: parallel objective {} != {expected}",
            s.objective()
        );
    }
}
