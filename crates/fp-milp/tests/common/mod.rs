//! Shared MILP instance builders for the integration suites
//! (`parallel_equivalence`, `traced_parallel`).
//!
//! Each builder returns the model together with its known optimal
//! objective, so suites can assert proven optimality against ground truth.

#![allow(dead_code)] // each test binary uses a subset

use fp_milp::{LinExpr, Model, Sense, SolveOptions, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Thread count used for the parallel leg of equivalence checks.
pub const PARALLEL_THREADS: usize = 4;

/// Solve options for the deterministic serial solver.
pub fn serial() -> SolveOptions {
    SolveOptions::default().with_threads(1)
}

/// Solve options for the shared-frontier parallel solver.
pub fn parallel() -> SolveOptions {
    SolveOptions::default().with_threads(PARALLEL_THREADS)
}

/// A named instance builder returning the model and its known optimum.
pub type CaseFn = fn() -> (Model, f64);

/// Every classic instance with a known optimum, for sweep-style suites.
pub fn classic_cases() -> Vec<(&'static str, CaseFn)> {
    vec![
        ("assignment_3x3", assignment_3x3),
        ("set_cover", set_cover),
        ("facility_location", facility_location),
        ("small_knapsack", small_knapsack),
        ("flow_conservation", flow_conservation),
        ("large_uniform_knapsack", large_uniform_knapsack),
        ("rotation_disjunction_chain", rotation_disjunction_chain),
        ("negative_bounds_ip", negative_bounds_ip),
    ]
}

pub fn assignment_3x3() -> (Model, f64) {
    let costs = [[9.0, 1.0, 8.0], [2.0, 9.0, 7.0], [8.0, 7.0, 3.0]];
    let mut m = Model::new(Sense::Minimize);
    let x: Vec<Vec<Var>> = (0..3)
        .map(|i| (0..3).map(|j| m.add_binary(format!("x{i}{j}"))).collect())
        .collect();
    for (i, row_vars) in x.iter().enumerate() {
        let row: LinExpr = row_vars.iter().map(|&v| 1.0 * v).sum();
        m.add_eq(row, 1.0);
        let col: LinExpr = x.iter().map(|r| 1.0 * r[i]).sum();
        m.add_eq(col, 1.0);
    }
    let obj: LinExpr = (0..3)
        .flat_map(|i| (0..3).map(move |j| (i, j)))
        .map(|(i, j)| costs[i][j] * x[i][j])
        .sum();
    m.set_objective(obj);
    (m, 6.0)
}

pub fn set_cover() -> (Model, f64) {
    let sets: [&[usize]; 5] = [&[1, 2, 3], &[2, 4], &[3, 4], &[4, 5], &[1, 5]];
    let mut m = Model::new(Sense::Minimize);
    let picks: Vec<Var> = (0..5).map(|i| m.add_binary(format!("s{i}"))).collect();
    for element in 1..=5usize {
        let mut cover = LinExpr::new();
        for (k, set) in sets.iter().enumerate() {
            if set.contains(&element) {
                cover.add_term(picks[k], 1.0);
            }
        }
        m.add_ge(cover, 1.0);
    }
    let obj: LinExpr = picks.iter().map(|&p| 1.0 * p).sum();
    m.set_objective(obj);
    (m, 2.0)
}

pub fn facility_location() -> (Model, f64) {
    let open_cost = [10.0, 12.0];
    let serve = [[2.0, 9.0, 6.0], [8.0, 3.0, 4.0]];
    let mut m = Model::new(Sense::Minimize);
    let open: Vec<Var> = (0..2).map(|f| m.add_binary(format!("open{f}"))).collect();
    let assign: Vec<Vec<Var>> = (0..2)
        .map(|f| (0..3).map(|c| m.add_binary(format!("a{f}{c}"))).collect())
        .collect();
    for (&a0, &a1) in assign[0].iter().zip(&assign[1]) {
        m.add_eq(1.0 * a0 + 1.0 * a1, 1.0);
        m.add_le(1.0 * a0 - 1.0 * open[0], 0.0);
        m.add_le(1.0 * a1 - 1.0 * open[1], 0.0);
    }
    let mut obj = LinExpr::new();
    for f in 0..2 {
        obj.add_term(open[f], open_cost[f]);
        for c in 0..3 {
            obj.add_term(assign[f][c], serve[f][c]);
        }
    }
    m.set_objective(obj);
    (m, 27.0)
}

pub fn small_knapsack() -> (Model, f64) {
    let mut m = Model::new(Sense::Maximize);
    let a = m.add_binary("a");
    let b = m.add_binary("b");
    let c = m.add_binary("c");
    m.add_le(3.0 * a + 4.0 * b + 2.0 * c, 6.0);
    m.set_objective(10.0 * a + 13.0 * b + 7.0 * c);
    (m, 20.0)
}

pub fn flow_conservation() -> (Model, f64) {
    let mut m = Model::new(Sense::Minimize);
    let sa = m.add_continuous("sa", 0.0, 6.0);
    let sb = m.add_continuous("sb", 0.0, 10.0);
    let at = m.add_continuous("at", 0.0, 10.0);
    let bt = m.add_continuous("bt", 0.0, 10.0);
    m.add_eq(sa + sb, 10.0);
    m.add_eq(sa - at, 0.0);
    m.add_eq(sb - bt, 0.0);
    m.set_objective(1.0 * sa + 3.0 * sb + 2.0 * at + 1.0 * bt);
    (m, 34.0)
}

pub fn large_uniform_knapsack() -> (Model, f64) {
    let mut m = Model::new(Sense::Maximize);
    let mut weight = LinExpr::new();
    let mut value = LinExpr::new();
    for i in 0..40 {
        let b = m.add_binary(format!("b{i}"));
        weight.add_term(b, 2.0);
        value.add_term(b, 3.0);
    }
    m.add_le(weight, 40.0);
    m.set_objective(value);
    (m, 60.0)
}

pub fn rotation_disjunction_chain() -> (Model, f64) {
    let mut m = Model::new(Sense::Minimize);
    let l = m.add_continuous("L", 0.0, 100.0);
    let big = 100.0;
    let mut starts = Vec::new();
    let mut lens: Vec<LinExpr> = Vec::new();
    for i in 0..3 {
        let x = m.add_continuous(format!("x{i}"), 0.0, 100.0);
        let z = m.add_binary(format!("z{i}"));
        starts.push(x);
        lens.push(2.0 * z + 5.0 * (1.0 - z));
    }
    for i in 0..3 {
        m.add_le(starts[i] + lens[i].clone() - l, 0.0);
        for j in i + 1..3 {
            let p = m.add_binary(format!("p{i}{j}"));
            m.add_le(starts[i] + lens[i].clone() - starts[j] - big * p, 0.0);
            m.add_le(
                starts[j] + lens[j].clone() - starts[i] - big * (1.0 - p),
                0.0,
            );
        }
    }
    m.set_objective(l + 0.0);
    (m, 6.0)
}

pub fn negative_bounds_ip() -> (Model, f64) {
    // min x + y, x integer in [-5, 5], y >= 2x, y >= -x: optimum 0.
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_integer("x", -5.0, 5.0);
    let y = m.add_continuous("y", f64::NEG_INFINITY, f64::INFINITY);
    m.add_ge(y - 2.0 * x, 0.0);
    m.add_ge(y + 1.0 * x, 0.0);
    m.set_objective(x + y);
    (m, 0.0)
}

/// A feasible-by-construction random MILP: a knapsack core, pairwise
/// conflict cuts, and a continuous coupling variable. The all-zeros point
/// is always feasible, so every instance has a proven optimum.
pub fn random_milp(seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(6..13usize);
    let mut m = Model::new(Sense::Maximize);
    let bins: Vec<Var> = (0..n).map(|i| m.add_binary(format!("b{i}"))).collect();
    let mut weight = LinExpr::new();
    let mut value = LinExpr::new();
    let mut total_weight = 0.0;
    for &b in &bins {
        let w: f64 = rng.gen_range(1.0..20.0);
        weight.add_term(b, w);
        value.add_term(b, rng.gen_range(1.0..30.0));
        total_weight += w;
    }
    m.add_le(weight, total_weight * rng.gen_range(0.3..0.7));
    // A few pairwise conflicts to roughen the polytope.
    for _ in 0..n / 3 {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            m.add_le(1.0 * bins[i] + 1.0 * bins[j], 1.0);
        }
    }
    // Continuous coupling: y <= picked count, objective earns a little y.
    let y = m.add_continuous("y", 0.0, n as f64);
    let count: LinExpr = bins.iter().map(|&b| 1.0 * b).sum();
    m.add_le(y + -1.0 * count, 0.0);
    value.add_term(y, 0.5);
    m.set_objective(value);
    m
}
