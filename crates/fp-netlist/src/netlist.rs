//! The netlist container: modules + nets + derived connectivity.

use crate::error::NetlistError;
use crate::module::{Module, ModuleId};
use crate::net::{Net, NetId};

/// A complete floorplanning problem instance: modules, nets, and the
/// derived pairwise connectivity `c_ij` (number of common nets, weighted).
///
/// ```
/// use fp_netlist::{Module, Net, Netlist, ModuleId};
/// # fn main() -> Result<(), fp_netlist::NetlistError> {
/// let mut nl = Netlist::new("demo");
/// let a = nl.add_module(Module::rigid("a", 2.0, 2.0, true))?;
/// let b = nl.add_module(Module::rigid("b", 3.0, 1.0, true))?;
/// nl.add_net(Net::new("ab", [a, b]))?;
/// assert_eq!(nl.connectivity(a, b), 1.0);
/// assert_eq!(nl.total_module_area(), 7.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Netlist {
    name: String,
    modules: Vec<Module>,
    nets: Vec<Net>,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            modules: Vec::new(),
            nets: Vec::new(),
        }
    }

    /// The instance name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a module, returning its id.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DuplicateModule`] if the name is already taken.
    pub fn add_module(&mut self, module: Module) -> Result<ModuleId, NetlistError> {
        if self.modules.iter().any(|m| m.name() == module.name()) {
            return Err(NetlistError::DuplicateModule(module.name().to_string()));
        }
        self.modules.push(module);
        Ok(ModuleId(self.modules.len() - 1))
    }

    /// Adds a net, returning its id.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownModule`] if the net references a module index
    /// outside this netlist.
    pub fn add_net(&mut self, net: Net) -> Result<NetId, NetlistError> {
        for &m in net.modules() {
            if m.index() >= self.modules.len() {
                return Err(NetlistError::UnknownModule {
                    net: net.name().to_string(),
                    index: m.index(),
                });
            }
        }
        self.nets.push(net);
        Ok(NetId(self.nets.len() - 1))
    }

    /// Number of modules `K`.
    #[must_use]
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }

    /// Number of nets.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// The module with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Looks up a module id by name.
    #[must_use]
    pub fn module_by_name(&self, name: &str) -> Option<ModuleId> {
        self.modules
            .iter()
            .position(|m| m.name() == name)
            .map(ModuleId)
    }

    /// Iterates over `(id, module)` pairs.
    pub fn modules(&self) -> impl Iterator<Item = (ModuleId, &Module)> {
        self.modules
            .iter()
            .enumerate()
            .map(|(i, m)| (ModuleId(i), m))
    }

    /// Iterates over `(id, net)` pairs.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets.iter().enumerate().map(|(i, n)| (NetId(i), n))
    }

    /// All module ids in index order.
    #[must_use]
    pub fn module_ids(&self) -> Vec<ModuleId> {
        (0..self.modules.len()).map(ModuleId).collect()
    }

    /// The paper's `c_ij`: weighted number of nets shared by modules `i`
    /// and `j` (0 when `i == j`).
    #[must_use]
    pub fn connectivity(&self, i: ModuleId, j: ModuleId) -> f64 {
        if i == j {
            return 0.0;
        }
        self.nets
            .iter()
            .filter(|n| n.connects(i) && n.connects(j))
            .map(Net::weight)
            .sum()
    }

    /// The full symmetric connectivity matrix.
    #[must_use]
    pub fn connectivity_matrix(&self) -> Vec<Vec<f64>> {
        let k = self.num_modules();
        let mut c = vec![vec![0.0; k]; k];
        for net in &self.nets {
            let ms = net.modules();
            for (a, &mi) in ms.iter().enumerate() {
                for &mj in &ms[a + 1..] {
                    c[mi.index()][mj.index()] += net.weight();
                    c[mj.index()][mi.index()] += net.weight();
                }
            }
        }
        c
    }

    /// Weighted connectivity of module `i` to a set of modules.
    #[must_use]
    pub fn connectivity_to_set(&self, i: ModuleId, set: &[ModuleId]) -> f64 {
        set.iter().map(|&j| self.connectivity(i, j)).sum()
    }

    /// Sum of all module areas (the paper quotes 11520 for ami33).
    #[must_use]
    pub fn total_module_area(&self) -> f64 {
        self.modules.iter().map(Module::area).sum()
    }

    /// Nets touching a module, in index order.
    #[must_use]
    pub fn nets_of(&self, id: ModuleId) -> Vec<NetId> {
        self.nets
            .iter()
            .enumerate()
            .filter(|(_, n)| n.connects(id))
            .map(|(i, _)| NetId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_module_netlist() -> (Netlist, ModuleId, ModuleId, ModuleId) {
        let mut nl = Netlist::new("t");
        let a = nl.add_module(Module::rigid("a", 1.0, 1.0, true)).unwrap();
        let b = nl.add_module(Module::rigid("b", 2.0, 1.0, true)).unwrap();
        let c = nl.add_module(Module::flexible("c", 4.0, 0.5, 2.0)).unwrap();
        nl.add_net(Net::new("n0", [a, b])).unwrap();
        nl.add_net(Net::new("n1", [a, b, c]).with_weight(2.0))
            .unwrap();
        nl.add_net(Net::new("n2", [b, c])).unwrap();
        (nl, a, b, c)
    }

    #[test]
    fn connectivity_counts_common_nets() {
        let (nl, a, b, c) = three_module_netlist();
        assert_eq!(nl.connectivity(a, b), 3.0); // n0 (1) + n1 (2)
        assert_eq!(nl.connectivity(a, c), 2.0); // n1 (2)
        assert_eq!(nl.connectivity(b, c), 3.0); // n1 (2) + n2 (1)
        assert_eq!(nl.connectivity(a, a), 0.0);
    }

    #[test]
    fn matrix_matches_pairwise() {
        let (nl, a, b, c) = three_module_netlist();
        let m = nl.connectivity_matrix();
        for &i in &[a, b, c] {
            for &j in &[a, b, c] {
                assert_eq!(m[i.index()][j.index()], nl.connectivity(i, j));
            }
        }
    }

    #[test]
    fn duplicate_module_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_module(Module::rigid("x", 1.0, 1.0, false)).unwrap();
        assert!(matches!(
            nl.add_module(Module::rigid("x", 2.0, 2.0, false)),
            Err(NetlistError::DuplicateModule(_))
        ));
    }

    #[test]
    fn dangling_net_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_module(Module::rigid("a", 1.0, 1.0, false)).unwrap();
        let err = nl.add_net(Net::new("bad", [a, ModuleId(7)])).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownModule { index: 7, .. }));
    }

    #[test]
    fn lookups_and_areas() {
        let (nl, a, _, c) = three_module_netlist();
        assert_eq!(nl.module_by_name("a"), Some(a));
        assert_eq!(nl.module_by_name("zz"), None);
        assert_eq!(nl.total_module_area(), 1.0 + 2.0 + 4.0);
        assert_eq!(nl.nets_of(c).len(), 2);
        assert_eq!(nl.connectivity_to_set(a, &[ModuleId(1), ModuleId(2)]), 5.0);
    }
}
