//! Additional MCNC-era benchmark equivalents: `apte` (9 modules) and
//! `xerox` (10 modules).
//!
//! Like [`ami33`](crate::ami33), these are deterministic synthetic
//! stand-ins for the original (non-redistributable) MCNC data: the module
//! counts, the large-block character (apte: nine big macros of similar
//! size; xerox: ten blocks with a 6:1 size spread) and the net-count scale
//! match the originals; exact dimensions are synthesized.

use crate::module::{Module, SidePins};
use crate::net::Net;
use crate::netlist::Netlist;
use crate::ModuleId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `(w, h)` of the nine apte-like macros (similar-sized large blocks).
const APTE_DIMS: [(f64, f64); 9] = [
    (42.0, 33.0),
    (42.0, 33.0),
    (42.0, 33.0),
    (42.0, 33.0),
    (30.0, 46.0),
    (30.0, 46.0),
    (30.0, 46.0),
    (30.0, 46.0),
    (36.0, 36.0),
];

/// `(w, h)` of the ten xerox-like blocks (wider size spread).
const XEROX_DIMS: [(f64, f64); 10] = [
    (38.0, 30.0),
    (34.0, 24.0),
    (30.0, 24.0),
    (24.0, 24.0),
    (24.0, 18.0),
    (20.0, 16.0),
    (18.0, 14.0),
    (14.0, 14.0),
    (14.0, 10.0),
    (10.0, 8.0),
];

fn build(name: &str, dims: &[(f64, f64)], nets: usize, seed: u64) -> Netlist {
    let mut nl = Netlist::new(name);
    for (i, &(w, h)) in dims.iter().enumerate() {
        let pins = SidePins {
            left: (h / 2.0).ceil() as u32,
            right: (h / 2.0).ceil() as u32,
            bottom: (w / 2.0).ceil() as u32,
            top: (w / 2.0).ceil() as u32,
        };
        nl.add_module(Module::rigid(format!("{name}{i:02}"), w, h, true).with_pins(pins))
            .expect("unique names");
    }
    let k = dims.len();
    let mut rng = StdRng::seed_from_u64(seed);
    for n in 0..nets {
        let degree = rng.gen_range(2..=3.min(k));
        let mut members = vec![ModuleId(rng.gen_range(0..k))];
        while members.len() < degree {
            let pick = ModuleId(rng.gen_range(0..k));
            if !members.contains(&pick) {
                members.push(pick);
            }
        }
        nl.add_net(Net::new(format!("n{n:03}"), members))
            .expect("valid indices");
    }
    nl
}

/// The apte-equivalent benchmark: 9 large, similar-sized macros, 97 nets.
#[must_use]
pub fn apte9() -> Netlist {
    build("apte", &APTE_DIMS, 97, 0xA97E)
}

/// The xerox-equivalent benchmark: 10 blocks with a wide size spread,
/// 203 nets.
#[must_use]
pub fn xerox10() -> Netlist {
    build("xerox", &XEROX_DIMS, 203, 0x0E80)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apte_shape() {
        let nl = apte9();
        assert_eq!(nl.num_modules(), 9);
        assert_eq!(nl.num_nets(), 97);
        // Similar-sized macros: spread under 2x.
        let areas: Vec<f64> = nl.modules().map(|(_, m)| m.area()).collect();
        let max = areas.iter().copied().fold(0.0, f64::max);
        let min = areas.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min < 2.0, "apte blocks are similar-sized");
    }

    #[test]
    fn xerox_shape() {
        let nl = xerox10();
        assert_eq!(nl.num_modules(), 10);
        assert_eq!(nl.num_nets(), 203);
        let areas: Vec<f64> = nl.modules().map(|(_, m)| m.area()).collect();
        let max = areas.iter().copied().fold(0.0, f64::max);
        let min = areas.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min > 5.0, "xerox blocks have a wide spread");
    }

    #[test]
    fn deterministic_and_connected() {
        assert_eq!(apte9(), apte9());
        assert_eq!(xerox10(), xerox10());
        for nl in [apte9(), xerox10()] {
            for (id, _) in nl.modules() {
                assert!(!nl.nets_of(id).is_empty(), "{id} isolated in {}", nl.name());
            }
        }
    }
}
