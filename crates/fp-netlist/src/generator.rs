//! Seeded random problem generator (paper §4, Series 1).
//!
//! The Table 1 scaling study runs the floorplanner on "randomly generated"
//! problems with 15, 20 and 25 modules. This generator reproduces that
//! workload class deterministically: log-uniform module areas, bounded
//! aspect ratios, a configurable rigid/flexible mix, and locality-biased
//! nets.

use crate::module::{Module, SidePins};
use crate::net::Net;
use crate::netlist::Netlist;
use crate::ModuleId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for random problem generation (builder style).
///
/// ```
/// use fp_netlist::generator::ProblemGenerator;
/// let nl = ProblemGenerator::new(15, 42).generate();
/// assert_eq!(nl.num_modules(), 15);
/// // Same seed, same problem:
/// assert_eq!(nl, ProblemGenerator::new(15, 42).generate());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemGenerator {
    num_modules: usize,
    seed: u64,
    flexible_fraction: f64,
    area_range: (f64, f64),
    aspect_range: (f64, f64),
    nets_per_module: f64,
}

impl ProblemGenerator {
    /// A generator for `num_modules` modules with the given seed and
    /// Table 1-like defaults (all rigid, areas 20–400, aspect 0.3–3).
    #[must_use]
    pub fn new(num_modules: usize, seed: u64) -> Self {
        ProblemGenerator {
            num_modules,
            seed,
            flexible_fraction: 0.0,
            area_range: (20.0, 400.0),
            aspect_range: (1.0 / 3.0, 3.0),
            nets_per_module: 2.5,
        }
    }

    /// Fraction of modules generated as flexible (soft), in `[0, 1]`.
    #[must_use]
    pub fn with_flexible_fraction(mut self, fraction: f64) -> Self {
        self.flexible_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Module area range (log-uniformly sampled).
    #[must_use]
    pub fn with_area_range(mut self, min: f64, max: f64) -> Self {
        assert!(0.0 < min && min <= max, "bad area range [{min}, {max}]");
        self.area_range = (min, max);
        self
    }

    /// Aspect-ratio range for module shapes.
    #[must_use]
    pub fn with_aspect_range(mut self, min: f64, max: f64) -> Self {
        assert!(0.0 < min && min <= max, "bad aspect range [{min}, {max}]");
        self.aspect_range = (min, max);
        self
    }

    /// Average number of nets per module (controls netlist density).
    #[must_use]
    pub fn with_nets_per_module(mut self, density: f64) -> Self {
        self.nets_per_module = density.max(0.0);
        self
    }

    /// Generates the problem instance. Deterministic in all parameters.
    #[must_use]
    pub fn generate(&self) -> Netlist {
        let mut rng = StdRng::seed_from_u64(self.seed ^ SEED_SALT);
        let mut nl = Netlist::new(format!("rand{}-{}", self.num_modules, self.seed));

        for i in 0..self.num_modules {
            let (amin, amax) = self.area_range;
            let area = (amin.ln() + rng.gen::<f64>() * (amax.ln() - amin.ln())).exp();
            let (rmin, rmax) = self.aspect_range;
            let name = format!("m{i:02}");
            let module = if rng.gen::<f64>() < self.flexible_fraction {
                Module::flexible(name, area.round().max(1.0), rmin, rmax)
            } else {
                let aspect = (rmin.ln() + rng.gen::<f64>() * (rmax.ln() - rmin.ln())).exp();
                let w = (area * aspect).sqrt().round().max(1.0);
                let h = (area / aspect).sqrt().round().max(1.0);
                Module::rigid(name, w, h, true)
            };
            let (wlo, whi) = module.width_range();
            let (hlo, hhi) = module.height_range();
            let pins = SidePins {
                left: ((hlo + hhi) / 8.0).ceil() as u32,
                right: ((hlo + hhi) / 8.0).ceil() as u32,
                bottom: ((wlo + whi) / 8.0).ceil() as u32,
                top: ((wlo + whi) / 8.0).ceil() as u32,
            };
            nl.add_module(module.with_pins(pins))
                .expect("generated names are unique");
        }

        let num_nets = (self.num_modules as f64 * self.nets_per_module).round() as usize;
        // Degree caps degrade gracefully for tiny problems (n < 3) while
        // leaving the sampling sequence identical for n >= 3.
        let max_degree = self.num_modules.clamp(2, 5);
        for n in 0..num_nets {
            let degree = if rng.gen_range(0..10) < 8 {
                rng.gen_range(2..=3.min(max_degree))
            } else {
                rng.gen_range(3.min(max_degree)..=max_degree)
            };
            let anchor = rng.gen_range(0..self.num_modules);
            let span = (self.num_modules / 3).max(2);
            let mut members = vec![ModuleId(anchor)];
            let mut attempts = 0;
            while members.len() < degree && attempts < 100 {
                attempts += 1;
                let lo = anchor.saturating_sub(span);
                let hi = (anchor + span).min(self.num_modules - 1);
                let pick = ModuleId(rng.gen_range(lo..=hi));
                if !members.contains(&pick) {
                    members.push(pick);
                }
            }
            if members.len() >= 2 {
                nl.add_net(Net::new(format!("n{n:03}"), members))
                    .expect("indices in range");
            }
        }
        nl
    }
}

/// Salt XOR-ed into user seeds so generator streams never collide with other
/// seeded RNGs in the workspace (e.g. the ami33 net seed).
const SEED_SALT: u64 = 0x5EED_F10A_4B1A_0001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = ProblemGenerator::new(12, 9).generate();
        let b = ProblemGenerator::new(12, 9).generate();
        assert_eq!(a, b);
        let c = ProblemGenerator::new(12, 10).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn respects_module_count_and_kinds() {
        for &n in &[5usize, 15, 25] {
            let nl = ProblemGenerator::new(n, 1).generate();
            assert_eq!(nl.num_modules(), n);
            assert!(nl.num_nets() > 0);
        }
    }

    #[test]
    fn flexible_fraction() {
        let nl = ProblemGenerator::new(40, 3)
            .with_flexible_fraction(1.0)
            .generate();
        assert!(nl.modules().all(|(_, m)| m.is_flexible()));
        let nl0 = ProblemGenerator::new(40, 3)
            .with_flexible_fraction(0.0)
            .generate();
        assert!(nl0.modules().all(|(_, m)| !m.is_flexible()));
    }

    #[test]
    fn areas_within_range() {
        let nl = ProblemGenerator::new(30, 5)
            .with_area_range(50.0, 100.0)
            .generate();
        for (_, m) in nl.modules() {
            // Rounding of integer dims can nudge areas slightly out.
            assert!(m.area() >= 35.0 && m.area() <= 135.0, "area {}", m.area());
        }
    }

    #[test]
    fn nets_reference_valid_modules() {
        let nl = ProblemGenerator::new(10, 77).generate();
        for (_, net) in nl.nets() {
            assert!(net.degree() >= 2);
            for m in net.modules() {
                assert!(m.index() < 10);
            }
        }
    }
}
