//! Parser for a subset of **YAL**, the MCNC benchmark exchange format the
//! original `ami33`/`apte`/`xerox` decks ship in.
//!
//! The original files are not redistributable with this repository, but
//! users who have them can load them directly:
//!
//! ```
//! let deck = "\
//! MODULE cpu; TYPE GENERAL;
//! DIMENSIONS 0 0 0 10 20 10 20 0;
//! IOLIST; p1 B 0 5 M2; p2 B 20 5 M2; ENDIOLIST;
//! ENDMODULE;
//! MODULE chip; TYPE PARENT;
//! NETWORK; u1 cpu siga VDD; ENDNETWORK;
//! ENDMODULE;";
//! let netlist = fp_netlist::format::parse_yal(deck).unwrap();
//! assert_eq!(netlist.num_modules(), 1);
//! ```
//!
//! Supported subset:
//!
//! * `MODULE <name>; … ENDMODULE;` blocks;
//! * `TYPE GENERAL|STANDARD|PAD|PARENT;` — GENERAL/STANDARD become rigid
//!   rotatable modules, PAD blocks are ignored, the PARENT block provides
//!   the netlist;
//! * `DIMENSIONS x1 y1 x2 y2 …;` — the bounding box of the vertex list
//!   defines the module's rectangle (MCNC macros are rectangles);
//! * `IOLIST; <pin> <class> <x> <y> …; ENDIOLIST;` — pins are counted per
//!   nearest side, feeding the §3.2 envelope model;
//! * `NETWORK; <instance> <module> <signal>…; ENDNETWORK;` — signals shared
//!   by several instances become nets; power/ground (`VDD`, `VSS`, `GND`)
//!   and unconnected signals are dropped.
//!
//! Anything else (CURRENT, VOLTAGE, PLACEMENT, …) is skipped statement-wise.

use crate::error::NetlistError;
use crate::module::{Module, SidePins};
use crate::net::Net;
use crate::netlist::Netlist;
use std::collections::HashMap;

/// Parses a YAL deck (see the [module docs](self) for the supported
/// subset).
///
/// # Errors
///
/// [`NetlistError::Parse`] with an approximate line number for malformed
/// statements; semantic errors (duplicate modules, unknown instance types)
/// use their specific variants.
pub fn parse_yal(text: &str) -> Result<Netlist, NetlistError> {
    // Strip (non-nested) /* ... */ comments, preserving newlines so line
    // numbers in diagnostics stay meaningful.
    let text = strip_comments(text);
    let text = text.as_str();

    // Statement-split on ';', tracking line numbers for diagnostics.
    let mut statements: Vec<(usize, Vec<String>)> = Vec::new();
    {
        let mut current: Vec<String> = Vec::new();
        let mut start_line = 1usize;
        let mut line = 1usize;
        for raw in text.split_inclusive(';') {
            let newlines = raw.matches('\n').count();
            let stmt = raw.trim_end_matches(';');
            let mut tokens: Vec<String> = stmt.split_whitespace().map(|t| t.to_string()).collect();
            current.append(&mut tokens);
            if raw.ends_with(';') {
                if !current.is_empty() {
                    statements.push((start_line, std::mem::take(&mut current)));
                }
                start_line = line + newlines;
            }
            line += newlines;
        }
        if !current.is_empty() {
            statements.push((start_line, current));
        }
    }

    #[derive(Default)]
    struct ModuleDef {
        w: f64,
        h: f64,
        pins: SidePins,
        is_parent: bool,
        is_pad: bool,
    }

    let err = |line: usize, message: String| NetlistError::Parse { line, message };

    let mut defs: HashMap<String, ModuleDef> = HashMap::new();
    // (instance, module type, signals)
    let mut instances: Vec<(String, String, Vec<String>)> = Vec::new();

    let mut current: Option<(String, ModuleDef)> = None;
    let mut in_iolist = false;
    let mut in_network = false;

    for (line, tokens) in &statements {
        let line = *line;
        let head = tokens[0].to_ascii_uppercase();
        match head.as_str() {
            "MODULE" => {
                let name = tokens
                    .get(1)
                    .ok_or_else(|| err(line, "MODULE needs a name".into()))?;
                current = Some((name.clone(), ModuleDef::default()));
            }
            "ENDMODULE" => {
                let (name, def) = current
                    .take()
                    .ok_or_else(|| err(line, "ENDMODULE without MODULE".into()))?;
                if !def.is_parent {
                    defs.insert(name, def);
                }
                in_iolist = false;
                in_network = false;
            }
            "TYPE" => {
                let kind = tokens
                    .get(1)
                    .map(|t| t.to_ascii_uppercase())
                    .ok_or_else(|| err(line, "TYPE needs a value".into()))?;
                if let Some((_, def)) = current.as_mut() {
                    def.is_parent = kind == "PARENT";
                    def.is_pad = kind == "PAD";
                }
            }
            "DIMENSIONS" => {
                let coords: Result<Vec<f64>, _> =
                    tokens[1..].iter().map(|t| t.parse::<f64>()).collect();
                let coords = coords.map_err(|_| err(line, "DIMENSIONS wants numbers".into()))?;
                if coords.len() < 6 || coords.len() % 2 != 0 {
                    return Err(err(line, "DIMENSIONS wants >= 3 x/y pairs".into()));
                }
                let xs: Vec<f64> = coords.iter().step_by(2).copied().collect();
                let ys: Vec<f64> = coords.iter().skip(1).step_by(2).copied().collect();
                let (x0, x1) = (
                    xs.iter().copied().fold(f64::INFINITY, f64::min),
                    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                );
                let (y0, y1) = (
                    ys.iter().copied().fold(f64::INFINITY, f64::min),
                    ys.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                );
                if let Some((_, def)) = current.as_mut() {
                    def.w = x1 - x0;
                    def.h = y1 - y0;
                }
            }
            "IOLIST" => in_iolist = true,
            "ENDIOLIST" => in_iolist = false,
            "NETWORK" => in_network = true,
            "ENDNETWORK" => in_network = false,
            // <instance> <module> <signal...>
            _ if in_network && tokens.len() >= 2 => {
                instances.push((tokens[0].clone(), tokens[1].clone(), tokens[2..].to_vec()));
            }
            _ if in_iolist => {
                // <pin> <class> <x> <y> [...]; count toward the nearest side.
                if let Some((_, def)) = current.as_mut() {
                    if let (Some(x), Some(y)) = (
                        tokens.get(2).and_then(|t| t.parse::<f64>().ok()),
                        tokens.get(3).and_then(|t| t.parse::<f64>().ok()),
                    ) {
                        // Distances to the four sides of the (0,0)-(w,h) box.
                        let d = [x, def.w - x, y, def.h - y]; // L R B T
                        let side = (0..4)
                            .min_by(|&a, &b| d[a].total_cmp(&d[b]))
                            .expect("four sides");
                        match side {
                            0 => def.pins.left += 1,
                            1 => def.pins.right += 1,
                            2 => def.pins.bottom += 1,
                            _ => def.pins.top += 1,
                        }
                    }
                }
            }
            _ => {} // skip CURRENT, VOLTAGE, PLACEMENT, PROFILE, ...
        }
    }

    // Build the netlist: one module per *instance* of a non-PAD type.
    let mut netlist = Netlist::new("yal");
    let mut signal_members: HashMap<String, Vec<crate::ModuleId>> = HashMap::new();
    for (inst, mod_type, signals) in &instances {
        let Some(def) = defs.get(mod_type) else {
            return Err(NetlistError::UnknownModuleName {
                net: "NETWORK".to_string(),
                name: mod_type.clone(),
            });
        };
        if def.is_pad {
            continue;
        }
        if def.w <= 0.0 || def.h <= 0.0 {
            return Err(NetlistError::Parse {
                line: 0,
                message: format!("module type '{mod_type}' has no DIMENSIONS"),
            });
        }
        let id = netlist
            .add_module(Module::rigid(inst.clone(), def.w, def.h, true).with_pins(def.pins))?;
        for signal in signals {
            let upper = signal.to_ascii_uppercase();
            if upper == "VDD" || upper == "VSS" || upper == "GND" {
                continue;
            }
            signal_members.entry(signal.clone()).or_default().push(id);
        }
    }

    let mut signals: Vec<(String, Vec<crate::ModuleId>)> = signal_members.into_iter().collect();
    signals.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic net order
    for (signal, members) in signals {
        let mut members = members;
        members.sort_unstable();
        members.dedup();
        if members.len() >= 2 {
            netlist.add_net(Net::new(signal, members))?;
        }
    }
    Ok(netlist)
}

/// Removes `/* ... */` comments, keeping newlines for line accounting.
fn strip_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(start) = rest.find("/*") {
        out.push_str(&rest[..start]);
        match rest[start..].find("*/") {
            Some(end_rel) => {
                let comment = &rest[start..start + end_rel + 2];
                out.extend(comment.chars().filter(|&c| c == '\n'));
                rest = &rest[start + end_rel + 2..];
            }
            None => {
                // Unterminated comment: drop the rest (keep newlines).
                out.extend(rest[start..].chars().filter(|&c| c == '\n'));
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
/* a tiny YAL deck in the MCNC style */
MODULE cpu;
TYPE GENERAL;
DIMENSIONS 0 0 0 10 20 10 20 0;
IOLIST;
  p1 B 0 5 1 METAL2;
  p2 B 20 5 1 METAL2;
  p3 B 10 10 1 METAL1;
ENDIOLIST;
ENDMODULE;
MODULE ram;
TYPE GENERAL;
DIMENSIONS 0 0 0 8 8 8 8 0;
ENDMODULE;
MODULE pad_in;
TYPE PAD;
DIMENSIONS 0 0 0 1 1 1 1 0;
ENDMODULE;
MODULE chip;
TYPE PARENT;
NETWORK;
  u1 cpu data addr VDD;
  u2 ram data GND;
  u3 ram addr;
  io1 pad_in data;
ENDNETWORK;
ENDMODULE;
";

    #[test]
    fn parses_modules_and_nets() {
        let nl = parse_yal(SAMPLE).unwrap();
        // Three non-pad instances: u1 (cpu), u2, u3 (ram).
        assert_eq!(nl.num_modules(), 3);
        let u1 = nl.module_by_name("u1").unwrap();
        let m = nl.module(u1);
        assert_eq!((m.area(), m.rotatable()), (200.0, true));
        // Pins: p1 on left, p2 on right, p3 on top (closest side).
        assert_eq!(m.pins().left, 1);
        assert_eq!(m.pins().right, 1);
        assert_eq!(m.pins().top, 1);
        // Nets: data (u1, u2 — pad dropped), addr (u1, u3); power dropped.
        assert_eq!(nl.num_nets(), 2);
        let u2 = nl.module_by_name("u2").unwrap();
        let u3 = nl.module_by_name("u3").unwrap();
        assert_eq!(nl.connectivity(u1, u2), 1.0);
        assert_eq!(nl.connectivity(u1, u3), 1.0);
        assert_eq!(nl.connectivity(u2, u3), 0.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(parse_yal(SAMPLE).unwrap(), parse_yal(SAMPLE).unwrap());
    }

    #[test]
    fn rejects_unknown_instance_type() {
        let deck = "MODULE chip; TYPE PARENT; NETWORK; u1 ghost a b; ENDNETWORK; ENDMODULE;";
        assert!(matches!(
            parse_yal(deck),
            Err(NetlistError::UnknownModuleName { .. })
        ));
    }

    #[test]
    fn rejects_bad_dimensions() {
        let deck = "MODULE m; TYPE GENERAL; DIMENSIONS 0 0 1; ENDMODULE;";
        assert!(matches!(parse_yal(deck), Err(NetlistError::Parse { .. })));
        let deck = "MODULE m; TYPE GENERAL; ENDMODULE;\
                    MODULE c; TYPE PARENT; NETWORK; u m s1 s2; ENDNETWORK; ENDMODULE;";
        assert!(parse_yal(deck).is_err(), "missing DIMENSIONS must error");
    }

    #[test]
    fn floorplans_end_to_end() {
        // The parsed deck must be consumable by the rest of the stack
        // (structure check only here; fp-core integration lives in tests/).
        let nl = parse_yal(SAMPLE).unwrap();
        assert!(nl.total_module_area() > 0.0);
        let order = crate::ordering::linear_order(&nl);
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn unterminated_statement_is_tolerated() {
        // A trailing statement without ';' is still consumed.
        let deck = "MODULE m; TYPE GENERAL; DIMENSIONS 0 0 0 2 2 2 2 0; ENDMODULE";
        // No PARENT => empty netlist, but no panic/error about the tail.
        let nl = parse_yal(deck).unwrap();
        assert_eq!(nl.num_modules(), 0);
    }
}
