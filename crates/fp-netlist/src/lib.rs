//! Modules, nets and benchmark infrastructure for the analytical
//! floorplanner.
//!
//! The paper's problem definition (§2.2): a set of **rigid** modules (given
//! `w × h`, 90° rotation allowed) and **flexible** modules (given area `S`
//! and aspect-ratio bounds `b ≤ w/h ≤ a`), a netlist from which the pairwise
//! connectivity counts `c_ij` are derived, and per-side pin counts that
//! drive the routing envelopes of §3.2.
//!
//! This crate provides:
//!
//! * the data model ([`Module`], [`Net`], [`Netlist`]),
//! * the module orderings used in the paper's Table 2 experiments
//!   ([`ordering`]: random, and connectivity-based linear ordering),
//! * a seeded random problem generator for the Table 1 scaling study
//!   ([`generator`]),
//! * the `ami33`-equivalent benchmark ([`ami33`]) — a deterministic
//!   synthetic stand-in for the MCNC benchmark with 33 modules whose areas
//!   sum to the paper's stated 11520,
//! * a plain-text problem format ([`format`](mod@format)).
//!
//! ```
//! let bench = fp_netlist::ami33();
//! assert_eq!(bench.num_modules(), 33);
//! assert_eq!(bench.total_module_area(), 11520.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ami33;
pub mod decks;
mod error;
pub mod format;
pub mod generator;
mod mcnc;
mod module;
mod net;
mod netlist;
pub mod ordering;
mod stats;
mod yal;

pub use ami33::ami33;
pub use error::NetlistError;
pub use mcnc::{apte9, xerox10};
pub use module::{Module, ModuleId, Shape, SidePins};
pub use net::{Net, NetId};
pub use netlist::Netlist;
pub use stats::NetlistStats;
