//! Module (block) definitions: rigid and flexible shapes, per-side pins.

use std::fmt;

/// Index of a module within its [`Netlist`](crate::Netlist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub usize);

impl ModuleId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Shape specification of a module (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// Fixed dimensions `w × h`; 90° rotation may be allowed
    /// (the `z_i` variable of formulation (4)).
    Rigid {
        /// Width in the unrotated orientation.
        w: f64,
        /// Height in the unrotated orientation.
        h: f64,
    },
    /// Fixed area `S = w·h` with free aspect ratio within
    /// `min_aspect ≤ w/h ≤ max_aspect` (the paper's `b ≤ w/h ≤ a`).
    Flexible {
        /// Required area `S`.
        area: f64,
        /// Lower aspect-ratio bound `b`.
        min_aspect: f64,
        /// Upper aspect-ratio bound `a`.
        max_aspect: f64,
    },
}

impl Shape {
    /// The module area (`w·h` for rigid, `S` for flexible).
    #[must_use]
    pub fn area(&self) -> f64 {
        match *self {
            Shape::Rigid { w, h } => w * h,
            Shape::Flexible { area, .. } => area,
        }
    }

    /// Feasible width range `(w_min, w_max)` over all legal shapes and
    /// orientations.
    ///
    /// For flexible modules `w = sqrt(S·r)` at aspect `r`; for rigid
    /// modules the range covers both orientations when rotation is allowed
    /// (handled by the caller via [`Module::width_range`]).
    #[must_use]
    pub fn width_range(&self) -> (f64, f64) {
        match *self {
            Shape::Rigid { w, .. } => (w, w),
            Shape::Flexible {
                area,
                min_aspect,
                max_aspect,
            } => ((area * min_aspect).sqrt(), (area * max_aspect).sqrt()),
        }
    }

    /// Whether this is a flexible (soft) shape.
    #[must_use]
    pub fn is_flexible(&self) -> bool {
        matches!(self, Shape::Flexible { .. })
    }
}

/// Pin counts on the four sides of a module — the §3.2 routing model
/// replaces exact pin positions with one *generalized pin* per side, and
/// grows the envelope of each side proportionally to its pin count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct SidePins {
    /// Pins on the left edge.
    pub left: u32,
    /// Pins on the right edge.
    pub right: u32,
    /// Pins on the bottom edge.
    pub bottom: u32,
    /// Pins on the top edge.
    pub top: u32,
}

impl SidePins {
    /// Uniform pin count on every side.
    #[must_use]
    pub fn uniform(n: u32) -> Self {
        SidePins {
            left: n,
            right: n,
            bottom: n,
            top: n,
        }
    }

    /// Total pins over all sides.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.left + self.right + self.bottom + self.top
    }
}

/// A module (block) of the floorplanning problem.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    name: String,
    shape: Shape,
    rotatable: bool,
    pins: SidePins,
}

impl Module {
    /// Creates a rigid module; `rotatable` enables the 90° rotation variable.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` is not strictly positive and finite.
    #[must_use]
    pub fn rigid(name: impl Into<String>, w: f64, h: f64, rotatable: bool) -> Self {
        assert!(
            w > 0.0 && h > 0.0 && w.is_finite() && h.is_finite(),
            "rigid module needs positive finite dims, got {w}x{h}"
        );
        Module {
            name: name.into(),
            shape: Shape::Rigid { w, h },
            rotatable,
            pins: SidePins::default(),
        }
    }

    /// Creates a flexible module of area `area` with aspect-ratio bounds
    /// `min_aspect ≤ w/h ≤ max_aspect`.
    ///
    /// # Panics
    ///
    /// Panics if `area <= 0` or the aspect bounds are not
    /// `0 < min_aspect <= max_aspect`.
    #[must_use]
    pub fn flexible(name: impl Into<String>, area: f64, min_aspect: f64, max_aspect: f64) -> Self {
        assert!(area > 0.0 && area.is_finite(), "area must be positive");
        assert!(
            0.0 < min_aspect && min_aspect <= max_aspect && max_aspect.is_finite(),
            "need 0 < min_aspect <= max_aspect, got [{min_aspect}, {max_aspect}]"
        );
        Module {
            name: name.into(),
            shape: Shape::Flexible {
                area,
                min_aspect,
                max_aspect,
            },
            rotatable: false,
            pins: SidePins::default(),
        }
    }

    /// Sets per-side pin counts (builder style).
    #[must_use]
    pub fn with_pins(mut self, pins: SidePins) -> Self {
        self.pins = pins;
        self
    }

    /// The module name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shape specification.
    #[must_use]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Whether 90° rotation is permitted (always `false` for flexible
    /// modules, whose shaping subsumes rotation).
    #[must_use]
    pub fn rotatable(&self) -> bool {
        self.rotatable && !self.shape.is_flexible()
    }

    /// Per-side pin counts.
    #[must_use]
    pub fn pins(&self) -> SidePins {
        self.pins
    }

    /// The module area.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.shape.area()
    }

    /// Whether the module is flexible.
    #[must_use]
    pub fn is_flexible(&self) -> bool {
        self.shape.is_flexible()
    }

    /// Feasible width range over all legal shapes *and orientations*.
    #[must_use]
    pub fn width_range(&self) -> (f64, f64) {
        match *self.shape() {
            Shape::Rigid { w, h } => {
                if self.rotatable() {
                    (w.min(h), w.max(h))
                } else {
                    (w, w)
                }
            }
            _ => self.shape.width_range(),
        }
    }

    /// Feasible height range over all legal shapes and orientations.
    #[must_use]
    pub fn height_range(&self) -> (f64, f64) {
        match *self.shape() {
            Shape::Rigid { w, h } => {
                if self.rotatable() {
                    (w.min(h), w.max(h))
                } else {
                    (h, h)
                }
            }
            Shape::Flexible {
                area,
                min_aspect,
                max_aspect,
            } => ((area / max_aspect).sqrt(), (area / min_aspect).sqrt()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rigid_basics() {
        let m = Module::rigid("alu", 4.0, 2.0, true);
        assert_eq!(m.name(), "alu");
        assert_eq!(m.area(), 8.0);
        assert!(m.rotatable());
        assert!(!m.is_flexible());
        assert_eq!(m.width_range(), (2.0, 4.0));
        assert_eq!(m.height_range(), (2.0, 4.0));
    }

    #[test]
    fn non_rotatable_rigid() {
        let m = Module::rigid("ram", 4.0, 2.0, false);
        assert_eq!(m.width_range(), (4.0, 4.0));
        assert_eq!(m.height_range(), (2.0, 2.0));
    }

    #[test]
    fn flexible_ranges() {
        let m = Module::flexible("ctl", 16.0, 0.25, 4.0);
        assert!(m.is_flexible());
        assert!(!m.rotatable());
        let (wmin, wmax) = m.width_range();
        assert!((wmin - 2.0).abs() < 1e-12); // sqrt(16*0.25)
        assert!((wmax - 8.0).abs() < 1e-12); // sqrt(16*4)
        let (hmin, hmax) = m.height_range();
        assert!((hmin - 2.0).abs() < 1e-12);
        assert!((hmax - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive finite dims")]
    fn rejects_zero_width() {
        let _ = Module::rigid("bad", 0.0, 2.0, false);
    }

    #[test]
    #[should_panic(expected = "min_aspect <= max_aspect")]
    fn rejects_inverted_aspect_bounds() {
        let _ = Module::flexible("bad", 4.0, 3.0, 1.0);
    }

    #[test]
    fn pins() {
        let m = Module::rigid("io", 2.0, 2.0, false).with_pins(SidePins {
            left: 1,
            right: 2,
            bottom: 3,
            top: 4,
        });
        assert_eq!(m.pins().total(), 10);
        assert_eq!(SidePins::uniform(2).total(), 8);
    }
}
