//! Module orderings for successive augmentation (paper §4, Series 2).
//!
//! Table 2 compares two strategies for the order in which modules are added
//! to the partial floorplan: **random**, and **linear ordering based on
//! connectivity** (after Kang's linear ordering, ref. \[KAN83]): start from the
//! most connected module and greedily append the module with the strongest
//! connectivity to the already-ordered set.

use crate::module::ModuleId;
use crate::netlist::Netlist;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A deterministic pseudo-random permutation of the module ids.
#[must_use]
pub fn random_order(netlist: &Netlist, seed: u64) -> Vec<ModuleId> {
    let mut ids = netlist.module_ids();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    ids
}

/// Connectivity-based linear ordering: the first module maximizes total
/// connectivity; each subsequent module maximizes connectivity to the
/// ordered prefix (ties: larger total connectivity, then lower index —
/// fully deterministic).
#[must_use]
pub fn linear_order(netlist: &Netlist) -> Vec<ModuleId> {
    let k = netlist.num_modules();
    if k == 0 {
        return Vec::new();
    }
    let c = netlist.connectivity_matrix();
    let total: Vec<f64> = (0..k).map(|i| c[i].iter().sum()).collect();

    let first = (0..k)
        .max_by(|&a, &b| total[a].total_cmp(&total[b]).then(b.cmp(&a)))
        .expect("non-empty");
    let mut order = vec![ModuleId(first)];
    let mut placed = vec![false; k];
    placed[first] = true;
    let mut attachment: Vec<f64> = c[first].clone();

    while order.len() < k {
        let next = (0..k)
            .filter(|&i| !placed[i])
            .max_by(|&a, &b| {
                attachment[a]
                    .total_cmp(&attachment[b])
                    .then(total[a].total_cmp(&total[b]))
                    .then(b.cmp(&a))
            })
            .expect("some module unplaced");
        placed[next] = true;
        order.push(ModuleId(next));
        for (i, att) in attachment.iter_mut().enumerate() {
            *att += c[next][i];
        }
    }
    order
}

/// Orders by descending area — a classic constructive-placement heuristic
/// used as an ablation baseline (large modules first keep the MILP big-M
/// bounds tight).
#[must_use]
pub fn area_order(netlist: &Netlist) -> Vec<ModuleId> {
    let mut ids = netlist.module_ids();
    ids.sort_by(|&a, &b| {
        netlist
            .module(b)
            .area()
            .total_cmp(&netlist.module(a).area())
            .then(a.cmp(&b))
    });
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;
    use crate::net::Net;

    fn chain_netlist() -> Netlist {
        // a - b - c - d chain plus a hub net on b.
        let mut nl = Netlist::new("chain");
        let a = nl.add_module(Module::rigid("a", 1.0, 1.0, true)).unwrap();
        let b = nl.add_module(Module::rigid("b", 2.0, 2.0, true)).unwrap();
        let c = nl.add_module(Module::rigid("c", 3.0, 3.0, true)).unwrap();
        let d = nl.add_module(Module::rigid("d", 4.0, 4.0, true)).unwrap();
        nl.add_net(Net::new("ab", [a, b])).unwrap();
        nl.add_net(Net::new("bc", [b, c])).unwrap();
        nl.add_net(Net::new("cd", [c, d])).unwrap();
        nl.add_net(Net::new("hub", [b, a, c])).unwrap();
        nl
    }

    #[test]
    fn random_is_permutation_and_deterministic() {
        let nl = chain_netlist();
        let o1 = random_order(&nl, 42);
        let o2 = random_order(&nl, 42);
        let o3 = random_order(&nl, 7);
        assert_eq!(o1, o2);
        let mut sorted = o1.clone();
        sorted.sort();
        assert_eq!(sorted, nl.module_ids());
        // Different seeds virtually always differ on 4 elements; allow
        // equality but require both to be permutations.
        let mut sorted3 = o3.clone();
        sorted3.sort();
        assert_eq!(sorted3, nl.module_ids());
    }

    #[test]
    fn linear_order_starts_at_hub() {
        let nl = chain_netlist();
        let order = linear_order(&nl);
        // b has connectivity: ab(1) + bc(1) + hub(a:1, c:1) = 4, the max.
        assert_eq!(order[0], ModuleId(1));
        assert_eq!(order.len(), 4);
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(sorted, nl.module_ids());
    }

    #[test]
    fn linear_order_prefers_connected_next() {
        let nl = chain_netlist();
        let order = linear_order(&nl);
        // After b, both a and c have attachment 2 (edge + hub); c wins on
        // total connectivity (bc + cd + hub = 3 > a's 2).
        assert_eq!(order[1], ModuleId(2));
    }

    #[test]
    fn area_order_descends() {
        let nl = chain_netlist();
        let order = area_order(&nl);
        let areas: Vec<f64> = order.iter().map(|&i| nl.module(i).area()).collect();
        assert!(areas.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn empty_netlist() {
        let nl = Netlist::new("empty");
        assert!(linear_order(&nl).is_empty());
        assert!(random_order(&nl, 1).is_empty());
        assert!(area_order(&nl).is_empty());
    }

    #[test]
    fn isolated_modules_still_ordered() {
        let mut nl = Netlist::new("iso");
        for i in 0..5 {
            nl.add_module(Module::rigid(format!("m{i}"), 1.0, 1.0, false))
                .unwrap();
        }
        let order = linear_order(&nl);
        assert_eq!(order.len(), 5);
        let mut sorted = order;
        sorted.sort();
        assert_eq!(sorted, nl.module_ids());
    }
}
