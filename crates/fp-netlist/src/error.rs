//! Netlist error type.

use std::error::Error;
use std::fmt;

/// Errors raised while building or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net references a module index outside the netlist.
    UnknownModule {
        /// Name of the offending net.
        net: String,
        /// The out-of-range module index.
        index: usize,
    },
    /// A module name appears twice.
    DuplicateModule(String),
    /// A net references a module *name* that does not exist (parser).
    UnknownModuleName {
        /// Name of the offending net.
        net: String,
        /// The unresolved module name.
        name: String,
    },
    /// Text-format parse failure.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownModule { net, index } => {
                write!(f, "net '{net}' references unknown module index {index}")
            }
            NetlistError::DuplicateModule(name) => {
                write!(f, "duplicate module name '{name}'")
            }
            NetlistError::UnknownModuleName { net, name } => {
                write!(f, "net '{net}' references unknown module '{name}'")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = NetlistError::UnknownModule {
            net: "clk".into(),
            index: 99,
        };
        assert!(e.to_string().contains("clk"));
        assert!(e.to_string().contains("99"));
        assert!(NetlistError::Parse {
            line: 3,
            message: "bad token".into()
        }
        .to_string()
        .contains("line 3"));
    }
}
