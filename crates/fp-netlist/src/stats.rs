//! Summary statistics of a problem instance.

use crate::netlist::Netlist;
use std::fmt;

/// Aggregate statistics of a [`Netlist`], for reports and the CLI.
///
/// ```
/// let stats = fp_netlist::NetlistStats::of(&fp_netlist::ami33());
/// assert_eq!(stats.modules, 33);
/// assert_eq!(stats.total_area, 11520.0);
/// assert!(stats.avg_net_degree >= 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Number of modules.
    pub modules: usize,
    /// Number of flexible (soft) modules.
    pub flexible_modules: usize,
    /// Number of nets.
    pub nets: usize,
    /// Sum of module areas.
    pub total_area: f64,
    /// Smallest module area.
    pub min_area: f64,
    /// Largest module area.
    pub max_area: f64,
    /// Mean pins per module (all four sides).
    pub avg_pins: f64,
    /// Mean net degree (modules per net).
    pub avg_net_degree: f64,
    /// Nets with non-zero criticality.
    pub critical_nets: usize,
    /// Modules on no net at all.
    pub isolated_modules: usize,
}

impl NetlistStats {
    /// Computes the statistics of `netlist`.
    #[must_use]
    pub fn of(netlist: &Netlist) -> Self {
        let modules = netlist.num_modules();
        let nets = netlist.num_nets();
        let areas: Vec<f64> = netlist.modules().map(|(_, m)| m.area()).collect();
        let total_area = areas.iter().sum();
        let degrees: Vec<usize> = netlist.nets().map(|(_, n)| n.degree()).collect();
        NetlistStats {
            modules,
            flexible_modules: netlist.modules().filter(|(_, m)| m.is_flexible()).count(),
            nets,
            total_area,
            min_area: areas.iter().copied().fold(f64::INFINITY, f64::min),
            max_area: areas.iter().copied().fold(0.0, f64::max),
            avg_pins: if modules == 0 {
                0.0
            } else {
                netlist
                    .modules()
                    .map(|(_, m)| f64::from(m.pins().total()))
                    .sum::<f64>()
                    / modules as f64
            },
            avg_net_degree: if nets == 0 {
                0.0
            } else {
                degrees.iter().sum::<usize>() as f64 / nets as f64
            },
            critical_nets: netlist
                .nets()
                .filter(|(_, n)| n.criticality() > 0.0)
                .count(),
            isolated_modules: netlist
                .modules()
                .filter(|(id, _)| netlist.nets_of(*id).is_empty())
                .count(),
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} modules ({} flexible, {} isolated), {} nets ({} critical, avg degree {:.1}), \
             total area {:.0} (min {:.0}, max {:.0}), avg {:.1} pins/module",
            self.modules,
            self.flexible_modules,
            self.isolated_modules,
            self.nets,
            self.critical_nets,
            self.avg_net_degree,
            self.total_area,
            self.min_area,
            self.max_area,
            self.avg_pins,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;
    use crate::net::Net;

    #[test]
    fn empty_netlist() {
        let s = NetlistStats::of(&Netlist::new("e"));
        assert_eq!(s.modules, 0);
        assert_eq!(s.avg_pins, 0.0);
        assert_eq!(s.avg_net_degree, 0.0);
        assert_eq!(s.total_area, 0.0);
    }

    #[test]
    fn mixed_netlist() {
        let mut nl = Netlist::new("m");
        let a = nl.add_module(Module::rigid("a", 2.0, 3.0, true)).unwrap();
        let b = nl
            .add_module(Module::flexible("b", 10.0, 0.5, 2.0))
            .unwrap();
        nl.add_module(Module::rigid("lonely", 1.0, 1.0, false))
            .unwrap();
        nl.add_net(Net::new("ab", [a, b]).with_criticality(0.5))
            .unwrap();
        let s = NetlistStats::of(&nl);
        assert_eq!(s.modules, 3);
        assert_eq!(s.flexible_modules, 1);
        assert_eq!(s.isolated_modules, 1);
        assert_eq!(s.critical_nets, 1);
        assert_eq!(s.total_area, 17.0);
        assert_eq!(s.min_area, 1.0);
        assert_eq!(s.max_area, 10.0);
        assert_eq!(s.avg_net_degree, 2.0);
        let text = s.to_string();
        assert!(text.contains("3 modules"));
        assert!(text.contains("1 critical"));
    }
}
