//! The `ami33`-equivalent benchmark.
//!
//! The paper evaluates on the MCNC `ami33` benchmark from the 1988 Workshop
//! on Physical Design (33 modules, total module area 11520 in the paper's
//! units). The original data file is not redistributable here, so this
//! module provides a **deterministic synthetic equivalent** with the same
//! externally visible characteristics the evaluation depends on:
//!
//! * exactly 33 rigid modules whose areas sum to **11520**,
//! * a realistic size spread (largest ≈ 1024, smallest ≈ 104, ~10:1 ratio),
//! * per-side pin counts proportional to side length (driving §3.2
//!   envelopes),
//! * 123 nets with locality (mostly 2–4-pin nets between nearby indices,
//!   a few global multi-pin nets), a handful marked timing-critical.
//!
//! Everything is derived from fixed tables and a fixed RNG seed, so every
//! run of every experiment sees the identical benchmark.

use crate::module::{Module, SidePins};
use crate::net::Net;
use crate::netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `(w, h)` for each of the 33 modules; areas sum to exactly 11520.
const AMI33_DIMS: [(f64, f64); 33] = [
    (32.0, 32.0),
    (30.0, 24.0),
    (28.0, 21.0),
    (24.0, 24.0),
    (36.0, 16.0),
    (24.0, 20.0),
    (24.0, 10.0),
    (22.0, 20.0),
    (16.0, 27.0),
    (20.0, 20.0),
    (25.0, 16.0),
    (24.0, 16.0),
    (18.0, 20.0),
    (24.0, 15.0),
    (16.0, 21.0),
    (32.0, 10.0),
    (20.0, 16.0),
    (18.0, 17.0),
    (16.0, 18.0),
    (24.0, 12.0),
    (16.0, 17.0),
    (16.0, 16.0),
    (25.0, 10.0),
    (16.0, 15.0),
    (15.0, 16.0),
    (12.0, 18.0),
    (16.0, 13.0),
    (14.0, 14.0),
    (16.0, 12.0),
    (12.0, 15.0),
    (12.0, 14.0),
    (10.0, 16.0),
    (13.0, 8.0),
];

const NUM_NETS: usize = 123;
const NET_SEED: u64 = 0x0A33_1988;

/// Builds the synthetic `ami33` benchmark (see module docs for how it
/// substitutes for the MCNC original).
#[must_use]
pub fn ami33() -> Netlist {
    let mut nl = Netlist::new("ami33");
    for (i, &(w, h)) in AMI33_DIMS.iter().enumerate() {
        // Pin counts scale with side length: one pin per ~2 units of edge,
        // at least one per side — block-level pad density in the range of
        // the MCNC macros (tens of pins per block).
        let pins = SidePins {
            left: (h / 2.0).ceil() as u32,
            right: (h / 2.0).ceil() as u32,
            bottom: (w / 2.0).ceil() as u32,
            top: (w / 2.0).ceil() as u32,
        };
        let m = Module::rigid(format!("bk{i:02}"), w, h, true).with_pins(pins);
        nl.add_module(m).expect("names are unique by construction");
    }

    let mut rng = StdRng::seed_from_u64(NET_SEED);
    for n in 0..NUM_NETS {
        // 80% local nets (2-4 pins among nearby indices), 15% regional,
        // 5% global multi-pin (5-8 pins).
        let style = rng.gen_range(0..100);
        let (degree, span) = if style < 80 {
            (rng.gen_range(2..=4), 8)
        } else if style < 95 {
            (rng.gen_range(2..=5), 16)
        } else {
            (rng.gen_range(5..=8), 33)
        };
        let anchor = rng.gen_range(0..33usize);
        let mut members = vec![crate::ModuleId(anchor)];
        while members.len() < degree {
            let lo = anchor.saturating_sub(span / 2);
            let hi = (anchor + span / 2).min(32);
            let pick = rng.gen_range(lo..=hi);
            let id = crate::ModuleId(pick);
            if !members.contains(&id) {
                members.push(id);
            }
        }
        let mut net = Net::new(format!("net{n:03}"), members);
        // Every 20th net is timing critical and length-bounded.
        if n % 20 == 0 {
            net = net.with_criticality(0.9).with_max_length(180.0);
        }
        nl.add_net(net).expect("members are valid indices");
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_numbers_match_paper() {
        let nl = ami33();
        assert_eq!(nl.num_modules(), 33);
        assert_eq!(nl.total_module_area(), 11520.0);
        assert_eq!(nl.num_nets(), NUM_NETS);
    }

    #[test]
    fn deterministic() {
        assert_eq!(ami33(), ami33());
    }

    #[test]
    fn all_rigid_and_rotatable_with_pins() {
        let nl = ami33();
        for (_, m) in nl.modules() {
            assert!(!m.is_flexible());
            assert!(m.rotatable());
            assert!(m.pins().total() >= 4);
        }
    }

    #[test]
    fn size_spread_is_realistic() {
        let nl = ami33();
        let areas: Vec<f64> = nl.modules().map(|(_, m)| m.area()).collect();
        let max = areas.iter().copied().fold(0.0, f64::max);
        let min = areas.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min > 5.0, "spread {max}/{min}");
        assert_eq!(max, 1024.0);
    }

    #[test]
    fn nets_are_well_formed_and_some_critical() {
        let nl = ami33();
        let mut critical = 0;
        for (_, net) in nl.nets() {
            assert!(net.degree() >= 2, "net {} degenerate", net.name());
            assert!(net.degree() <= 8);
            if net.criticality() > 0.0 {
                critical += 1;
                assert!(net.max_length().is_some());
            }
        }
        assert!(critical >= 5);
    }

    #[test]
    fn every_module_is_connected() {
        let nl = ami33();
        for (id, _) in nl.modules() {
            assert!(
                !nl.nets_of(id).is_empty(),
                "module {id} has no nets — connectivity ordering would stall"
            );
        }
    }
}
