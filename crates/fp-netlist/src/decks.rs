//! Scale-study deck generators: ami49-class and GSRC-style synthetics.
//!
//! The spatial-indexing work targets instances well past the paper's 33
//! modules. These generators produce deterministic decks in two familiar
//! benchmark families:
//!
//! * [`ami49_class`] — 49 modules with the macro-heavy character of the
//!   MCNC `ami49` deck: a few large macros dominating the area, a middle
//!   tier, and a long tail of small blocks (roughly a 100:1 area spread).
//! * [`gsrc_style`] — GSRC `n*`-like decks (`n ∈ {49, 100, 200, 300}`,
//!   any `n ≥ 1` accepted): many similar-sized blocks with a narrow area
//!   spread and a soft-block fraction, connected by short locality-biased
//!   nets.
//!
//! Both are pure functions of their arguments: same seed, byte-identical
//! [`format::write`](crate::format::write) output.

use crate::module::{Module, SidePins};
use crate::net::Net;
use crate::netlist::Netlist;
use crate::ModuleId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The GSRC-style deck sizes exercised by the scale benchmarks.
pub const GSRC_SIZES: [usize; 4] = [49, 100, 200, 300];

/// Salt for [`ami49_class`] seeds, distinct from every other seeded stream
/// in the workspace.
const AMI49_SALT: u64 = 0x5EED_A149_0000_0001;
/// Salt for [`gsrc_style`] seeds.
const GSRC_SALT: u64 = 0x5EED_6540_0000_0002;

/// Area tiers of the ami49-class deck: `(count, min_area, max_area)`.
/// 6 macros + 15 mid blocks + 28 small blocks = 49 modules; the macro tier
/// holds most of the silicon, like the real `ami49`.
const AMI49_TIERS: [(usize, f64, f64); 3] =
    [(6, 1600.0, 4900.0), (15, 250.0, 900.0), (28, 36.0, 150.0)];

/// Aspect-ratio bounds shared by both deck families (log-uniform samples;
/// integer rounding of dimensions can nudge realized aspects slightly out).
const ASPECT_RANGE: (f64, f64) = (0.5, 2.0);

/// A 49-module macro-heavy deck in the `ami49` mold. Rigid, rotatable
/// modules in three area tiers (see [`AMI49_TIERS`]), ~2.2 nets per module
/// with locality bias. Deterministic in `seed`.
///
/// ```
/// use fp_netlist::decks::ami49_class;
/// let nl = ami49_class(7);
/// assert_eq!(nl.num_modules(), 49);
/// assert_eq!(nl, ami49_class(7));
/// ```
#[must_use]
pub fn ami49_class(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ AMI49_SALT);
    let mut nl = Netlist::new(format!("ami49c-{seed}"));
    let mut i = 0usize;
    for &(count, amin, amax) in &AMI49_TIERS {
        for _ in 0..count {
            nl.add_module(rigid_module(format!("b{i:02}"), amin, amax, &mut rng))
                .expect("generated names are unique");
            i += 1;
        }
    }
    add_local_nets(&mut nl, 2.2, &mut rng);
    nl
}

/// A GSRC-style deck of `n` similar-sized blocks: areas log-uniform in
/// `[16, 120]`, one block in four flexible (soft) with the same area law,
/// ~1.8 nets per module with locality bias. Deterministic in `(n, seed)`.
///
/// ```
/// use fp_netlist::decks::gsrc_style;
/// let nl = gsrc_style(100, 3);
/// assert_eq!(nl.num_modules(), 100);
/// assert_eq!(nl, gsrc_style(100, 3));
/// ```
///
/// # Panics
///
/// Panics when `n == 0`.
#[must_use]
pub fn gsrc_style(n: usize, seed: u64) -> Netlist {
    assert!(n >= 1, "gsrc_style needs at least one module");
    let mut rng = StdRng::seed_from_u64(seed ^ GSRC_SALT ^ (n as u64).rotate_left(17));
    let mut nl = Netlist::new(format!("gsrc{n}-{seed}"));
    let (amin, amax) = (16.0, 120.0);
    for i in 0..n {
        let name = format!("g{i:03}");
        let module = if rng.gen_range(0..4) == 0 {
            let area = log_uniform(amin, amax, &mut rng).round().max(1.0);
            Module::flexible(name, area, ASPECT_RANGE.0, ASPECT_RANGE.1)
        } else {
            rigid_module(name, amin, amax, &mut rng)
        };
        nl.add_module(with_side_pins(module))
            .expect("generated names are unique");
    }
    add_local_nets(&mut nl, 1.8, &mut rng);
    nl
}

/// Log-uniform sample in `[lo, hi]`.
fn log_uniform(lo: f64, hi: f64, rng: &mut StdRng) -> f64 {
    (lo.ln() + rng.gen::<f64>() * (hi.ln() - lo.ln())).exp()
}

/// A rigid, rotatable module with log-uniform area in `[amin, amax]` and
/// log-uniform aspect in [`ASPECT_RANGE`], integer-rounded dimensions.
fn rigid_module(name: String, amin: f64, amax: f64, rng: &mut StdRng) -> Module {
    let area = log_uniform(amin, amax, rng);
    let aspect = log_uniform(ASPECT_RANGE.0, ASPECT_RANGE.1, rng);
    let w = (area * aspect).sqrt().round().max(1.0);
    let h = (area / aspect).sqrt().round().max(1.0);
    with_side_pins(Module::rigid(name, w, h, true))
}

/// Pin counts proportional to side lengths, as in the Table 1 generator.
fn with_side_pins(module: Module) -> Module {
    let (wlo, whi) = module.width_range();
    let (hlo, hhi) = module.height_range();
    let pins = SidePins {
        left: ((hlo + hhi) / 8.0).ceil() as u32,
        right: ((hlo + hhi) / 8.0).ceil() as u32,
        bottom: ((wlo + whi) / 8.0).ceil() as u32,
        top: ((wlo + whi) / 8.0).ceil() as u32,
    };
    module.with_pins(pins)
}

/// Adds `density × num_modules` locality-biased nets (degree 2–5, anchored
/// within a ±`n/3` index window) to `nl`.
fn add_local_nets(nl: &mut Netlist, density: f64, rng: &mut StdRng) {
    let n = nl.num_modules();
    let num_nets = (n as f64 * density).round() as usize;
    let max_degree = n.clamp(2, 5);
    for k in 0..num_nets {
        let degree = if rng.gen_range(0..10) < 8 {
            rng.gen_range(2..=3.min(max_degree))
        } else {
            rng.gen_range(3.min(max_degree)..=max_degree)
        };
        let anchor = rng.gen_range(0..n);
        let span = (n / 3).max(2);
        let mut members = vec![ModuleId(anchor)];
        let mut attempts = 0;
        while members.len() < degree && attempts < 100 {
            attempts += 1;
            let lo = anchor.saturating_sub(span);
            let hi = (anchor + span).min(n - 1);
            let pick = ModuleId(rng.gen_range(lo..=hi));
            if !members.contains(&pick) {
                members.push(pick);
            }
        }
        if members.len() >= 2 {
            nl.add_net(Net::new(format!("n{k:03}"), members))
                .expect("indices in range");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format;
    use crate::NetlistStats;

    #[test]
    fn decks_are_byte_identical_per_seed() {
        // Determinism must hold at the serialization level, not just
        // structural equality: same seed, byte-identical deck text.
        for seed in [0u64, 1, 42] {
            let a = format::write(&ami49_class(seed));
            let b = format::write(&ami49_class(seed));
            assert_eq!(a, b);
            for n in GSRC_SIZES {
                let x = format::write(&gsrc_style(n, seed));
                let y = format::write(&gsrc_style(n, seed));
                assert_eq!(x, y, "gsrc_style({n}, {seed})");
            }
        }
        assert_ne!(
            format::write(&ami49_class(1)),
            format::write(&ami49_class(2))
        );
        assert_ne!(
            format::write(&gsrc_style(100, 1)),
            format::write(&gsrc_style(100, 2))
        );
    }

    #[test]
    fn decks_round_trip_through_format() {
        let nl = ami49_class(3);
        let parsed = format::parse(&format::write(&nl)).expect("parses");
        assert_eq!(nl, parsed);
        let nl = gsrc_style(49, 3);
        let parsed = format::parse(&format::write(&nl)).expect("parses");
        assert_eq!(nl, parsed);
    }

    #[test]
    fn ami49_class_stats_within_declared_bounds() {
        for seed in [0u64, 9, 123] {
            let nl = ami49_class(seed);
            let s = NetlistStats::of(&nl);
            assert_eq!(s.modules, 49);
            assert_eq!(s.flexible_modules, 0);
            // Rounded integer dims can nudge tier areas slightly out; allow
            // a 25% margin around the declared tier bounds.
            assert!(s.min_area >= 36.0 * 0.75, "min area {}", s.min_area);
            assert!(s.max_area <= 4900.0 * 1.25, "max area {}", s.max_area);
            // Macro-heavy: the spread must be wide (real ami49 is ~100:1).
            assert!(
                s.max_area / s.min_area >= 15.0,
                "spread {}",
                s.max_area / s.min_area
            );
            assert!(s.nets >= 49, "nets {}", s.nets);
            assert!(s.avg_net_degree >= 2.0);
            for (_, m) in nl.modules() {
                let (w, h) = (m.width_range().1, m.height_range().1);
                let aspect = w / h;
                assert!(
                    (0.25..=4.0).contains(&aspect),
                    "{} aspect {aspect}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn gsrc_style_stats_within_declared_bounds() {
        for n in GSRC_SIZES {
            let nl = gsrc_style(n, 5);
            let s = NetlistStats::of(&nl);
            assert_eq!(s.modules, n);
            // Narrow spread and a real soft-block fraction (1 in 4 expected).
            assert!(s.min_area >= 16.0 * 0.75, "min area {}", s.min_area);
            assert!(s.max_area <= 120.0 * 1.25, "max area {}", s.max_area);
            let frac = s.flexible_modules as f64 / n as f64;
            assert!((0.05..=0.5).contains(&frac), "flexible fraction {frac}");
            assert!(s.nets >= n, "nets {}", s.nets);
            assert!(s.avg_net_degree >= 2.0);
        }
    }
}
