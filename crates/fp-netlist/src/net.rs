//! Nets (signal connections between modules).

use crate::module::ModuleId;
use std::fmt;

/// Index of a net within its [`Netlist`](crate::Netlist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub usize);

impl NetId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A net connecting two or more modules.
///
/// `criticality` models the paper's timing-driven routing (ref. \[YOU89]): the
/// global router routes nets in descending criticality, and the MILP can
/// impose a maximum estimated length on critical nets.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    name: String,
    modules: Vec<ModuleId>,
    weight: f64,
    criticality: f64,
    max_length: Option<f64>,
}

impl Net {
    /// Creates a net over the given modules with weight 1 and zero
    /// criticality. Duplicate module references are removed.
    #[must_use]
    pub fn new(name: impl Into<String>, modules: impl IntoIterator<Item = ModuleId>) -> Self {
        let mut modules: Vec<ModuleId> = modules.into_iter().collect();
        modules.sort_unstable();
        modules.dedup();
        Net {
            name: name.into(),
            modules,
            weight: 1.0,
            criticality: 0.0,
            max_length: None,
        }
    }

    /// Sets the net weight (builder style); weights scale the wirelength
    /// objective contribution.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Sets the timing criticality in `[0, 1]` (builder style).
    #[must_use]
    pub fn with_criticality(mut self, criticality: f64) -> Self {
        self.criticality = criticality.clamp(0.0, 1.0);
        self
    }

    /// Sets a maximum estimated length constraint (builder style).
    #[must_use]
    pub fn with_max_length(mut self, max_length: f64) -> Self {
        self.max_length = Some(max_length);
        self
    }

    /// The net name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The connected modules, sorted and deduplicated.
    #[must_use]
    pub fn modules(&self) -> &[ModuleId] {
        &self.modules
    }

    /// The net weight.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The timing criticality in `[0, 1]`.
    #[must_use]
    pub fn criticality(&self) -> f64 {
        self.criticality
    }

    /// Optional maximum estimated length.
    #[must_use]
    pub fn max_length(&self) -> Option<f64> {
        self.max_length
    }

    /// Number of distinct modules on the net.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.modules.len()
    }

    /// Whether the net references `module`.
    #[must_use]
    pub fn connects(&self, module: ModuleId) -> bool {
        self.modules.binary_search(&module).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sort() {
        let n = Net::new("clk", [ModuleId(3), ModuleId(1), ModuleId(3)]);
        assert_eq!(n.modules(), &[ModuleId(1), ModuleId(3)]);
        assert_eq!(n.degree(), 2);
        assert!(n.connects(ModuleId(3)));
        assert!(!n.connects(ModuleId(2)));
    }

    #[test]
    fn builders() {
        let n = Net::new("d0", [ModuleId(0), ModuleId(1)])
            .with_weight(2.5)
            .with_criticality(1.7)
            .with_max_length(40.0);
        assert_eq!(n.weight(), 2.5);
        assert_eq!(n.criticality(), 1.0); // clamped
        assert_eq!(n.max_length(), Some(40.0));
        assert_eq!(n.name(), "d0");
    }

    #[test]
    fn display_ids() {
        assert_eq!(NetId(4).to_string(), "n4");
        assert_eq!(NetId(4).index(), 4);
    }
}
