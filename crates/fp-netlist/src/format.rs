//! Plain-text problem format: parse and write [`Netlist`]s.
//!
//! A minimal line-oriented format in the spirit of the MCNC benchmark
//! decks, so problems can be stored in files and fed to the CLI:
//!
//! ```text
//! # comment
//! problem ami33
//! module bk00 rigid 32 32 rot pins 8 8 8 8
//! module ctl  flexible 400 0.5 2.0 pins 2 2 4 4
//! net net000 weight 1 crit 0.9 maxlen 180 : bk00 ctl
//! ```
//!
//! Keywords `weight`, `crit`, `maxlen` are optional; module references in
//! nets are by name.

pub use crate::yal::parse_yal;

use crate::error::NetlistError;
use crate::module::{Module, SidePins};
use crate::net::Net;
use crate::netlist::Netlist;
use std::fmt::Write as _;

/// Serializes a netlist to the text format. [`parse`] round-trips it.
#[must_use]
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "problem {}", netlist.name());
    for (_, m) in netlist.modules() {
        let p = m.pins();
        match *m.shape() {
            crate::Shape::Rigid { w, h } => {
                let rot = if m.rotatable() { "rot" } else { "fixed" };
                let _ = writeln!(
                    out,
                    "module {} rigid {} {} {} pins {} {} {} {}",
                    m.name(),
                    w,
                    h,
                    rot,
                    p.left,
                    p.right,
                    p.bottom,
                    p.top
                );
            }
            crate::Shape::Flexible {
                area,
                min_aspect,
                max_aspect,
            } => {
                let _ = writeln!(
                    out,
                    "module {} flexible {} {} {} pins {} {} {} {}",
                    m.name(),
                    area,
                    min_aspect,
                    max_aspect,
                    p.left,
                    p.right,
                    p.bottom,
                    p.top
                );
            }
        }
    }
    for (_, n) in netlist.nets() {
        let _ = write!(out, "net {} weight {}", n.name(), n.weight());
        if n.criticality() > 0.0 {
            let _ = write!(out, " crit {}", n.criticality());
        }
        if let Some(len) = n.max_length() {
            let _ = write!(out, " maxlen {len}");
        }
        let _ = write!(out, " :");
        for &m in n.modules() {
            let _ = write!(out, " {}", netlist.module(m).name());
        }
        out.push('\n');
    }
    out
}

/// Parses the text format.
///
/// # Errors
///
/// [`NetlistError::Parse`] with a line number for malformed lines;
/// [`NetlistError::DuplicateModule`] / [`NetlistError::UnknownModuleName`]
/// for semantic defects.
pub fn parse(text: &str) -> Result<Netlist, NetlistError> {
    let mut netlist = Netlist::new("unnamed");
    let err = |line: usize, message: &str| NetlistError::Parse {
        line,
        message: message.to_string(),
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "problem" => {
                let name = tokens
                    .get(1)
                    .ok_or_else(|| err(lineno, "problem needs a name"))?;
                let mut renamed = Netlist::new(*name);
                for (_, m) in netlist.modules() {
                    renamed.add_module(m.clone())?;
                }
                for (_, n) in netlist.nets() {
                    renamed.add_net(n.clone())?;
                }
                netlist = renamed;
            }
            "module" => {
                let name = *tokens
                    .get(1)
                    .ok_or_else(|| err(lineno, "module needs a name"))?;
                let kind = *tokens
                    .get(2)
                    .ok_or_else(|| err(lineno, "module needs a kind"))?;
                let num = |k: usize, what: &str| -> Result<f64, NetlistError> {
                    tokens
                        .get(k)
                        .and_then(|t| t.parse::<f64>().ok())
                        .ok_or_else(|| err(lineno, &format!("expected number for {what}")))
                };
                let (module, rest) = match kind {
                    "rigid" => {
                        let w = num(3, "width")?;
                        let h = num(4, "height")?;
                        let rot = match tokens.get(5) {
                            Some(&"rot") => true,
                            Some(&"fixed") => false,
                            _ => return Err(err(lineno, "expected 'rot' or 'fixed'")),
                        };
                        if w <= 0.0 || h <= 0.0 {
                            return Err(err(lineno, "dimensions must be positive"));
                        }
                        (Module::rigid(name, w, h, rot), 6)
                    }
                    "flexible" => {
                        let area = num(3, "area")?;
                        let lo = num(4, "min aspect")?;
                        let hi = num(5, "max aspect")?;
                        if area <= 0.0 || lo <= 0.0 || lo > hi {
                            return Err(err(lineno, "bad flexible parameters"));
                        }
                        (Module::flexible(name, area, lo, hi), 6)
                    }
                    other => return Err(err(lineno, &format!("unknown module kind '{other}'"))),
                };
                let module = if tokens.get(rest) == Some(&"pins") {
                    let p = |k: usize| -> Result<u32, NetlistError> {
                        tokens
                            .get(rest + 1 + k)
                            .and_then(|t| t.parse::<u32>().ok())
                            .ok_or_else(|| err(lineno, "pins needs 4 integers"))
                    };
                    module.with_pins(SidePins {
                        left: p(0)?,
                        right: p(1)?,
                        bottom: p(2)?,
                        top: p(3)?,
                    })
                } else {
                    module
                };
                netlist.add_module(module)?;
            }
            "net" => {
                let name = *tokens
                    .get(1)
                    .ok_or_else(|| err(lineno, "net needs a name"))?;
                let colon = tokens
                    .iter()
                    .position(|&t| t == ":")
                    .ok_or_else(|| err(lineno, "net needs ':' before members"))?;
                let mut weight = 1.0;
                let mut crit = 0.0;
                let mut maxlen = None;
                let mut k = 2;
                while k < colon {
                    let key = tokens[k];
                    let val = tokens
                        .get(k + 1)
                        .and_then(|t| t.parse::<f64>().ok())
                        .ok_or_else(|| err(lineno, &format!("'{key}' needs a number")))?;
                    match key {
                        "weight" => weight = val,
                        "crit" => crit = val,
                        "maxlen" => maxlen = Some(val),
                        other => {
                            return Err(err(lineno, &format!("unknown net attribute '{other}'")))
                        }
                    }
                    k += 2;
                }
                let mut members = Vec::new();
                for &t in &tokens[colon + 1..] {
                    let id = netlist.module_by_name(t).ok_or_else(|| {
                        NetlistError::UnknownModuleName {
                            net: name.to_string(),
                            name: t.to_string(),
                        }
                    })?;
                    members.push(id);
                }
                if members.len() < 2 {
                    return Err(err(lineno, "net needs at least 2 members"));
                }
                let mut net = Net::new(name, members).with_weight(weight);
                if crit > 0.0 {
                    net = net.with_criticality(crit);
                }
                if let Some(l) = maxlen {
                    net = net.with_max_length(l);
                }
                netlist.add_net(net)?;
            }
            other => return Err(err(lineno, &format!("unknown directive '{other}'"))),
        }
    }
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ami33;
    use crate::generator::ProblemGenerator;

    #[test]
    fn round_trip_ami33() {
        let original = ami33();
        let text = write(&original);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn round_trip_generated_with_flexible() {
        let original = ProblemGenerator::new(12, 5)
            .with_flexible_fraction(0.5)
            .generate();
        let parsed = parse(&write(&original)).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header\nproblem p # trailing\nmodule a rigid 2 3 rot\n";
        let nl = parse(text).unwrap();
        assert_eq!(nl.name(), "p");
        assert_eq!(nl.num_modules(), 1);
        assert!(!nl.module(crate::ModuleId(0)).is_flexible());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "problem p\nmodule a rigid 2 3 rot\nbogus line here\n";
        match parse(bad).unwrap_err() {
            NetlistError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_module_in_net() {
        let bad = "module a rigid 2 3 rot\nnet n1 : a ghost\n";
        assert!(matches!(
            parse(bad).unwrap_err(),
            NetlistError::UnknownModuleName { .. }
        ));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(parse("module a rigid -2 3 rot\n").is_err());
        assert!(parse("module a flexible 10 2.0 1.0\n").is_err());
        assert!(parse("module a blobby 1 2\n").is_err());
        assert!(parse("net n :\n").is_err());
    }

    #[test]
    fn net_attributes_parse() {
        let text = "module a rigid 1 1 fixed\nmodule b rigid 1 1 fixed\n\
                    net n1 weight 2.5 crit 0.8 maxlen 30 : a b\n";
        let nl = parse(text).unwrap();
        let (_, n) = nl.nets().next().unwrap();
        assert_eq!(n.weight(), 2.5);
        assert_eq!(n.criticality(), 0.8);
        assert_eq!(n.max_length(), Some(30.0));
    }
}
