//! End-to-end integration: floorplan → improve → route → adjust, across
//! crates, on generated problems.

use analytical_floorplan::core::{improve, FloorplanConfig, Floorplanner, Objective};
use analytical_floorplan::milp::SolveOptions;
use analytical_floorplan::netlist::generator::ProblemGenerator;
use analytical_floorplan::route::{route, RouteAlgorithm, RouteConfig, RoutingMode};
use std::time::Duration;

fn fast() -> FloorplanConfig {
    FloorplanConfig::default().with_step_options(
        SolveOptions::default()
            .with_node_limit(500)
            .with_time_limit(Duration::from_millis(600)),
    )
}

#[test]
fn pipeline_rigid_modules() {
    let netlist = ProblemGenerator::new(10, 100).generate();
    let result = Floorplanner::with_config(&netlist, fast()).run().unwrap();
    let fp = improve(&result.floorplan, &netlist, &fast(), 2).unwrap();
    assert!(fp.is_valid(), "{:?}", fp.violations());
    assert_eq!(fp.len(), 10);

    let routing = route(&fp, &netlist, &RouteConfig::default()).unwrap();
    assert_eq!(routing.routes.len(), netlist.num_nets());
    assert!(routing.total_wirelength > 0.0);
    assert!(routing.adjustment.final_area() >= fp.chip_area() - 1e-6);
}

#[test]
fn pipeline_with_flexible_modules() {
    let netlist = ProblemGenerator::new(9, 200)
        .with_flexible_fraction(0.4)
        .generate();
    let result = Floorplanner::with_config(&netlist, fast()).run().unwrap();
    let fp = &result.floorplan;
    assert!(fp.is_valid(), "{:?}", fp.violations());
    // Flexible modules keep their exact area under the secant model.
    for placed in fp.iter() {
        let module = netlist.module(placed.id);
        if module.is_flexible() {
            assert!(
                (placed.rect.area() - module.area()).abs() < 1e-6,
                "soft module area drifted: {} vs {}",
                placed.rect.area(),
                module.area()
            );
        }
    }
}

#[test]
fn pipeline_with_envelopes_and_routing() {
    let netlist = ProblemGenerator::new(8, 300)
        .with_nets_per_module(3.0)
        .generate();
    let config = fast().with_envelopes(true);
    let result = Floorplanner::with_config(&netlist, config).run().unwrap();
    let fp = &result.floorplan;
    assert!(fp.is_valid());

    // Around-the-cell routing on the enveloped floorplan.
    let routing = route(
        fp,
        &netlist,
        &RouteConfig::default().with_mode(RoutingMode::AroundTheCell),
    )
    .unwrap();
    assert_eq!(routing.routes.len(), netlist.num_nets());
    // Usage bookkeeping is consistent.
    assert_eq!(routing.usage.len(), routing.grid.num_edges());
    let used: f64 = routing.usage.iter().sum();
    assert!(used > 0.0);
}

#[test]
fn determinism_same_seed_same_everything() {
    let run = || {
        let netlist = ProblemGenerator::new(9, 4242).generate();
        // threads = 1 pins the deterministic serial solver: run-to-run
        // identity is only guaranteed under the serial node order.
        let cfg = fast().with_solver_threads(1);
        let result = Floorplanner::with_config(&netlist, cfg).run().unwrap();
        let routing = route(&result.floorplan, &netlist, &RouteConfig::default()).unwrap();
        (
            result.floorplan.chip_area(),
            routing.total_wirelength,
            routing.adjustment.final_area(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn objectives_trade_area_for_wirelength() {
    // Statistical shape over a few seeds: the wirelength objective should
    // reduce estimated wirelength on average versus pure area.
    let mut wl_area = 0.0;
    let mut wl_wire = 0.0;
    for seed in [11u64, 12, 13] {
        let netlist = ProblemGenerator::new(8, seed)
            .with_nets_per_module(3.0)
            .generate();
        let area_fp = Floorplanner::with_config(&netlist, fast().with_objective(Objective::Area))
            .run()
            .unwrap()
            .floorplan;
        let wire_fp = Floorplanner::with_config(
            &netlist,
            fast().with_objective(Objective::AreaPlusWirelength { lambda: 1.0 }),
        )
        .run()
        .unwrap()
        .floorplan;
        wl_area += area_fp.center_wirelength(&netlist);
        wl_wire += wire_fp.center_wirelength(&netlist);
    }
    assert!(
        wl_wire <= wl_area * 1.05,
        "wire objective did not help: {wl_wire} vs {wl_area}"
    );
}

#[test]
fn sp_vs_wsp_final_area_shape() {
    // Table 3 shape: WSP never produces a (meaningfully) larger final chip.
    let netlist = ProblemGenerator::new(10, 500)
        .with_nets_per_module(4.0)
        .generate();
    let result = Floorplanner::with_config(&netlist, fast()).run().unwrap();
    let base = RouteConfig::default().with_mode(RoutingMode::AroundTheCell);
    let sp = route(
        &result.floorplan,
        &netlist,
        &base.clone().with_algorithm(RouteAlgorithm::ShortestPath),
    )
    .unwrap();
    let wsp = route(
        &result.floorplan,
        &netlist,
        &base.with_algorithm(RouteAlgorithm::WeightedShortestPath),
    )
    .unwrap();
    assert!(wsp.adjustment.final_area() <= sp.adjustment.final_area() * 1.02 + 1e-6);
}
