//! Cross-crate checks of the paper's stated properties: variable counts
//! (§2.3), the covering-rectangle corollary (§3.1), envelope behaviour
//! (§3.2) and benchmark identity (§4).

use analytical_floorplan::core::{FloorplanConfig, Floorplanner, OrderingStrategy};
use analytical_floorplan::geom::covering::{covering_rectangles, covers_all, pairwise_disjoint};
use analytical_floorplan::milp::SolveOptions;
use analytical_floorplan::netlist::{ami33, generator::ProblemGenerator};
use std::time::Duration;

fn fast() -> FloorplanConfig {
    FloorplanConfig::default().with_step_options(
        SolveOptions::default()
            .with_node_limit(400)
            .with_time_limit(Duration::from_millis(500)),
    )
}

/// §4: "This benchmark, ami33, includes 33 modules" / "total modules area
/// is 11520".
#[test]
fn ami33_identity() {
    let nl = ami33();
    assert_eq!(nl.num_modules(), 33);
    assert_eq!(nl.total_module_area(), 11520.0);
}

/// §3.1 corollary `N* <= N` on the partial floorplans the augmentation
/// procedure actually produces, plus the safety/partition contracts.
#[test]
fn covering_corollary_on_augmentation_output() {
    let netlist = ProblemGenerator::new(12, 9).generate();
    let result = Floorplanner::with_config(&netlist, fast()).run().unwrap();
    // Every prefix of the placement is a partial floorplan the procedure
    // could have collapsed.
    let envelopes = result.floorplan.envelope_rects();
    for k in 1..=envelopes.len() {
        let prefix = &envelopes[..k];
        let covers = covering_rectangles(prefix);
        assert!(covers.len() <= k, "N* = {} > N = {k}", covers.len());
        assert!(covers_all(&covers, prefix));
        assert!(pairwise_disjoint(&covers));
    }
}

/// §1/§3.1: the per-step integer-variable count stays bounded (the basis of
/// the linear-time claim) regardless of problem size.
#[test]
fn per_step_binaries_bounded_at_scale() {
    for n in [10usize, 20, 30] {
        let netlist = ProblemGenerator::new(n, 77).generate();
        let cfg = fast();
        let result = Floorplanner::with_config(&netlist, cfg.clone())
            .run()
            .unwrap();
        assert!(
            result.stats.max_binaries() <= cfg.max_binaries,
            "K={n}: {} binaries",
            result.stats.max_binaries()
        );
    }
}

/// §3.2: envelopes reserve space — the placed chip with envelopes is at
/// least as large as without, and every envelope contains its module.
#[test]
fn envelopes_reserve_space() {
    let netlist = ProblemGenerator::new(8, 5)
        .with_nets_per_module(3.0)
        .generate();
    let plain = Floorplanner::with_config(&netlist, fast()).run().unwrap();
    let enveloped = Floorplanner::with_config(&netlist, fast().with_envelopes(true))
        .run()
        .unwrap();
    assert!(enveloped.floorplan.chip_area() >= plain.floorplan.chip_area() - 1e-6);
    for p in enveloped.floorplan.iter() {
        assert!(p.envelope.contains_rect(&p.rect));
        assert!(p.envelope.area() >= p.rect.area());
    }
}

/// §4 Series 2: both orderings must produce complete, valid floorplans of
/// the ami33-equivalent benchmark (budget-limited smoke run).
#[test]
fn ami33_smoke_both_orderings() {
    let netlist = ami33();
    for ordering in [OrderingStrategy::Random(1), OrderingStrategy::Connectivity] {
        let cfg = fast().with_ordering(ordering);
        let result = Floorplanner::with_config(&netlist, cfg).run().unwrap();
        assert_eq!(result.floorplan.len(), 33);
        assert!(result.floorplan.is_valid());
        let utilization = result.floorplan.utilization(&netlist);
        assert!(utilization > 0.5, "utilization only {utilization}");
    }
}

/// §2.5: the given-topology LP eliminates integer variables entirely —
/// verified structurally by compacting and re-extracting the topology.
#[test]
fn topology_lp_is_pure_lp_fixed_point() {
    use analytical_floorplan::core::{extract_topology, optimize_topology};
    let netlist = ProblemGenerator::new(8, 21).generate();
    let cfg = fast();
    let result = Floorplanner::with_config(&netlist, cfg.clone())
        .run()
        .unwrap();
    let once = optimize_topology(&result.floorplan, &netlist, &cfg).unwrap();
    let twice = optimize_topology(&once, &netlist, &cfg).unwrap();
    // Each pass is monotone: never taller. (It need not be idempotent —
    // re-extracting relations from the compacted plan can expose further
    // compaction, exactly like iterated x/y compaction in layout editors.)
    assert!(once.chip_height() <= result.floorplan.chip_height() + 1e-6);
    assert!(twice.chip_height() <= once.chip_height() + 1e-6);
    // And the topology stays extractable (no overlaps introduced).
    assert_eq!(
        extract_topology(&once).unwrap().len(),
        once.len() * (once.len() - 1) / 2
    );
}
