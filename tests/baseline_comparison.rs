//! Cross-method sanity: the analytical MILP flow and the Wong-Liu slicing
//! baseline both produce valid floorplans on the same problems and land in
//! the same quality band — the precondition for the `comparison` benchmark
//! binary to be meaningful.

use analytical_floorplan::core::{improve, FloorplanConfig, Floorplanner};
use analytical_floorplan::milp::SolveOptions;
use analytical_floorplan::netlist::generator::ProblemGenerator;
use analytical_floorplan::slicing::SlicingAnnealer;
use std::time::Duration;

fn fast() -> FloorplanConfig {
    FloorplanConfig::default().with_step_options(
        SolveOptions::default()
            .with_node_limit(600)
            .with_time_limit(Duration::from_millis(700)),
    )
}

#[test]
fn both_methods_produce_valid_floorplans() {
    let netlist = ProblemGenerator::new(10, 2024).generate();

    let milp = Floorplanner::with_config(&netlist, fast()).run().unwrap();
    let milp_fp = improve(&milp.floorplan, &netlist, &fast(), 2).unwrap();
    assert!(milp_fp.is_valid());
    assert_eq!(milp_fp.len(), 10);

    let slicing = SlicingAnnealer::new(&netlist).with_seed(2024).run();
    assert!(slicing.floorplan.is_valid());
    assert_eq!(slicing.floorplan.len(), 10);

    // Same quality band: neither method should be wildly worse. (MILP
    // minimizes height at fixed width; slicing minimizes free-form area —
    // compare by utilization.)
    let milp_util = netlist.total_module_area() / milp_fp.chip_area();
    let sa_util = netlist.total_module_area() / slicing.area;
    assert!(milp_util > 0.55, "MILP utilization {milp_util}");
    assert!(sa_util > 0.55, "slicing utilization {sa_util}");
}

#[test]
fn slicing_handles_the_benchmarks() {
    for netlist in [
        analytical_floorplan::netlist::apte9(),
        analytical_floorplan::netlist::xerox10(),
    ] {
        let result = SlicingAnnealer::new(&netlist).run();
        assert!(result.floorplan.is_valid());
        assert_eq!(result.floorplan.len(), netlist.num_modules());
        let util = netlist.total_module_area() / result.area;
        assert!(util > 0.6, "{}: utilization {util}", netlist.name());
    }
}
