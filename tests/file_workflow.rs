//! File-based workflow: parse a problem deck from disk, run the whole
//! pipeline, and write renderings — the library-level equivalent of what
//! the `floorplan` CLI does.

use analytical_floorplan::netlist::format;
use analytical_floorplan::prelude::*;
use std::time::Duration;

fn fast_config() -> FloorplanConfig {
    FloorplanConfig::default().with_step_options(
        analytical_floorplan::milp::SolveOptions::default()
            .with_node_limit(600)
            .with_time_limit(Duration::from_millis(700)),
    )
}

#[test]
fn sample_deck_end_to_end() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/data/sample.fp"
    ))
    .expect("sample deck ships with the repo");
    let netlist = format::parse(&text).expect("sample deck parses");
    assert_eq!(netlist.name(), "sample");
    assert_eq!(netlist.num_modules(), 7);
    assert!(netlist.modules().any(|(_, m)| m.is_flexible()));
    assert!(netlist.nets().any(|(_, n)| n.max_length().is_some()));

    let mut pipeline = Pipeline::new();
    pipeline
        .floorplan_config(fast_config())
        .improve_rounds(1)
        .route(RouteConfig::default());
    let report = pipeline.run(&netlist).expect("pipeline succeeds");
    assert!(report.floorplan.is_valid());
    assert_eq!(report.floorplan.len(), 7);

    // Renderings are well-formed.
    let routing = report.routing.as_ref().unwrap();
    let svg = svg_routed(&report.floorplan, &netlist, routing);
    assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    let heat = svg_congestion(&report.floorplan, &netlist, routing);
    assert!(heat.contains("congestion"));
    let ascii = ascii_floorplan(&report.floorplan, &netlist, 40);
    assert!(ascii.contains("sample"));
}

#[test]
fn deck_round_trip_through_writer() {
    let original = fp_netlist::generator::ProblemGenerator::new(9, 77)
        .with_flexible_fraction(0.3)
        .generate();
    let dir = std::env::temp_dir().join("fp_file_workflow_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("problem.fp");
    std::fs::write(&path, format::write(&original)).unwrap();
    let loaded = format::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(loaded, original);
    std::fs::remove_file(&path).ok();
}

#[test]
fn era_benchmarks_floorplan_cleanly() {
    for netlist in [apte9(), xerox10()] {
        let result = Floorplanner::with_config(&netlist, fast_config())
            .run()
            .expect("benchmark is feasible");
        assert_eq!(result.floorplan.len(), netlist.num_modules());
        assert!(result.floorplan.is_valid());
        assert!(result.floorplan.utilization(&netlist) > 0.5);
    }
}
